"""Read replicas: workspaces fed by a primary's journal stream.

A :class:`ReplicaWorkspace` is an ordinary :class:`Workspace` whose
datasets are populated not by ``register()`` calls but by **tailing a
primary's durable journal** through a :class:`FeedSource`.  Records
arrive in the exact CRC'd form the primary's
:class:`~repro.ingest.durable.DatasetJournal` wrote and are applied
through :class:`~repro.ingest.durable.ReplayMachine` — the same code
path restart replay runs — so a replica at ``(version, seq)`` serves
query payloads **byte-identical** to a primary restarted at that
position.  That identity is the whole correctness story: there is no
replica-specific apply logic to diverge.

Consistency model
-----------------
* A replica is a *prefix* of the primary: it has applied every journal
  record up to its cursor and nothing else.
* Bootstrap (late join, generation change, compaction past the cursor)
  ships a full :class:`~repro.ingest.durable.DurableState`, adopted the
  same deferred way restart recovery adopts one — exact ``(version,
  seq)`` and counters immediately, table/engine replay on first use.
* A query-triggered local engine build on a replica is **ephemeral**:
  the anchored :class:`ReplayMachine` engine — the one journal records
  merge into — is tracked separately, and deferred appends arriving
  after a local build *drop* it, exactly reproducing what a primary
  restarted at the new position would lazily rebuild.
* Writes (``append``/``register``/``reload``/``rebuild``) raise
  :class:`~repro.errors.ReplicaReadOnlyError` until :meth:`promote`.

Topology is the caller's choice: a :class:`LocalFeedSource` tails a
data directory on shared storage (or in-process, for tests and
single-host scaling); :class:`repro.replication.HttpFeedSource` tails a
remote primary over ``GET /v1/datasets/{name}/journal``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.core.engine import EngineConfig, Foresight
from repro.core.executor import ExecutorConfig
from repro.errors import ReplicaReadOnlyError, ServiceError
from repro.ingest.durable import (
    DurableState,
    FeedBatch,
    FeedPosition,
    JournalFeed,
    ReplayMachine,
    replay_counters,
)
from repro.obs import events as obs_events
from repro.obs.config import ObsConfig
from repro.obs.tracer import Tracer, obs_span
from repro.service.workspace import Workspace, _DatasetEntry


class FeedSource:
    """Where a replica's journal records come from (transport-agnostic)."""

    def dataset_names(self) -> list[str]:
        """Datasets the primary replicates."""
        raise NotImplementedError

    def poll(self, name: str, position: FeedPosition | None,
             max_records: int) -> FeedBatch | None:
        """Records after ``position`` (or a bootstrap reset), else None."""
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (idempotent)."""


class LocalFeedSource(FeedSource):
    """Tail a primary's data directory directly (same host / same process).

    Reads are safe against a live primary: the feed never writes, and a
    torn tail is simply "not yet written".
    """

    def __init__(self, data_dir: str):
        self.data_dir = data_dir
        self._feed = JournalFeed(data_dir)

    def dataset_names(self) -> list[str]:
        return self._feed.dataset_names()

    def poll(self, name: str, position: FeedPosition | None,
             max_records: int) -> FeedBatch | None:
        return self._feed.poll(name, position, max_records=max_records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalFeedSource({self.data_dir!r})"


@dataclass
class _ReplicaDataset:
    """Per-dataset replication state (owned by the sync pass).

    ``machine`` is the *anchored* applier: its engine is the one journal
    records delta-merge into, distinct from any ephemeral engine a local
    query built.  ``position`` is the applied cursor; counters feed
    ``ingest_stats()``.  Mutated only under the entry lock (machine) or
    by the single sync pass (cursor/counters); reads off-thread are
    GIL-atomic snapshots for stats.
    """

    machine: ReplayMachine | None = None
    position: FeedPosition | None = None
    primary_seq: int = 0
    applied_records: int = 0
    resets: int = 0
    last_error: str | None = None


class ReplicaWorkspace(Workspace):
    """A read-only workspace kept in sync with a primary's journal.

    Drive it manually with :meth:`sync` (tests, deterministic benches)
    or start the background tailer with :meth:`start_tailing`.  Reads —
    ``handle``/``handle_many`` and every stats surface — are inherited
    unchanged; writes raise :class:`ReplicaReadOnlyError` until
    :meth:`promote` flips the workspace into an ordinary (in-memory)
    primary.
    """

    def __init__(
        self,
        source: FeedSource,
        cache_size: int = 128,
        executor: ExecutorConfig | None = None,
        obs: ObsConfig | Tracer | None = None,
        poll_interval: float = 0.25,
        max_batch_records: int = 512,
    ):
        super().__init__(cache_size=cache_size, executor=executor, obs=obs)
        self._source = source
        self._poll_interval = poll_interval
        self._max_batch_records = max_batch_records
        #: Per-dataset replication cursors/counters (registry-locked dict).
        self._rstate: dict[str, _ReplicaDataset] = {}
        #: Serialises sync passes (manual sync vs the tailer thread).
        #: Level 5 in the declared hierarchy: it wraps entry-lock and
        #: registry-lock acquisitions inside the apply path.
        self._sync_lock = threading.Lock()
        self._promoted = False
        self._tailer: threading.Thread | None = None
        self._tailer_stop = threading.Event()
        self._last_sync_ok: float | None = None

    # ------------------------------------------------------------------
    # Write refusal (until promote)
    # ------------------------------------------------------------------
    def _check_writable(self, operation: str,
                        dataset: str | None = None) -> None:
        if not self._promoted:
            raise ReplicaReadOnlyError(operation, dataset)

    def register(self, name, source, engine_config=None, replace=False):
        self._check_writable("register", name)
        return super().register(name, source, engine_config=engine_config,
                                replace=replace)

    def append(self, name, rows):
        self._check_writable("append", name)
        return super().append(name, rows)

    def reload(self, name):
        self._check_writable("reload", name)
        return super().reload(name)

    def rebuild(self, name):
        self._check_writable("rebuild", name)
        return super().rebuild(name)

    # ------------------------------------------------------------------
    # Synchronisation
    # ------------------------------------------------------------------
    def sync(self) -> dict[str, int]:
        """One full pass: poll every replicated dataset until caught up.

        Returns ``{dataset: records_applied}`` (bootstrap resets count
        as one).  Per-dataset failures are recorded in that dataset's
        ``last_error`` and do not stop the pass; a failure *listing*
        the datasets (the transport is down) raises.
        """
        self._check_open()
        with self._sync_lock:
            names = set(self._source.dataset_names())
            with self._lock:
                names.update(self._rstate)
            applied: dict[str, int] = {}
            for name in sorted(names):
                rs = self._replica_state(name)
                try:
                    applied[name] = self._sync_dataset(name, rs)
                    rs.last_error = None
                except ServiceError as exc:
                    rs.last_error = str(exc)
            self._last_sync_ok = time.monotonic()
            return applied

    def _replica_state(self, name: str) -> _ReplicaDataset:
        with self._lock:
            state = self._rstate.get(name)
            if state is None:
                state = self._rstate.setdefault(name, _ReplicaDataset())
            return state

    def _sync_dataset(self, name: str, rs: _ReplicaDataset) -> int:
        applied = 0
        while True:
            with obs_span("replica.sync", dataset=name) as span:
                batch = self._source.poll(
                    name, rs.position, self._max_batch_records
                )
                if batch is None:
                    return applied
                if batch.reset is not None:
                    self._apply_reset(name, rs, batch)
                    applied += 1
                else:
                    self._apply_records(name, rs, batch)
                    applied += len(batch.records)
                span.set_attribute("records", len(batch.records))
                span.set_attribute("reset", batch.reset is not None)
                span.set_attribute("seq", batch.position.seq)
            if not batch.more:
                return applied

    def _apply_reset(self, name: str, rs: _ReplicaDataset,
                     batch: FeedBatch) -> None:
        """Adopt a full bootstrap state (late join / generation change)."""
        state = batch.reset
        assert state is not None
        existing: _DatasetEntry | None
        with self._lock:
            existing = self._entries.get(name)
        if (existing is not None and rs.position is not None
                and rs.position == batch.position):
            # The primary answered a reset for the position we already
            # hold (e.g. a fresh feed instance): nothing to redo.
            rs.primary_seq = batch.primary_seq
            return
        if existing is not None:
            # Same replace protocol as register(): mark the old entry
            # superseded under its own lock so in-flight queries retry
            # onto the replacement, then publish.
            with existing.lock:
                existing.superseded = True
        rs.machine = None
        self._pending_entry(name, state, loader=None,
                            engine_config=self._restored_config(state))
        self._cache.invalidate(name)
        rs.position = batch.position
        rs.primary_seq = batch.primary_seq
        rs.resets += 1
        obs_events.emit("replica_reset", dataset=name,
                        version=state.version, seq=state.seq)

    def _apply_records(self, name: str, rs: _ReplicaDataset,
                       batch: FeedBatch) -> None:
        """Apply one incremental batch through the restart code path."""
        with self._locked_entry(name) as entry:
            if entry.pending is not None:
                # Not yet materialised: grow the deferred state and keep
                # the counters exact — the heavy replay stays deferred
                # to first use, exactly like restart recovery.
                entry.pending.records.extend(batch.records)
                entry.ingest = replay_counters(entry.pending)
            else:
                machine = rs.machine
                if machine is None:
                    # No anchored engine is always safe: a delta-merge
                    # record then cold-builds over the pre-append table,
                    # which is precisely replay's rule.
                    machine = self._anchor_machine(entry, engine=None)
                    rs.machine = machine
                builds_before = machine.engine_builds
                for record in batch.records:
                    machine.apply(record)
                entry.table = machine.table
                entry.ingest = machine.log
                entry.engine_builds += machine.engine_builds - builds_before
                if machine.engine is not None:
                    entry.engine = machine.engine
                elif batch.records:
                    # Deferred appends with no anchored engine: any
                    # locally built (ephemeral) engine predates these
                    # rows.  Drop it — a primary restarted here would
                    # lazily rebuild over the full table too.
                    entry.engine = None
                self._account_entry(entry)
        if batch.records:
            self._cache.invalidate(name)
        rs.position = batch.position
        rs.primary_seq = batch.primary_seq
        rs.applied_records += len(batch.records)

    def _anchor_machine(self, entry: _DatasetEntry,
                        engine: Foresight | None) -> ReplayMachine:
        """A :class:`ReplayMachine` over the entry's live state."""
        assert entry.table is not None
        config = (entry.engine_config
                  or EngineConfig(executor=self._executor_config))
        return ReplayMachine(
            entry.name,
            entry.table,
            entry.ingest,
            make_engine=lambda table: Foresight(table, config=config),
            engine=engine,
        )

    def _materialize(self, entry: _DatasetEntry) -> None:
        was_pending = entry.pending is not None
        super()._materialize(entry)
        if was_pending and not self._promoted:
            # Replay just produced the journal-anchored state: anchor
            # the applier on it (engine included — at this instant the
            # engine, when present, is exactly what the journal built).
            rs = self._replica_state(entry.name)
            rs.machine = self._anchor_machine(entry, engine=entry.engine)

    # ------------------------------------------------------------------
    # Tailer + promotion
    # ------------------------------------------------------------------
    def start_tailing(self, interval: float | None = None,
                      promote_after: float = 0.0) -> None:
        """Poll the source on a daemon thread every ``interval`` seconds.

        ``promote_after`` > 0 arms auto-promotion: when every sync in
        that many seconds has failed (the primary is unreachable), the
        replica promotes itself and stops tailing.  0 never promotes.
        """
        if self._tailer is not None:
            raise ServiceError("replica is already tailing")
        delay = self._poll_interval if interval is None else interval
        self._tailer_stop.clear()
        self._last_sync_ok = time.monotonic()

        def _run() -> None:
            while not self._tailer_stop.wait(delay):
                try:
                    self.sync()
                except ServiceError as exc:
                    last_ok = self._last_sync_ok or 0.0
                    stalled = time.monotonic() - last_ok
                    if 0 < promote_after <= stalled:
                        obs_events.emit(
                            "replica_promoted", reason="primary_unreachable",
                            stalled_s=round(stalled, 3), error=str(exc),
                        )
                        self._promoted = True
                        return
                except Exception:  # pragma: no cover - defensive
                    # A non-ServiceError is a bug, not an outage; the
                    # tailer keeps running and the next pass retries.
                    pass

        self._tailer = threading.Thread(
            target=_run, name="repro-replica-tailer", daemon=True
        )
        self._tailer.start()

    def stop_tailing(self, timeout: float = 10.0) -> None:
        """Stop the background tailer (idempotent)."""
        tailer, self._tailer = self._tailer, None
        if tailer is None:
            return
        self._tailer_stop.set()
        tailer.join(timeout=timeout)

    def promote(self) -> None:
        """Stop tailing and accept writes (failover to this replica).

        The promoted workspace keeps serving every replicated dataset
        at its applied position and starts accepting writes *in
        memory* — give it a ``data_dir`` of its own (by rebuilding the
        topology) for durable writes.  Idempotent.
        """
        if self._promoted:
            return
        self.stop_tailing()
        self._promoted = True
        obs_events.emit("replica_promoted", reason="requested")

    @property
    def promoted(self) -> bool:
        return self._promoted

    # ------------------------------------------------------------------
    # Stats + lifecycle
    # ------------------------------------------------------------------
    def replica_lag(self) -> dict[str, int]:
        """Per-dataset replication lag in journal records (seq delta)."""
        lag: dict[str, int] = {}
        with self._lock:
            states = dict(self._rstate)
        for name, rs in states.items():
            position = rs.position
            applied_seq = position.seq if position is not None else 0
            lag[name] = max(0, rs.primary_seq - applied_seq)
        return lag

    def ingest_stats(self) -> dict[str, Any]:
        stats = super().ingest_stats()
        with self._lock:
            states = dict(self._rstate)
        datasets: dict[str, Any] = {}
        for name, rs in sorted(states.items()):
            position = rs.position
            datasets[name] = {
                "version": position.version if position is not None else 0,
                "seq": position.seq if position is not None else 0,
                "primary_seq": rs.primary_seq,
                "lag_seq": max(
                    0,
                    rs.primary_seq
                    - (position.seq if position is not None else 0),
                ),
                "applied_records": rs.applied_records,
                "resets": rs.resets,
                "last_error": rs.last_error,
            }
        stats["replica"] = {
            "promoted": self._promoted,
            "tailing": self._tailer is not None,
            "poll_interval": self._poll_interval,
            "datasets": datasets,
        }
        return stats

    def close(self) -> None:
        self.stop_tailing()
        try:
            self._source.close()
        finally:
            super().close()


__all__ = [
    "FeedSource",
    "LocalFeedSource",
    "ReplicaWorkspace",
]
