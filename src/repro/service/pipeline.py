"""Public serving-namespace re-export of the staged query pipeline.

The implementation lives in :mod:`repro.core.pipeline` (it is
execution-engine machinery and must not depend on the serving layer);
this module re-exports it so serving-side code and documentation can
refer to ``repro.service.pipeline`` / ``repro.service.QueryPipeline``.
"""

from repro.core.pipeline import (
    Enumeration,
    ExecutionPlan,
    PipelineStats,
    PlannedQuery,
    QueryPipeline,
    RankingResult,
    ScoredBatch,
)

__all__ = [
    "Enumeration",
    "ExecutionPlan",
    "PipelineStats",
    "PlannedQuery",
    "QueryPipeline",
    "RankingResult",
    "ScoredBatch",
]
