"""The Workspace: multi-dataset serving façade over the Foresight engine.

A :class:`Workspace` owns named datasets and serves
:class:`~repro.service.dto.InsightRequest` DTOs against them:

* datasets are registered as concrete tables or as zero-argument loader
  callables; loaders run lazily on first use, and each dataset gets one
  preprocessed :class:`~repro.core.engine.Foresight` engine, built once
  and reused across requests;
* every dataset carries a monotonically increasing *version*; reloading
  bumps it, rebuilds the engine on demand and invalidates cached results;
* responses are cached in an LRU keyed by
  ``(dataset, dataset_version, canonical_request)``, with hit/miss
  provenance recorded on every response;
* multi-class requests execute on the staged query pipeline, so classes
  that enumerate the same candidate domain share one enumeration pass;
* exploration sessions become workspace-addressable: they are created by
  dataset name and their saved state (which embeds the dataset name)
  restores through the workspace without the caller touching engines.

Typical use::

    from repro.service import InsightRequest, Workspace
    from repro.data.datasets import load_oecd

    workspace = Workspace()
    workspace.register("oecd", load_oecd)
    response = workspace.handle(InsightRequest(
        dataset="oecd",
        insight_classes=("linear_relationship", "skew", "outliers"),
        top_k=3,
    ))
    for carousel in response.carousels:
        print(carousel["insight_class"], len(carousel["insights"]))
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import ServiceError, UnknownDatasetError
from repro.core.engine import EngineConfig, Foresight
from repro.core.session import ExplorationSession
from repro.data.table import DataTable
from repro.service.cache import ResultCache
from repro.service.cursor import decode_cursor, encode_cursor
from repro.service.dto import InsightRequest, InsightResponse, SessionState
from repro.service.pipeline import PipelineStats


@dataclass
class _DatasetEntry:
    """Registration record for one named dataset."""

    name: str
    loader: Callable[[], DataTable] | None
    table: DataTable | None
    engine_config: EngineConfig | None
    engine: Foresight | None = None
    version: int = 1


class Workspace:
    """Registers named datasets and serves insight requests against them."""

    def __init__(self, cache_size: int = 128):
        self._entries: dict[str, _DatasetEntry] = {}
        self._cache = ResultCache(capacity=cache_size)

    # ------------------------------------------------------------------
    # Dataset management
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        source: DataTable | Callable[[], DataTable],
        engine_config: EngineConfig | None = None,
        replace: bool = False,
    ) -> None:
        """Register a dataset under ``name``.

        ``source`` is either a concrete :class:`DataTable` or a
        zero-argument callable returning one; callables run lazily on
        first use and again on :meth:`reload`.  Re-registering an existing
        name requires ``replace=True`` and behaves like a reload (version
        bump + cache invalidation).
        """
        if not name:
            raise ServiceError("dataset name must be a non-empty string")
        existing = self._entries.get(name)
        if existing is not None and not replace:
            raise ServiceError(
                f"dataset {name!r} is already registered; pass replace=True "
                "to override it"
            )
        if isinstance(source, DataTable):
            loader, table = None, source
        elif callable(source):
            loader, table = source, None
        else:
            raise ServiceError(
                "dataset source must be a DataTable or a zero-argument callable, "
                f"got {type(source).__name__}"
            )
        version = existing.version + 1 if existing is not None else 1
        self._entries[name] = _DatasetEntry(
            name=name,
            loader=loader,
            table=table,
            engine_config=engine_config,
            version=version,
        )
        if existing is not None:
            self._cache.invalidate(name)

    def datasets(self) -> list[str]:
        """Registered dataset names, in registration order."""
        return list(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def version(self, name: str) -> int:
        """The current version of a dataset (bumped on every reload)."""
        return self._entry(name).version

    def table(self, name: str) -> DataTable:
        """The dataset's table, running its loader if not yet materialised."""
        entry = self._entry(name)
        if entry.table is None:
            assert entry.loader is not None
            entry.table = entry.loader()
        return entry.table

    def engine(self, name: str) -> Foresight:
        """The dataset's preprocessed engine, built lazily and cached."""
        entry = self._entry(name)
        if entry.engine is None:
            entry.engine = Foresight(self.table(name), config=entry.engine_config)
        return entry.engine

    def reload(self, name: str) -> int:
        """Re-run the dataset's loader, bump its version, drop cached state.

        Returns the new version.  Datasets registered as concrete tables
        (no loader) keep their table but still get a version bump and
        cache/engine invalidation, which is the explicit way to signal
        "the underlying data changed" after in-place mutation.
        """
        entry = self._entry(name)
        if entry.loader is not None:
            entry.table = None
        entry.engine = None
        entry.version += 1
        self._cache.invalidate(name)
        return entry.version

    def invalidate(self, name: str | None = None) -> int:
        """Evict cached responses for one dataset (or all); returns the count."""
        if name is not None:
            self._entry(name)
        return self._cache.invalidate(name)

    # ------------------------------------------------------------------
    # Request serving
    # ------------------------------------------------------------------
    def handle(
        self, request: InsightRequest | Mapping[str, Any] | str
    ) -> InsightResponse:
        """Serve one insight request (DTO, dict payload, or JSON text)."""
        request = self._coerce_request(request)
        engine = self.engine(request.dataset)
        version = self._entry(request.dataset).version
        key = (request.dataset, version, request.canonical_key())

        # The cache stores canonical JSON, so hits rehydrate into fresh
        # objects and callers can never mutate a cached entry in place.
        cached = self._cache.get(key)
        if cached is not None:
            response = InsightResponse.from_json(cached)
            response.provenance = {**response.provenance, "cache": "hit"}
            return response

        start = time.perf_counter()
        offset = decode_cursor(request.cursor)
        page_size = request.top_k
        queries = request.to_queries(
            default_mode=engine.config.mode, top_k=offset + page_size
        )
        stats = PipelineStats()
        results = engine.rank_many(queries, stats=stats)

        carousels = []
        has_more = False
        for name, result in zip(request.insight_classes, results):
            page = result.insights[offset : offset + page_size]
            carousels.append(
                {
                    "insight_class": name,
                    "label": engine.registry.get(name).label or name,
                    "insights": [insight.as_dict() for insight in page],
                    "n_admitted": result.n_admitted,
                    "truncated": result.truncated,
                }
            )
            if result.n_admitted > offset + page_size:
                has_more = True
        elapsed = time.perf_counter() - start

        response = InsightResponse(
            dataset=request.dataset,
            dataset_version=version,
            carousels=carousels,
            timing={"total_seconds": elapsed},
            provenance={
                "cache": "miss",
                "mode": request.mode or engine.config.mode,
                "enumerations": stats.enumerations,
                "shared_queries": stats.shared_queries,
            },
            next_cursor=encode_cursor(offset + page_size) if has_more else None,
        )
        self._cache.put(key, response.to_json())
        return response

    def handle_json(self, text: str) -> str:
        """JSON-in / JSON-out convenience for transport adapters."""
        return self.handle(InsightRequest.from_json(text)).to_json()

    # ------------------------------------------------------------------
    # Sessions (workspace-addressable by dataset name)
    # ------------------------------------------------------------------
    def session(self, dataset: str, name: str = "session") -> ExplorationSession:
        """Start an exploration session on a registered dataset."""
        return ExplorationSession(self.engine(dataset), name=name, dataset=dataset)

    def restore_session(
        self, state: SessionState | Mapping[str, Any] | str
    ) -> ExplorationSession:
        """Rebuild a session from saved state, resolving its dataset by name."""
        if isinstance(state, str):
            state = SessionState.from_json(state)
        elif not isinstance(state, SessionState):
            state = SessionState.from_dict(state)
        if state.dataset not in self._entries:
            raise UnknownDatasetError(state.dataset, self.datasets())
        return ExplorationSession.restore(self.engine(state.dataset), state)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_info(self) -> dict[str, int]:
        """Hit/miss/eviction counters of the result cache."""
        return self._cache.info()

    @property
    def cache(self) -> ResultCache:
        return self._cache

    def describe(self) -> list[dict[str, Any]]:
        """Status of every registered dataset (for ops endpoints)."""
        return [
            {
                "name": entry.name,
                "version": entry.version,
                "loaded": entry.table is not None,
                "engine_built": entry.engine is not None,
                "lazy": entry.loader is not None,
            }
            for entry in self._entries.values()
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workspace(datasets={self.datasets()!r}, "
            f"cache={self._cache.info()['size']}/{self._cache.capacity})"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _entry(self, name: str) -> _DatasetEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownDatasetError(name, self.datasets()) from None

    @staticmethod
    def _coerce_request(
        request: InsightRequest | Mapping[str, Any] | str
    ) -> InsightRequest:
        if isinstance(request, InsightRequest):
            return request
        if isinstance(request, str):
            return InsightRequest.from_json(request)
        if isinstance(request, Mapping):
            return InsightRequest.from_dict(request)
        raise ServiceError(
            "request must be an InsightRequest, a mapping or JSON text, "
            f"got {type(request).__name__}"
        )
