"""The Workspace: multi-dataset serving façade over the Foresight engine.

A :class:`Workspace` owns named datasets and serves
:class:`~repro.service.dto.InsightRequest` DTOs against them:

* datasets are registered as concrete tables or as zero-argument loader
  callables; loaders run lazily on first use, and each dataset gets one
  preprocessed :class:`~repro.core.engine.Foresight` engine, built once
  and reused across requests;
* every dataset carries an ingestion identity ``(version, seq)``: the
  *version* bumps on reload (a new generation, resetting the append
  journal), the *seq* bumps on every accepted :meth:`Workspace.append` —
  validated rows absorbed live by merging per-column sketch partials
  into the engine's store (see :mod:`repro.ingest`) instead of
  rebuilding it;
* responses are cached in an LRU keyed by
  ``(dataset, version, seq, canonical_request)``, with hit/miss
  provenance — and the exact ``(version, seq)`` snapshot identity —
  recorded on every response;
* multi-class requests execute on the staged query pipeline, so classes
  that enumerate the same candidate domain share one enumeration pass —
  and, when their constraints don't prune, scored batches too;
* exploration sessions become workspace-addressable: they are created by
  dataset name and their saved state (which embeds the dataset name)
  restores through the workspace without the caller touching engines.

The workspace is safe under concurrent callers: the result cache is
internally locked, every dataset entry carries its own lock, and engine
builds are *single-flight* — when N threads race on a cold dataset,
exactly one pays for the build (``engine_builds`` in :meth:`describe`
proves it) while the rest wait and reuse it.  :meth:`handle_many`
executes a batch of requests concurrently on a thread pool, stamping
per-request batch provenance on each response.

Typical use::

    from repro.service import InsightRequest, Workspace
    from repro.data.datasets import load_oecd

    workspace = Workspace()
    workspace.register("oecd", load_oecd)
    response = workspace.handle(InsightRequest(
        dataset="oecd",
        insight_classes=("linear_relationship", "skew", "outliers"),
        top_k=3,
    ))
    for carousel in response.carousels:
        print(carousel["insight_class"], len(carousel["insights"]))
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import (
    ProtocolError,
    ServiceError,
    UnknownDatasetError,
    UnknownInsightClassError,
)
from repro.core.engine import EngineConfig, Foresight
from repro.core.executor import ExecutorConfig, create_executor
from repro.core.session import ExplorationSession
from repro.data.table import DataTable
from repro.ingest.delta import DeltaBatch
from repro.ingest.durable import (
    RECORD_APPEND,
    RECORD_BUILD,
    RECORD_SWAP,
    DatasetJournal,
    DurableState,
    engine_config_from_payload,
    engine_config_to_payload,
    rebuild_with_catchup,
    replay_counters,
    replay_state,
    table_to_payload,
)
from repro.ingest.log import (
    APPLIED_DEFERRED,
    APPLIED_DELTA_MERGE,
    APPLIED_REBUILD,
    IngestLog,
)
from repro.ingest.maintenance import (
    IngestConfig,
    build_delta_partials,
    merge_delta,
    should_rebuild,
)
from repro.obs import events as obs_events
from repro.obs.config import ObsConfig
from repro.obs.ledger import MemoryLedger, table_bytes
from repro.obs.resources import (
    CostAggregator,
    CostRecorder,
    attach_recorder,
    record_cache_probe,
)
from repro.obs.tracer import Tracer, current_span, obs_span
from repro.obs.watchdog import StallDetector, install_lock_wait
from repro.service.cache import ResultCache
from repro.service.cursor import decode_cursor, encode_cursor
from repro.service.dto import (
    InsightRequest,
    InsightResponse,
    SessionState,
    error_envelope_json,
)
from repro.service.pipeline import PipelineStats

#: Concurrency used by :meth:`Workspace.handle_many` when neither the
#: call nor the workspace's executor config asks for a specific width.
_DEFAULT_BATCH_WORKERS = 4

#: An ``engine.snapshot`` on the warm path records a span only when the
#: entry-lock wait reached this (seconds): a microsecond read of an
#: already-built engine tells no story, a ≥1 ms stall behind a builder,
#: append or reload does.
_SNAPSHOT_SPAN_FLOOR = 0.001


@dataclass
class _DatasetEntry:
    """Registration record for one named dataset."""

    name: str
    loader: Callable[[], DataTable] | None
    table: DataTable | None
    engine_config: EngineConfig | None
    engine: Foresight | None = None
    version: int = 1
    #: Guards lazy loading/building and version bumps for this dataset.
    #: Reentrant because building the engine loads the table under the
    #: same lock.
    lock: threading.RLock = field(default_factory=threading.RLock)
    #: How many times the engine was (re)built — the single-flight tests
    #: assert this stays at 1 when N threads race on a cold dataset.
    engine_builds: int = 0
    #: How many times the loader actually ran.
    loads: int = 0
    #: The append journal for this generation of the dataset: monotone
    #: sequence numbers, ingestion counters and the accuracy-budget
    #: accounting.  Replaced wholesale on reload (a new generation).
    ingest: IngestLog = field(default_factory=IngestLog)
    #: True when this entry was reconstructed from the durable journal
    #: (restart replay) rather than registered fresh this process.
    restored: bool = False
    #: Durable state awaiting its (expensive) replay.  The entry's
    #: ``version`` and ``ingest`` counters are already exact — only the
    #: table/engine reconstruction is deferred, to first use, so a
    #: restart never pays replay cost for datasets nobody touches.
    pending: DurableState | None = None
    #: True while a background rebuild for this dataset is in flight.
    rebuild_running: bool = False
    #: The last background-rebuild failure, if any (surfaced in stats).
    rebuild_error: str | None = None
    #: Set (under this entry's lock) when a replace-registration installs
    #: a new entry over this one.  Version checks can't detect that —
    #: replacement swaps the whole object, never mutating the old one —
    #: so holders of a stale entry (a background rebuild's off-lock
    #: build) re-check this flag before journalling or swapping.
    superseded: bool = False


class Workspace:
    """Registers named datasets and serves insight requests against them.

    ``executor`` configures concurrency: it is the default pool width for
    :meth:`handle_many`, and datasets registered without an explicit
    ``engine_config`` inherit it into their engines, parallelising sketch
    preprocessing and the pipeline's score stage.  The default
    (``max_workers=1``, unless ``REPRO_MAX_WORKERS`` says otherwise) is
    fully serial inside each request, exactly as before.

    ``data_dir`` makes ingestion **durable**: every accepted append is
    committed to an on-disk write-ahead journal (rows included,
    checksummed, fsynced per ``IngestConfig.fsync``) before it is
    acknowledged, and opening a workspace on the same directory replays
    the journal so each dataset's ``(version, seq)`` identity and sketch
    state come back exactly as an uninterrupted process would hold them
    — a torn or corrupted journal tail recovers to the last complete
    record.  Budget-triggered sketch rebuilds run off the append path on
    a background worker (``IngestConfig.background_rebuild``), swapping
    the fresh engine in atomically under the single-flight lock.

    ``obs`` configures request tracing (:mod:`repro.obs`): pass an
    :class:`~repro.obs.config.ObsConfig` to tune it, a prebuilt
    :class:`~repro.obs.tracer.Tracer` to share one across workspaces, or
    nothing for the on-by-default tracer.  The workspace owns the tracer
    — the HTTP server reuses it via :attr:`tracer` so request spans and
    workspace spans land in one trace.
    """

    def __init__(
        self,
        cache_size: int = 128,
        executor: ExecutorConfig | None = None,
        ingest: IngestConfig | None = None,
        data_dir: str | None = None,
        obs: ObsConfig | Tracer | None = None,
    ):
        # Resolve the observability config before creating any lock:
        # the opt-in lock-wait watchdog patches lock *construction*, so
        # installing it first is what puts the workspace's own locks
        # under watch.
        if isinstance(obs, Tracer):
            obs_config = ObsConfig(enabled=obs.enabled,
                                   resources_enabled=obs.account_memory)
        else:
            obs_config = obs or ObsConfig()
        self._obs_config = obs_config
        self._lock_wait = install_lock_wait(obs_config.lock_wait_ms)
        self._entries: dict[str, _DatasetEntry] = {}
        #: The tracing subsystem (always present; a disabled ObsConfig
        #: makes every span a shared no-op).
        self._tracer = obs if isinstance(obs, Tracer) else Tracer(obs)
        self._cache = ResultCache(capacity=cache_size)
        #: Per-request cost attribution (rolling windows, lifetime
        #: totals, top-K ring) and the incremental memory ledger.  Both
        #: exist unconditionally — a disabled ``resources_enabled``
        #: simply never creates recorders or touches the ledger, so the
        #: hot path pays nothing.
        self._costs = CostAggregator(window=obs_config.cost_window)
        self._ledger = MemoryLedger()
        #: Background-rebuild deadline watchdog (``rebuild_stall``
        #: events); deadline 0 disables it.
        self._stall = StallDetector(
            deadline_seconds=obs_config.rebuild_deadline_s
        )
        self._executor_config = executor or ExecutorConfig()
        self._ingest_config = ingest or IngestConfig()
        #: Lifetime pipeline counters across every cache-miss request,
        #: for operational surfaces (the server's ``/metrics``).
        self._stats = PipelineStats()
        self._stats_lock = threading.Lock()
        #: Lifetime ingestion totals.  Per-dataset journals reset on
        #: reload (a new generation); these survive it, so the ops
        #: counters stay monotone the way Prometheus counters must.
        self._ingest_totals = {"appends": 0, "rows_appended": 0,
                               "delta_merges": 0, "rebuilds": 0,
                               "bg_rebuilds": 0}
        #: Guards the registry of entries (not per-dataset state).
        self._lock = threading.RLock()
        #: Monotonic per-name version counters.  Versions must never
        #: repeat across re-registrations: a reload racing a
        #: register(replace=True) that minted the same number twice would
        #: make a stale cached response reachable under the new
        #: generation's key.
        self._version_counters: dict[str, int] = {}
        #: Lazily created 2-worker pool for background sketch rebuilds
        #: (the budget-triggered rebuild runs here, off the append path).
        self._maintenance: Any = None
        self._closed = False
        #: The durable write-ahead journal (None = in-memory only).
        self.data_dir = data_dir
        self._journal: DatasetJournal | None = None
        #: Durable state discovered on disk for datasets that need their
        #: loader before they can replay (consumed by ``register``).
        self._pending_recovery: dict[str, DurableState] = {}
        if data_dir is not None:
            self._journal = DatasetJournal(
                data_dir,
                fsync=self._ingest_config.fsync,
                group_commit=self._ingest_config.group_commit,
                max_group_delay=self._ingest_config.max_group_delay,
            )
            self._recover_persisted()

    def _check_open(self) -> None:
        """Refuse mutations on a closed workspace.

        close() flushes and closes the journal handles; a late append or
        registration would silently reopen them and write records no
        shutdown barrier covers.  (Writers already in flight when
        close() starts are safe without this: they hold their entry lock
        through their journal write, and close()'s flush_all waits on
        exactly that lock before the journal closes.)
        """
        if self._closed:
            raise ServiceError("workspace is closed")

    def _next_version(self, name: str) -> int:
        with self._lock:
            version = self._version_counters.get(name, 0) + 1
            self._version_counters[name] = version
            return version

    def _adopt_version(self, name: str, version: int) -> None:
        """Continue the persisted version counter across restarts."""
        with self._lock:
            if version > self._version_counters.get(name, 0):
                self._version_counters[name] = version

    # ------------------------------------------------------------------
    # Durable recovery (restart replay)
    # ------------------------------------------------------------------
    def _recover_persisted(self) -> None:
        """Adopt every dataset the journal knows about, without replaying.

        Snapshot-backed datasets (inline registrations, compacted
        generations) are self-contained and come back as *pending*
        entries — exact ``(version, seq)`` and counters now, the
        table/engine replay deferred to first use so startup stays fast.
        Loader-backed journals are stashed and adopted when
        :meth:`register` supplies the loader.
        """
        assert self._journal is not None
        for name in self._journal.dataset_names():
            # repro: allow(durability-protocol) — startup recovery runs in
            # __init__ before any entry (or its lock) exists and before the
            # workspace is visible to other threads; repair truncation of a
            # torn tail cannot race anything.
            state = self._journal.load(name, repair=True)
            if state is None:
                continue
            self._adopt_version(name, state.version)
            if state.snapshot is not None:
                self._pending_entry(name, state, loader=None,
                                    engine_config=self._restored_config(state))
            else:
                self._pending_recovery[name] = state

    def _restored_config(
        self,
        state: DurableState,
        supplied: EngineConfig | None = None,
    ) -> EngineConfig | None:
        """The engine config a restored generation must rebuild with.

        The persisted config wins — ``DurableState.engine_config``
        arrives already resolved (snapshot copy when a snapshot exists,
        else the generation header's).  It is what produced the
        journalled delta-merge history, so replaying with anything else
        would break byte-identical restore.  Without a persisted config
        the caller-supplied one (the re-registration's) applies, exactly
        as it would have on the original registration.
        """
        if state.engine_config is not None:
            return engine_config_from_payload(
                state.engine_config, executor=self._executor_config
            )
        return supplied

    @staticmethod
    def _config_payload(entry: _DatasetEntry) -> dict[str, Any] | None:
        """The entry's custom engine config as a journal payload.

        None means the workspace default applied, which a restart
        resolves identically — only explicit configs need persisting.
        """
        if entry.engine_config is None:
            return None
        return engine_config_to_payload(entry.engine_config)

    def _pending_entry(
        self,
        name: str,
        state: DurableState,
        loader: Callable[[], DataTable] | None,
        engine_config: EngineConfig | None,
    ) -> _DatasetEntry:
        """An entry adopting durable state, its heavy replay deferred."""
        entry = _DatasetEntry(
            name=name,
            loader=loader,
            table=None,
            engine_config=engine_config,
            version=state.version,
            ingest=replay_counters(state),
            restored=True,
            pending=state,
        )
        with self._lock:
            self._entries[name] = entry
        self._adopt_version(name, state.version)
        # Account the on-disk bytes immediately (they are known without
        # materialising): otherwise the debug/metrics surfaces read 0
        # journal/snapshot bytes for every recovered dataset until its
        # first query.  Only the disk rows — table/sketch bytes really
        # are 0 until replay runs, and the entry lock (which the full
        # _account_entry expects) may not be takeable under the registry
        # lock some callers hold here.
        if self._journal is not None and self._obs_config.resources_enabled:
            usage = self._journal.disk_usage(name)
            self._ledger.set("journal_disk", usage["journal_bytes"],
                             dataset=name)
            self._ledger.set("snapshot_disk", usage["snapshot_bytes"],
                             dataset=name)
        return entry

    def _materialize(self, entry: _DatasetEntry) -> None:
        """Run the deferred journal replay (caller holds the entry lock).

        Reconstructs the exact table, engine and full ingest log an
        uninterrupted process would hold.  Nothing is journalled here —
        replay reads history, it never extends it.
        """
        state = entry.pending
        if state is None:
            return
        config = (entry.engine_config
                  or EngineConfig(executor=self._executor_config))
        outcome = replay_state(
            entry.name,
            state,
            base_table=entry.loader,
            make_engine=lambda table: Foresight(table, config=config),
        )
        entry.table = outcome.table
        entry.engine = outcome.engine
        entry.ingest = outcome.log
        entry.engine_builds += outcome.engine_builds
        entry.loads += outcome.loads
        entry.pending = None
        self._account_entry(entry)

    def _write_snapshot_locked(self, entry: _DatasetEntry) -> None:
        """Persist a compaction snapshot (caller holds the entry lock).

        Only legal when the engine state is reproducible from the table
        rows plus the ``(base_rows, catch-up)`` split — i.e. right after
        a full rebuild, or while no approximate engine exists.
        """
        if self._journal is None or entry.table is None:
            return
        log = entry.ingest
        payload = {
            "type": "snapshot",
            "version": entry.version,
            "seq": log.seq,
            "n_rows": entry.table.n_rows,
            "base_rows": log.base_rows,
            "engine_built": (entry.engine is not None
                             and entry.engine.store is not None),
            "counters": {
                "rows_appended": log.rows_appended,
                "delta_merges": log.delta_merges,
                "rebuilds": log.rebuilds,
                "bg_rebuilds": log.bg_rebuilds,
                "rows_since_rebuild": log.rows_since_rebuild,
                "base_rows": log.base_rows,
            },
            "table": table_to_payload(entry.table),
        }
        config_payload = self._config_payload(entry)
        if config_payload is not None:
            # A custom config must survive restarts with the rows: a
            # restored dataset rebuilt under the workspace default would
            # silently serve different results than the uninterrupted
            # process.
            payload["engine_config"] = config_payload
        # An ambient child (or no-op outside any trace), never a root:
        # this runs under the entry lock, where completing a root trace
        # — the buffer drain plus a possible slow-request event — must
        # never happen.
        with obs_span("journal.snapshot", dataset=entry.name) as span:
            span.set_attribute("seq", log.seq)
            span.set_attribute("n_rows", entry.table.n_rows)
            self._journal.write_snapshot(entry.name, payload)

    def _account_entry(self, entry: _DatasetEntry) -> None:
        """Re-size one dataset's memory-ledger rows (entry lock held).

        Called at the mutation points that change what the dataset
        pins — engine build/swap, append, rebuild, reload, journal
        rotation — never on the read path.  The table walk is
        O(columns) (numpy ``nbytes`` dominates), the sketch total and
        the journal's disk usage are already-maintained counters, so
        the whole call is noise next to the mutation it follows.
        """
        if not self._obs_config.resources_enabled:
            return
        name = entry.name
        table = entry.table
        self._ledger.set("table", table_bytes(table) if table is not None else 0,
                         dataset=name)
        engine = entry.engine
        store = engine.store if engine is not None else None
        self._ledger.set("sketches",
                         store.memory_bytes() if store is not None else 0,
                         dataset=name)
        if self._journal is not None:
            usage = self._journal.disk_usage(name)
            self._ledger.set("journal_disk", usage["journal_bytes"],
                             dataset=name)
            self._ledger.set("snapshot_disk", usage["snapshot_bytes"],
                             dataset=name)

    # ------------------------------------------------------------------
    # Dataset management
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        source: DataTable | Callable[[], DataTable],
        engine_config: EngineConfig | None = None,
        replace: bool = False,
    ) -> None:
        """Register a dataset under ``name``.

        ``source`` is either a concrete :class:`DataTable` or a
        zero-argument callable returning one; callables run lazily on
        first use and again on :meth:`reload`.  Re-registering an existing
        name requires ``replace=True`` and behaves like a reload (version
        bump + cache invalidation).

        With a durable ``data_dir``, registration is restart-aware:

        * a name whose journal was already restored at startup (from a
          snapshot) *adopts* the loader for future reloads instead of
          raising "already registered";
        * a name with journalled state that needed its loader replays
          the journal now, reconstructing the exact ``(version, seq)``
          and sketch state the previous process held;
        * a brand-new name starts a journal generation, and a concrete
          table is snapshotted so it survives restarts without a loader.

        A custom ``engine_config`` is persisted inside the dataset's
        snapshot and restored with it, so a restart rebuilds with the
        exact configuration the dataset was registered under.  For
        journalled state the persisted config is authoritative (it is
        what produced the journalled history); pass ``replace=True`` to
        register under a different one.
        """
        if not name:
            raise ServiceError("dataset name must be a non-empty string")
        self._check_open()
        if isinstance(source, DataTable):
            loader, table = None, source
        elif callable(source):
            loader, table = source, None
        else:
            raise ServiceError(
                "dataset source must be a DataTable or a zero-argument callable, "
                f"got {type(source).__name__}"
            )
        entry: _DatasetEntry | None = None
        existing: _DatasetEntry | None = None
        marked: _DatasetEntry | None = None
        pending: DurableState | None = None
        adopted = False
        version = 0
        while True:
            with self._lock:
                # Re-checked under the registry lock — the same lock
                # close() sets _closed under — so a registration racing
                # close() can never publish an entry (and then reopen
                # journal handles) after the shutdown flush.  If the
                # check fails after a prior iteration already marked the
                # old entry, the mark MUST be rolled back: a superseded
                # entry left current would spin every _locked_entry
                # caller — close()'s flush_all included — forever.
                # (Nesting marked.lock inside the held registry lock is
                # safe here: post-mark, every acquirer of marked.lock
                # checks the flag and bails before ever requesting the
                # registry lock.)
                try:
                    self._check_open()
                except BaseException:
                    if (marked is not None
                            and self._entries.get(name) is marked):
                        # repro: allow(lock-order) — registry→entry inversion
                        # is safe post-mark: every marked.lock acquirer checks
                        # `superseded` and bails before requesting the
                        # registry lock, so the inverse chain cannot complete.
                        with marked.lock:
                            marked.superseded = False
                    raise
                existing = self._entries.get(name)
                if existing is not None and not replace:
                    break  # adoption or duplicate error, handled below
                if existing is None or existing is marked:
                    # Atomic check-and-insert: the duplicate check, the
                    # pending-recovery pop, the version mint and the
                    # insertion happen under one registry-lock hold, so
                    # two racing register() calls can never both pass
                    # the not-registered check and silently clobber each
                    # other's entry.
                    pending = (
                        self._pending_recovery.pop(name, None)
                        if existing is None else None
                    )
                    if pending is not None and not replace:
                        if pending.records or pending.snapshot is not None:
                            if table is not None:
                                # A concrete table can't silently replace
                                # journalled rows; put the state back and
                                # demand replace=True.
                                self._pending_recovery[name] = pending
                                raise ServiceError(
                                    f"dataset {name!r} has journalled state "
                                    "in the data dir; pass replace=True to "
                                    "discard it"
                                )
                            self._pending_entry(
                                name, pending, loader=loader,
                                engine_config=self._restored_config(
                                    pending, engine_config
                                ),
                            )
                            return
                        # Header-only journal (fresh generation, no
                        # appends): adopt the persisted version and stay
                        # lazy — an uninterrupted process would also
                        # still be at that version, seq 0.
                        self._adopt_version(name, pending.version)
                    adopted = pending is not None and not replace
                    version = (
                        pending.version if adopted
                        else self._next_version(name)
                    )
                    entry = _DatasetEntry(
                        name=name,
                        loader=loader,
                        table=table,
                        # A header-only adoption must still honour the
                        # config persisted in the generation header —
                        # appends journalled under it replay under it.
                        engine_config=(
                            self._restored_config(pending, engine_config)
                            if adopted else engine_config
                        ),
                        version=version,
                        restored=adopted,
                    )
                    # Publish with the entry lock already held (it is
                    # unpublished, so acquiring it can never block or
                    # deadlock): appends and queries racing this
                    # registration block on the lock until the journal
                    # generation below exists, instead of failing on a
                    # segment-less dataset.
                    # repro: allow(lock-order) — registry→entry inversion is
                    # safe on a freshly built, not-yet-published entry: no
                    # other thread can hold its lock, so the acquire can
                    # never block, let alone deadlock.
                    entry.lock.acquire()
                    self._entries[name] = entry
                    break
            # Replace path: mark the current entry superseded — under
            # its own lock, outside the registry lock (reload nests
            # entry lock inside registry lock acquisitions, so the
            # inverse nesting could deadlock) — then loop to re-check it
            # is still the current entry.  Taking the old entry's lock
            # here also serialises against an in-flight background
            # rebuild's swap section, which re-checks the flag before
            # journalling; so a stale rebuild either sees the flag and
            # discards itself, or finishes its journal writes strictly
            # before the rotation below wipes them with the old
            # generation.
            with existing.lock:
                existing.superseded = True
            marked = existing
        if entry is None:
            assert existing is not None
            if existing.restored and loader is not None:
                # Restart adoption: the journal already rebuilt this
                # dataset from its snapshot; the loader only serves
                # future reloads.  (The persisted engine config, when
                # the snapshot carried one, stays authoritative for the
                # restored generation.)
                with existing.lock:
                    if existing.loader is None:
                        existing.loader = loader
                    if (existing.engine_config is None
                            and existing.engine is None
                            and engine_config is not None):
                        existing.engine_config = engine_config
                return
            raise ServiceError(
                f"dataset {name!r} is already registered; pass replace=True "
                "to override it"
            )
        try:
            if self._journal is not None:
                if table is not None:
                    # Inline tables must survive restarts without a
                    # loader: the snapshot is their durable source of
                    # truth.  The snapshot write rotates the generation
                    # itself, which also clears any state being replaced.
                    self._write_snapshot_locked(entry)
                elif not adopted:
                    self._journal.begin_generation(
                        name, version,
                        engine_config=self._config_payload(entry),
                    )
            self._account_entry(entry)
        except BaseException:
            # A failed journal write (ENOSPC, I/O error) must not leave
            # the entry published with no generation segment: every
            # append would fail forever and re-registration would demand
            # replace=True.  Unpublish it — and for a failed *replace*,
            # reinstate the old entry, which is still fully healthy: its
            # engine, table and on-disk generation are untouched
            # (rotation is failure-atomic and deletes old files only
            # after the new segment is durable).
            reinstated = False
            with self._lock:
                if self._entries.get(name) is entry:
                    if existing is not None:
                        self._entries[name] = existing
                        reinstated = True
                    else:
                        del self._entries[name]
                if pending is not None and name not in self._entries:
                    # The on-disk journalled state is still intact
                    # (rotation is failure-atomic): put the popped
                    # recovery state back so a retried registration
                    # still replays it — or still demands replace=True.
                    self._pending_recovery[name] = pending
            if reinstated:
                # Clear the supersession flag only after the dict points
                # back at the old entry: callers spinning in
                # _locked_entry retry harmlessly in between, while a
                # prematurely cleared flag would let a stale holder
                # journal through a dead object.
                with existing.lock:
                    existing.superseded = False
            entry.superseded = True
            raise
        finally:
            entry.lock.release()
        if existing is not None:
            self._cache.invalidate(name)

    def datasets(self) -> list[str]:
        """Registered dataset names, in registration order."""
        with self._lock:
            return list(self._entries)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._entries

    def version(self, name: str) -> int:
        """The current version of a dataset (bumped on every reload)."""
        entry = self._entry(name)
        with entry.lock:
            return entry.version

    def seq(self, name: str) -> int:
        """The dataset's append-journal position (0 = no appends yet)."""
        entry = self._entry(name)
        with entry.lock:
            return entry.ingest.seq

    def state(self, name: str) -> tuple[int, int]:
        """The dataset's full ingestion identity ``(version, seq)``."""
        entry = self._entry(name)
        with entry.lock:
            return entry.version, entry.ingest.seq

    def table(self, name: str) -> DataTable:
        """The dataset's table, running its loader if not yet materialised.

        Loading is single-flight: concurrent callers on a cold dataset
        run the loader exactly once.
        """
        with self._locked_entry(name) as entry:
            self._materialize(entry)
            if entry.table is None:
                assert entry.loader is not None
                entry.table = entry.loader()
                entry.loads += 1
            return entry.table

    def engine(self, name: str) -> Foresight:
        """The dataset's preprocessed engine, built lazily and cached.

        Builds are single-flight: when N threads race on a cold dataset,
        one thread pays for preprocessing under the entry lock while the
        rest wait and reuse the finished engine (``engine_builds`` stays
        at 1).  Datasets registered without an explicit ``engine_config``
        inherit the workspace's executor configuration.
        """
        return self._engine_snapshot(name)[0]

    def engine_builds(self, name: str) -> int:
        """How many times this dataset's engine has been built."""
        entry = self._entry(name)
        with entry.lock:
            return entry.engine_builds

    def reload(self, name: str) -> int:
        """Re-run the dataset's loader, bump its version, drop cached state.

        Returns the new version.  Datasets registered as concrete tables
        (no loader) keep their table but still get a version bump and
        cache/engine invalidation, which is the explicit way to signal
        "the underlying data changed" after in-place mutation.
        """
        with self._locked_entry(name) as entry:
            self._check_open()
            if entry.pending is not None:
                if entry.loader is not None:
                    # A reload discards the generation anyway: skip the
                    # deferred replay entirely, the loader re-runs fresh.
                    entry.pending = None
                else:
                    # Snapshot-backed, no loader: the kept rows ARE the
                    # deferred state — replay before rotating under them.
                    self._materialize(entry)
            version = self._next_version(name)
            table_backed = entry.loader is None and entry.table is not None
            if self._journal is not None and not table_backed:
                # Rotate the durable journal — fsynced new-generation
                # segment first, stale files deleted after — BEFORE the
                # in-memory swap.  A crash anywhere in this window
                # therefore recovers to either the old generation intact
                # or the new one empty; the previous generation's deltas
                # can never replay onto the new version.
                self._journal.begin_generation(
                    name, version,
                    engine_config=self._config_payload(entry),
                )
            if entry.loader is not None:
                entry.table = None
            entry.engine = None
            entry.version = version
            # A reload starts a new generation: the append journal (and
            # its sequence numbers) reset with the version bump, so
            # (version, seq) pairs never repeat.
            entry.ingest = IngestLog()
            if self._journal is not None and table_backed:
                # Table-backed datasets have no loader to re-run on
                # restart: the kept rows persist under the new version.
                # The snapshot write performs the rotation itself —
                # new-generation snapshot first (the old generation's
                # own snapshot stays untouched until the new segment is
                # durable), so no crash window loses the only copy.
                self._write_snapshot_locked(entry)
            self._account_entry(entry)
        self._cache.invalidate(name)
        obs_events.emit("generation_rotation", dataset=name, version=version,
                        durable=self._journal is not None)
        return version

    def invalidate(self, name: str | None = None) -> int:
        """Evict cached responses for one dataset (or all); returns the count."""
        if name is not None:
            self._entry(name)
        return self._cache.invalidate(name)

    # ------------------------------------------------------------------
    # Live ingestion
    # ------------------------------------------------------------------
    def append(
        self, name: str, rows: Sequence[Mapping[str, Any]]
    ) -> "AppendResult":
        """Append validated rows to a dataset, keeping its engine live.

        The whole append runs under the dataset's single-flight lock:

        1. the rows are validated against the dataset schema as a
           :class:`~repro.ingest.delta.DeltaBatch` (all-or-nothing;
           :class:`~repro.errors.DeltaValidationError` on any problem);
        2. if the engine is built in approximate mode and the accuracy
           budget allows, per-column sketch partials are built over just
           the delta rows (via the engine's executor) and **merged** into
           copies of the live store's sketches — no full rebuild; when
           the accumulated deltas exceed
           ``IngestConfig.rebuild_fraction`` of the base rows, the
           append pays for one full rebuild instead (refreshing the
           hyperplane signatures);
        3. the grown table, new engine and journal record swap in
           atomically: a query that snapshotted ``(engine, version,
           seq)`` before the swap keeps reading the old, internally
           consistent store, and every response names the snapshot it
           was computed from.

        Only this dataset's cached responses are invalidated; the
        version-and-seq-qualified cache key already makes them
        unreachable, invalidation just reclaims the memory eagerly.
        """
        schedule_rebuild = False
        ticket = None
        with self._tracer.span("workspace.append", dataset=name) as append_span:
            with self._locked_entry(name) as entry:
                self._check_open()
                self._materialize(entry)
                if entry.table is None:
                    assert entry.loader is not None
                    entry.table = entry.loader()
                    entry.loads += 1
                batch = DeltaBatch.from_records(name, list(rows),
                                                entry.table.schema)
                new_table = entry.table.concat(batch.table)
                engine = entry.engine
                new_engine: Foresight | None = None
                rebuilt = False
                if engine is None:
                    # No engine yet: the rows simply extend the table and
                    # the (eventual) first build sketches everything at
                    # once.
                    applied = APPLIED_DEFERRED
                else:
                    store = engine.store
                    rebuild_due = store is not None and should_rebuild(
                        entry.ingest, batch.n_rows, self._ingest_config
                    )
                    if store is None:
                        # Exact-mode engine: nothing sketched to maintain
                        # — swap in a new engine over the grown table.
                        new_engine = Foresight(
                            new_table,
                            registry=engine.registry,
                            config=engine.config,
                            preprocess=False,
                            executor=engine.executor,
                        )
                        applied = APPLIED_DEFERRED
                    elif (rebuild_due
                          and not self._ingest_config.background_rebuild):
                        new_engine = Foresight(
                            new_table,
                            registry=engine.registry,
                            config=engine.config,
                            executor=engine.executor,
                        )
                        rebuilt = True
                        applied = APPLIED_REBUILD
                    else:
                        # The delta-merge fast path — also taken when a
                        # rebuild is due but runs in the background: the
                        # append never pays for it.
                        partials = build_delta_partials(
                            batch.table, store, engine.executor
                        )
                        new_store = merge_delta(
                            store, new_table, batch.n_rows, partials
                        )
                        new_engine = Foresight(
                            new_table,
                            registry=engine.registry,
                            config=engine.config,
                            preprocess=False,
                            store=new_store,
                            executor=engine.executor,
                        )
                        applied = APPLIED_DELTA_MERGE
                        schedule_rebuild = rebuild_due
                # Write-ahead: the journal record (rows included) commits
                # to disk before any in-memory state changes.  If the
                # write fails the append fails whole — the caller sees
                # the error and the serving state is untouched.  Under
                # group commit the write happens here (so records hit
                # the file in entry-lock order) but the fsync is
                # deferred to a ticket waited on after the lock is
                # released — one leader's fsync then acknowledges every
                # appender queued behind it.
                timestamp = time.time()
                if self._journal is not None:
                    with obs_span("journal.append") as journal_span:
                        journal_span.set_attribute("n_rows", batch.n_rows)
                        ticket = self._journal.append(name, {
                            "type": RECORD_APPEND,
                            "seq": entry.ingest.seq + 1,
                            "applied": applied,
                            "n_rows": batch.n_rows,
                            "total_rows": new_table.n_rows,
                            "ts": timestamp,
                            "rows": batch.to_records(),
                        })
                        if ticket is None:
                            # No commit pipeline: the fsync (if
                            # configured) already ran inline above.
                            journal_span.set_attribute("fsync_role", "inline")
                if new_engine is not None:
                    entry.engine = new_engine
                if rebuilt:
                    entry.engine_builds += 1
                entry.table = new_table
                record = entry.ingest.append(batch.n_rows, applied,
                                             new_table.n_rows,
                                             timestamp=timestamp)
                version = entry.version
                if rebuilt:
                    # A full rebuild makes the sketch state a pure
                    # function of the rows: the natural compaction
                    # point.  The rotation it performs drains the commit
                    # pipeline, so the ticket below is already settled.
                    self._write_snapshot_locked(entry)
                self._account_entry(entry)
            if ticket is not None:
                # Group commit: block until a leader's fsync covers this
                # record.  Raising here means the append was NOT
                # acknowledged — the journal poisons further appends
                # until the generation rotates, so the already-updated
                # in-memory seq can never outrun what a restart would
                # replay.
                with obs_span("journal.commit_wait") as wait_span:
                    wait_span.set_attribute("fsync_role", ticket.wait())
            append_span.set_attribute("applied", applied)
            append_span.set_attribute("seq", record.seq)
            append_span.set_attribute("rows", batch.n_rows)
        with self._stats_lock:
            self._ingest_totals["appends"] += 1
            self._ingest_totals["rows_appended"] += batch.n_rows
            if applied == APPLIED_DELTA_MERGE:
                self._ingest_totals["delta_merges"] += 1
            elif applied == APPLIED_REBUILD:
                self._ingest_totals["rebuilds"] += 1
        self._cache.invalidate(name)
        if schedule_rebuild:
            self._schedule_rebuild(name)
        return AppendResult(
            dataset=name,
            version=version,
            seq=record.seq,
            rows_appended=batch.n_rows,
            total_rows=new_table.n_rows,
            applied=applied,
        )

    def rebuild(self, name: str) -> dict[str, Any] | None:
        """Rebuild a dataset's sketches off the append path, swap atomically.

        The heavy work — a full preprocess over a snapshot of the table
        — runs **without** the dataset lock, so appends keep
        delta-merging and queries keep serving while it runs.  At swap
        time, under the lock, any rows appended since the snapshot are
        delta-merged onto the fresh store, the engine swaps in whole
        (readers never observe a half-built engine), and the swap mints
        a sequence number of its own — two different engine states must
        never share one ``(version, seq)`` identity.  A reload or
        re-registration racing the rebuild discards it (returns None).

        Returns a summary dict, or None when there was nothing to
        rebuild (no approximate engine) or the result was discarded.
        """
        if self._closed:
            return None
        entry = self._entry(name)
        # Roots its own trace: background rebuilds run on a maintenance
        # thread with no ambient request span (the executor's submit()
        # path deliberately carries none across).
        with self._tracer.span("workspace.rebuild", dataset=name) as rebuild_span:
            with entry.lock:
                if entry.superseded:
                    return None
                self._materialize(entry)
                engine = entry.engine
                if engine is None:
                    # Nothing built yet: the lazy cold build *is* a fresh
                    # sketch of every row.
                    self._engine_snapshot(name)
                    return {
                        "dataset": name, "version": entry.version,
                        "seq": entry.ingest.seq,
                        "built_from_rows": entry.table.n_rows,
                        "merged_rows": 0,
                    }
                if engine.store is None:
                    return None  # exact mode: nothing sketched to refresh
                base_table = entry.table
                version = entry.version
                registry = engine.registry
                config = engine.config
                executor = engine.executor
            # Full preprocess over the snapshot — off-lock, possibly
            # seconds.
            with obs_span("engine.build") as build_span:
                build_span.set_attribute("rows", base_table.n_rows)
                fresh = Foresight(base_table, registry=registry,
                                  config=config, executor=executor)
            with entry.lock:
                # A reload bumps the version on this same entry; a
                # replace-registration installs a whole new entry and
                # flags this one (version comparison alone can't see
                # that — the stale object's version never changes).
                # Either way the rebuild is superseded: it must not
                # swap, and above all it must not journal into or
                # snapshot over the generation that replaced it.  The
                # flag is set under this lock, so the check is atomic
                # with the journal writes below.  _closed is re-checked
                # too: the off-lock build ran outside any lock, so
                # close() — which only waits on the maintenance pool and
                # the entry locks — may have flushed and closed the
                # journal under a direct rebuild() call in the meantime.
                if (entry.superseded or self._closed
                        or entry.version != version or entry.engine is None):
                    return None
                if entry.engine.store is None:  # pragma: no cover - defensive
                    return None
                n_now = entry.table.n_rows
                n_base = base_table.n_rows
                rebuilt = rebuild_with_catchup(
                    entry.table, base_table,
                    make_engine=lambda _table: fresh,
                )
                timestamp = time.time()
                if self._journal is not None:
                    # The snapshot rotation below drains the commit
                    # pipeline, so the swap record's group-commit ticket
                    # (if any) is settled before the lock is released.
                    with obs_span("journal.append"):
                        self._journal.append(name, {
                            "type": RECORD_SWAP,
                            "seq": entry.ingest.seq + 1,
                            "built_from_rows": n_base,
                            "total_rows": n_now,
                            "ts": timestamp,
                        })
                entry.engine = rebuilt
                entry.engine_builds += 1
                entry.rebuild_error = None
                record = entry.ingest.record_swap(
                    n_now - n_base, n_base, n_now, timestamp=timestamp
                )
                seq = record.seq
                self._write_snapshot_locked(entry)
                self._account_entry(entry)
            with self._stats_lock:
                self._ingest_totals["rebuilds"] += 1
                self._ingest_totals["bg_rebuilds"] += 1
            self._cache.invalidate(name)
            rebuild_span.set_attribute("seq", seq)
            rebuild_span.set_attribute("built_from_rows", n_base)
            rebuild_span.set_attribute("merged_rows", n_now - n_base)
            obs_events.emit("rebuild_swap", dataset=name, version=version,
                            seq=seq, built_from_rows=n_base,
                            merged_rows=n_now - n_base)
            return {
                "dataset": name, "version": version, "seq": seq,
                "built_from_rows": n_base, "merged_rows": n_now - n_base,
            }

    def _schedule_rebuild(self, name: str) -> None:
        """Queue a background rebuild unless one is already in flight."""
        with self._locked_entry(name) as entry:
            if entry.rebuild_running or self._closed:
                return
            entry.rebuild_running = True

        def _run() -> None:
            # The deadline watchdog covers exactly the maintenance-pool
            # execution: armed when the job starts running (queue wait
            # is not a stall), disarmed however the job exits.
            token = self._stall.watch(name, kind="background_rebuild")
            try:
                self.rebuild(name)
            except Exception as exc:  # noqa: BLE001 - surfaced in stats
                with entry.lock:
                    entry.rebuild_error = f"{type(exc).__name__}: {exc}"
            finally:
                token.done()
                with entry.lock:
                    entry.rebuild_running = False

        executor = self._maintenance_executor()
        if executor is None:
            with entry.lock:
                entry.rebuild_running = False
            return
        try:
            executor.submit(_run)
        except RuntimeError:
            # close() shut the pool between our checks: drop the
            # rebuild — a closed workspace schedules nothing.
            with entry.lock:
                entry.rebuild_running = False

    def _maintenance_executor(self):
        """The background-rebuild pool, or None once the workspace closed.

        Created under the registry lock — the same lock close() takes to
        set ``_closed`` — so an append racing close() can never conjure
        a fresh pool (and journal writes) after close() returned.
        """
        with self._lock:
            if self._closed:
                return None
            if self._maintenance is None:
                self._maintenance = create_executor(ExecutorConfig(
                    max_workers=2, thread_name_prefix="repro-maintenance",
                ))
            return self._maintenance

    def wait_for_rebuilds(self, timeout: float = 30.0) -> bool:
        """Block until no background rebuild is in flight (True on success)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                entries = list(self._entries.values())
            if not any(entry.rebuild_running for entry in entries):
                return True
            time.sleep(0.005)
        return False

    # ------------------------------------------------------------------
    # Durability operations
    # ------------------------------------------------------------------
    def flush(self, name: str) -> dict[str, Any]:
        """Force a dataset's journal to stable storage.

        With fsync-on-commit (the default) every acknowledged append is
        already durable and this is a cheap no-op barrier; with
        ``IngestConfig(fsync=False)`` it is the explicit durability
        point.  Returns the dataset's current identity and whether the
        workspace is durable at all.
        """
        with self._locked_entry(name) as entry:
            if self._journal is not None:
                self._journal.sync(name)
            return {
                "dataset": name,
                "version": entry.version,
                "seq": entry.ingest.seq,
                "durable": self._journal is not None,
            }

    def flush_all(self) -> list[dict[str, Any]]:
        """Flush every dataset's journal (shutdown / drain hook)."""
        return [self.flush(name) for name in self.datasets()]

    def close(self) -> None:
        """Flush journals, wait out background rebuilds, release workers.

        Idempotent.  A workspace used purely in memory (no ``data_dir``,
        no background rebuild ever scheduled) has nothing to release and
        close() is free.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            maintenance, self._maintenance = self._maintenance, None
        if maintenance is not None:
            maintenance.close()  # waits for an in-flight rebuild
        if self._journal is not None:
            try:
                self.flush_all()
            finally:
                self._journal.close()

    def ingest_stats(self) -> dict[str, Any]:
        """Ingestion counters (lifetime totals + per-dataset) for ops.

        ``totals`` are lifetime and monotone (they survive reloads);
        each dataset's counters describe its *current generation* — the
        appends journalled since its last reload — matching the ``seq``
        its responses carry, plus the live background-rebuild state.
        """
        with self._lock:
            entries = list(self._entries.values())
        datasets = {}
        for entry in entries:
            counters = entry.ingest.counters()
            counters["rebuild_running"] = entry.rebuild_running
            if entry.rebuild_error is not None:
                counters["rebuild_error"] = entry.rebuild_error
            datasets[entry.name] = counters
        with self._stats_lock:
            totals = dict(self._ingest_totals)
        stats = {
            "totals": totals,
            "datasets": datasets,
            "durable": self._journal is not None,
        }
        if self._journal is not None:
            stats["group_commit"] = self._journal.group_commit_stats()
        return stats

    # ------------------------------------------------------------------
    # Request serving
    # ------------------------------------------------------------------
    def handle(
        self, request: InsightRequest | Mapping[str, Any] | str
    ) -> InsightResponse:
        """Serve one insight request (DTO, dict payload, or JSON text).

        Safe to call from many threads at once.  The engine/version pair
        is snapshotted atomically, so a response's ``dataset_version``
        always matches the engine that produced it; a reload racing with
        an in-flight request at worst leaves one response cached under
        the superseded version, where the version-qualified key makes it
        unreachable.
        """
        request = self._coerce_request(request)
        if not self._obs_config.resources_enabled:
            with self._tracer.span("workspace.handle",
                                   dataset=request.dataset) as handle_span:
                return self._handle_traced(request, handle_span)
        recorder = CostRecorder()
        with self._tracer.span("workspace.handle",
                               dataset=request.dataset) as handle_span:
            handle_span.set_cost(recorder)
            # The CPU window closes before the snapshot below, so the
            # handler thread's own CPU — not just the shards' — is in
            # the recorded total.
            with attach_recorder(recorder), recorder.cpu_window():
                response = self._handle_traced(request, handle_span)
            snapshot = recorder.finish().snapshot()
            self._costs.record(
                snapshot,
                datasets=(request.dataset,),
                classes=request.insight_classes,
                trace_id=handle_span.trace_id,
            )
            if request.debug:
                # Stamped after the cache write inside _handle_traced:
                # the echo is per-serve diagnostics and must never enter
                # (or fork) the cached canonical payload.
                response.provenance = {**response.provenance,
                                       "cost": snapshot}
            return response

    def _handle_traced(
        self, request: InsightRequest, handle_span: Any
    ) -> InsightResponse:
        """The traced body of :meth:`handle` (cost accounting around it)."""
        engine, version, seq = self._engine_snapshot(request.dataset)
        key = (request.dataset, version, seq, request.canonical_key())

        # The cache stores canonical JSON, so hits rehydrate into
        # fresh objects and callers can never mutate a cached entry
        # in place.  (No span of its own: a dict probe is
        # microseconds, and the ``cache`` attribute on the handle
        # span already tells the hit/miss story.)
        cached = self._cache.get(key)
        record_cache_probe(cached is not None)
        if cached is not None:
            handle_span.set_attribute("cache", "hit")
            response = InsightResponse.from_json(cached)
            response.provenance = {**response.provenance, "cache": "hit"}
            return response
        handle_span.set_attribute("cache", "miss")

        start = time.perf_counter()
        offset = decode_cursor(request.cursor)
        page_size = request.top_k
        queries = request.to_queries(
            default_mode=engine.config.mode, top_k=offset + page_size
        )
        stats = PipelineStats()
        results = engine.rank_many(queries, stats=stats)
        with self._stats_lock:
            self._stats.merge(stats)

        carousels = []
        has_more = False
        for name, result in zip(request.insight_classes, results):
            page = result.insights[offset : offset + page_size]
            carousels.append(
                {
                    "insight_class": name,
                    "label": engine.registry.get(name).label or name,
                    "insights": [insight.as_dict() for insight in page],
                    "n_admitted": result.n_admitted,
                    "truncated": result.truncated,
                }
            )
            if result.n_admitted > offset + page_size:
                has_more = True
        elapsed = time.perf_counter() - start

        response = InsightResponse(
            dataset=request.dataset,
            dataset_version=version,
            dataset_seq=seq,
            carousels=carousels,
            timing={"total_seconds": elapsed},
            provenance={
                "cache": "miss",
                "mode": request.mode or engine.config.mode,
                "enumerations": stats.enumerations,
                "shared_queries": stats.shared_queries,
                "score_evaluations": stats.score_evaluations,
                "shared_score_queries": stats.shared_score_queries,
                "max_workers": engine.executor.max_workers,
            },
            next_cursor=(encode_cursor(offset + page_size)
                         if has_more else None),
        )
        self._cache.put(key, response.to_json())
        return response

    def handle_many(
        self,
        requests: Sequence[InsightRequest | Mapping[str, Any] | str],
        max_workers: int | None = None,
    ) -> list[InsightResponse]:
        """Serve a batch of requests concurrently, preserving order.

        Each request runs through :meth:`handle` on a worker thread, so
        batches get the full machinery — result cache, single-flight
        engine builds, shared enumeration and scoring — plus per-request
        batch provenance (``provenance["batch"]`` carries the request's
        index, the batch size and the pool width).  ``max_workers``
        defaults to the workspace's executor configuration, or
        4 when that is serial; pass 1 to force a serial batch.  The first
        request failure propagates, mirroring :meth:`handle`.
        """
        coerced = [self._coerce_request(request) for request in requests]
        if not coerced:
            return []
        if max_workers is None:
            configured = self._executor_config.max_workers
            max_workers = configured if configured > 1 else _DEFAULT_BATCH_WORKERS
        workers = max(1, min(int(max_workers), len(coerced)))
        batch_size = len(coerced)

        def _serve(indexed: tuple[int, InsightRequest]) -> InsightResponse:
            index, request = indexed
            response = self.handle(request)
            # Annotate after handle() has cached the canonical JSON, so
            # batch position never leaks into cached responses.
            response.provenance = {
                **response.provenance,
                "batch": {"index": index, "size": batch_size,
                          "max_workers": workers},
            }
            return response

        executor = create_executor(ExecutorConfig(max_workers=workers))
        try:
            return executor.map(_serve, list(enumerate(coerced)))
        finally:
            executor.close()

    def handle_json(self, text: str) -> str:
        """JSON-in / JSON-out convenience for transport adapters.

        Client-input failures never raise: malformed JSON / protocol
        violations, unknown dataset names and unknown insight classes
        come back as the structured DTO error envelope
        (``{"status": "error", "code": ..., "message": ...}``), so a
        transport can ship the payload verbatim with the matching status
        code.  Engine-side failures (a buggy loader, say) still
        propagate — they are server faults, not request faults.
        """
        try:
            request = InsightRequest.from_json(text)
        except ProtocolError as exc:
            return error_envelope_json("protocol_error", str(exc))
        try:
            return self.handle(request).to_json()
        except UnknownDatasetError as exc:
            return error_envelope_json(
                "unknown_dataset", str(exc), available=exc.available
            )
        except UnknownInsightClassError as exc:
            return error_envelope_json(
                "unknown_insight_class", str(exc), available=exc.available
            )

    # ------------------------------------------------------------------
    # Sessions (workspace-addressable by dataset name)
    # ------------------------------------------------------------------
    def session(self, dataset: str, name: str = "session") -> ExplorationSession:
        """Start an exploration session on a registered dataset."""
        return ExplorationSession(self.engine(dataset), name=name, dataset=dataset)

    def restore_session(
        self, state: SessionState | Mapping[str, Any] | str
    ) -> ExplorationSession:
        """Rebuild a session from saved state, resolving its dataset by name."""
        if isinstance(state, str):
            state = SessionState.from_json(state)
        elif not isinstance(state, SessionState):
            state = SessionState.from_dict(state)
        if state.dataset not in self._entries:
            raise UnknownDatasetError(state.dataset, self.datasets())
        return ExplorationSession.restore(self.engine(state.dataset), state)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_info(self) -> dict[str, int]:
        """Hit/miss/eviction counters of the result cache."""
        return self._cache.info()

    def pipeline_stats(self) -> dict[str, Any]:
        """Lifetime pipeline counters summed over every cache-miss request.

        A consistent snapshot (taken under the accumulator lock) of
        enumerations, sharing, score evaluations, shards and elapsed
        seconds — the raw material for the server's ``/metrics``.
        """
        with self._stats_lock:
            return self._stats.as_dict()

    @property
    def cache(self) -> ResultCache:
        return self._cache

    @property
    def tracer(self) -> Tracer:
        """The workspace's tracer (the server mounts ``/v1/traces`` on it)."""
        return self._tracer

    @property
    def costs(self) -> CostAggregator:
        """Per-request cost windows and totals (``/metrics`` reads these)."""
        return self._costs

    @property
    def ledger(self) -> MemoryLedger:
        """The incremental memory ledger (workspace-sized components)."""
        return self._ledger

    def debug_info(self, top_k: int | None = None) -> dict[str, Any]:
        """The ``/v1/debug`` document: ledger, costs, watchdog state.

        Every number here is an already-maintained counter — no object
        walking, no lock held across anything slow — so the endpoint
        stays safe to poll against a loaded server.  ``top_k`` bounds
        the most-CPU-expensive recent-request listing and defaults to
        ``ObsConfig.debug_top_k``.
        """
        if top_k is None:
            top_k = self._obs_config.debug_top_k
        tracer_stats = self._tracer.stats()
        extra = {
            "result_cache": self._cache.info()["bytes"],
            "trace_ring": tracer_stats["ring_bytes"],
        }
        watchdogs: dict[str, Any] = {"rebuild_stall": self._stall.snapshot()}
        if self._lock_wait is not None:
            watchdogs["lock_wait"] = self._lock_wait.snapshot()
        return {
            "resources_enabled": self._obs_config.resources_enabled,
            "memory": self._ledger.snapshot(extra=extra),
            "costs": self._costs.snapshot(top_k=top_k),
            "watchdogs": watchdogs,
        }

    def describe(self) -> list[dict[str, Any]]:
        """Status of every registered dataset (for ops endpoints).

        Never blocks: a dataset whose entry lock is held (a load or
        engine build in progress) is reported from a lock-free snapshot
        with ``busy=True`` instead of waiting the build out — health and
        metrics endpoints must stay responsive while a cold dataset
        preprocesses.
        """
        with self._lock:
            entries = list(self._entries.values())
        described = []
        for entry in entries:
            busy = not entry.lock.acquire(blocking=False)
            try:
                described.append(
                    {
                        "name": entry.name,
                        "version": entry.version,
                        "seq": entry.ingest.seq,
                        "loaded": entry.table is not None,
                        "engine_built": entry.engine is not None,
                        "engine_builds": entry.engine_builds,
                        "lazy": entry.loader is not None,
                        "busy": busy,
                        "rebuild_running": entry.rebuild_running,
                        "ingest": entry.ingest.counters(),
                    }
                )
            finally:
                if not busy:
                    entry.lock.release()
        return described

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Workspace(datasets={self.datasets()!r}, "
            f"cache={self._cache.info()['size']}/{self._cache.capacity})"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _entry(self, name: str) -> _DatasetEntry:
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                raise UnknownDatasetError(name, self.datasets()) from None

    @contextmanager
    def _locked_entry(self, name: str):
        """The dataset's *current* entry, locked.

        Between fetching an entry and acquiring its lock, a
        replace-registration can install a whole new entry — the fetched
        one is then a dead object whose journal handle now points into
        the replacement's generation, so mutating (or journalling
        through) it would corrupt the replacement's state.  The replace
        path marks the old entry ``superseded`` under its own lock
        before rotating, so re-checking the flag once the lock is held
        detects the race; losers simply retry on the current entry.
        """
        while True:
            entry = self._entry(name)
            with entry.lock:
                if entry.superseded:
                    continue  # replaced while we waited on its lock
                yield entry
                return

    def _engine_snapshot(self, name: str) -> tuple[Foresight, int, int]:
        """The dataset's engine, version and seq, consistent under concurrency.

        Runs the single-flight build when the engine is cold: the first
        caller holds the entry lock through load + preprocess while
        racing threads block on it, then everyone reads the same built
        engine.  Taking engine, version and ingest seq under one lock
        hold keeps a response's provenance consistent even when reloads
        or appends race — the triple names exactly the snapshot the
        response is computed from.

        Tracing: the warm path (engine built, no deferred replay) is the
        cached hot path's inner loop, so it pays for no span up front — a
        synthesized ``engine.snapshot`` is recorded only when the caller
        waited ≥ ``_SNAPSHOT_SPAN_FLOOR`` on the entry lock (or a race
        built after all).  The cold path opens a real span so the
        ``engine.build`` / ``journal.commit_wait`` children nest under it.
        """
        # Lock-free peek: reading two attributes off the current entry
        # is GIL-atomic; a stale read only mis-picks the span shape,
        # never the result (the locked body below is shape-independent).
        entry = self._entries.get(name)
        if entry is not None and entry.engine is not None and entry.pending is None:
            tracer = self._tracer
            started = tracer.clock()
            result, built, ticket = self._snapshot_locked(name)
            if ticket is not None:
                # Group commit: build marker durable before use.
                with obs_span("journal.commit_wait") as wait_span:
                    wait_span.set_attribute("fsync_role", ticket.wait())
            if built or tracer.clock() - started >= _SNAPSHOT_SPAN_FLOOR:
                tracer.record_span("engine.snapshot", current_span(),
                                   started, dataset=name, built=built)
            return result
        # The span covers the single-flight wait: a thread blocked on a
        # builder's lock hold shows the wait as this span's duration with
        # built=False.
        with obs_span("engine.snapshot", dataset=name) as snapshot_span:
            result, built, ticket = self._snapshot_locked(name)
            snapshot_span.set_attribute("built", built)
            if ticket is not None:
                # Group commit: build marker durable before use.
                with obs_span("journal.commit_wait") as wait_span:
                    wait_span.set_attribute("fsync_role", ticket.wait())
        return result

    def _snapshot_locked(self, name: str):
        """The locked body of :meth:`_engine_snapshot`.

        Returns ``(result, built, ticket)`` — the engine/version/seq
        triple, whether this call paid the cold build, and the build
        marker's group-commit ticket (waited on by the caller, off-lock).
        """
        ticket = None
        with self._locked_entry(name) as entry:
            built = False
            self._materialize(entry)
            if entry.engine is None:
                if entry.table is None:
                    assert entry.loader is not None
                    entry.table = entry.loader()
                    entry.loads += 1
                config = entry.engine_config
                if config is None:
                    # Inherit the workspace's executor configuration,
                    # so an explicit Workspace(executor=...) wins over
                    # the REPRO_MAX_WORKERS environment default either
                    # way.
                    config = EngineConfig(executor=self._executor_config)
                with obs_span("engine.build") as build_span:
                    build_span.set_attribute("rows", entry.table.n_rows)
                    entry.engine = Foresight(entry.table, config=config)
                entry.engine_builds += 1
                built = True
                # The cold build sketched the full current table (any
                # deferred appends included): the accuracy budget
                # counts from this freshly sketched base.
                entry.ingest.mark_rebuilt(entry.table.n_rows)
                if self._journal is not None and entry.ingest.seq > 0:
                    # Mark where the build froze the deferred appends
                    # so replay builds at the same point in the row
                    # stream.  (At seq 0 the build is over the base
                    # table alone and replay's lazy build is already
                    # identical.)
                    ticket = self._journal.append(entry.name, {
                        "type": RECORD_BUILD,
                        "seq": entry.ingest.seq,
                        "total_rows": entry.table.n_rows,
                        "ts": time.time(),
                    })
            if built:
                self._account_entry(entry)
            result = entry.engine, entry.version, entry.ingest.seq
        return result, built, ticket

    @staticmethod
    def _coerce_request(
        request: InsightRequest | Mapping[str, Any] | str
    ) -> InsightRequest:
        if isinstance(request, InsightRequest):
            return request
        if isinstance(request, str):
            return InsightRequest.from_json(request)
        if isinstance(request, Mapping):
            return InsightRequest.from_dict(request)
        raise ServiceError(
            "request must be an InsightRequest, a mapping or JSON text, "
            f"got {type(request).__name__}"
        )


@dataclass(frozen=True)
class AppendResult:
    """What one accepted append did, with its exact ingestion identity.

    ``(version, seq)`` is the dataset identity *after* the append —
    the pair every response computed from the new snapshot will carry.
    ``applied`` records how the rows were absorbed: ``"delta_merge"``
    (sketch partials merged into the live store), ``"rebuild"``
    (accuracy budget exhausted — full re-preprocess) or ``"deferred"``
    (no approximate engine built yet, rows extend the table only).
    """

    dataset: str
    version: int
    seq: int
    rows_appended: int
    total_rows: int
    applied: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "dataset": self.dataset,
            "version": self.version,
            "seq": self.seq,
            "rows_appended": self.rows_appended,
            "total_rows": self.total_rows,
            "applied": self.applied,
        }
