"""Opaque pagination cursors for the DTO protocol.

A cursor encodes the offset of the next page as URL-safe base64 over a
tiny versioned JSON payload.  Clients must treat cursors as opaque tokens:
the only valid operations are "pass it back verbatim" and "drop it to
restart from the first page".
"""

from __future__ import annotations

import base64
import binascii
import json

from repro.errors import ProtocolError

#: Version tag embedded in every cursor payload.
CURSOR_VERSION = 1


def encode_cursor(offset: int) -> str:
    """Encode a page offset as an opaque token."""
    if offset < 0:
        raise ProtocolError(f"cursor offset must be >= 0, got {offset}")
    payload = json.dumps(
        {"v": CURSOR_VERSION, "offset": int(offset)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return base64.urlsafe_b64encode(payload.encode("utf-8")).decode("ascii")


def decode_cursor(cursor: str | None) -> int:
    """Decode a token back to a page offset (None = first page)."""
    if cursor is None:
        return 0
    try:
        payload = json.loads(base64.urlsafe_b64decode(cursor.encode("ascii")))
    except (binascii.Error, UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"malformed pagination cursor: {cursor!r}") from exc
    if not isinstance(payload, dict) or payload.get("v") != CURSOR_VERSION:
        raise ProtocolError(f"unsupported cursor version in {cursor!r}")
    offset = payload.get("offset")
    if not isinstance(offset, int) or offset < 0:
        raise ProtocolError(f"invalid cursor offset in {cursor!r}")
    return offset
