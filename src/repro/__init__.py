"""Reproduction of "Foresight: Recommending Visual Insights" (VLDB 2017).

Public API highlights
---------------------
* :class:`repro.Foresight` — the recommendation engine (preprocess a table,
  get carousels of top insights, run insight queries, build visualizations).
* :class:`repro.ExplorationSession` — the interactive exploration loop
  (focus insights, neighborhood recommendations, save/restore state).
* :mod:`repro.data` — the columnar data substrate and the demo datasets.
* :mod:`repro.stats` — exact statistics behind every insight metric.
* :mod:`repro.sketch` — single-pass, mergeable sketches for fast
  approximate insight metrics (random hyperplane, moments, quantile,
  frequent items, entropy, random projection, reservoir sampling).
* :mod:`repro.viz` — declarative visualization specs and ASCII renderers.
"""

from repro.core.engine import Carousel, EngineConfig, Foresight
from repro.core.insight import Insight, InsightClass, EvaluationContext
from repro.core.query import InsightQuery, MetricRange, query
from repro.core.ranking import RankingResult
from repro.core.registry import InsightRegistry, default_registry
from repro.core.session import ExplorationSession
from repro.data.table import DataTable
from repro.sketch.store import SketchStore, SketchStoreConfig

__version__ = "1.0.0"

__all__ = [
    "Carousel",
    "DataTable",
    "EngineConfig",
    "EvaluationContext",
    "ExplorationSession",
    "Foresight",
    "Insight",
    "InsightClass",
    "InsightQuery",
    "InsightRegistry",
    "MetricRange",
    "RankingResult",
    "SketchStore",
    "SketchStoreConfig",
    "__version__",
    "default_registry",
    "query",
]
