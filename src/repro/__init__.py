"""Reproduction of "Foresight: Recommending Visual Insights" (VLDB 2017).

Public API highlights
---------------------
HTTP transport (:mod:`repro.server`, stdlib-only asyncio):

* :class:`repro.server.ReproServer` — HTTP/1.1 server over a workspace
  (``repro-serve`` console script): ``POST /v1/insights`` with request
  coalescing (concurrent singles micro-batch into one ``handle_many``
  call), ``POST /v1/insights:batch``, and an operations surface
  (``/v1/datasets``, ``/healthz``, ``/metrics`` with cache / engine /
  pipeline / admission / latency-histogram counters).  Admission
  control (bounded queue, in-flight cap, per-dataset and per-class
  quotas) rejects overload with 429/503 + ``Retry-After``; shutdown
  drains in-flight requests.  :class:`repro.server.ReproClient` is the
  blocking client counterpart.

Serving layer (multi-user, transport-agnostic):

* :class:`repro.Workspace` — registers named datasets (tables or lazy
  loaders), builds one preprocessed engine per dataset (single-flight
  under concurrent callers), serves
  :class:`repro.InsightRequest` → :class:`repro.InsightResponse` DTOs
  with LRU result caching, version-aware invalidation and pagination,
  executes request batches concurrently (``handle_many``), and restores
  exploration sessions by dataset name.  Thread-safe throughout.
* :class:`repro.InsightRequest` / :class:`repro.InsightResponse` — the
  versioned, JSON-serialisable wire protocol: one or many insight
  classes per request, shared query constraints, pagination cursors and
  cache/mode provenance on every response.
* :class:`repro.service.QueryPipeline` — the staged execution pipeline
  (plan → enumerate → score → rank); multi-class requests enumerate each
  shared candidate domain once instead of once per class, unpruned
  same-class queries share scored batches, and the score stage shards
  deterministically across :class:`repro.ExecutorConfig`-driven workers
  (``max_workers=1``, the default, is byte-identical to parallel runs
  and preserves the historical serial behavior exactly).

Single-process embedding:

* :class:`repro.Foresight` — the recommendation engine (preprocess a
  table, get carousels of top insights, run insight queries, build
  visualizations).
* :class:`repro.ExplorationSession` — the interactive exploration loop
  (focus insights, neighborhood recommendations, save/restore state
  through the DTO layer).
* :mod:`repro.data` — the columnar data substrate and the demo datasets.
* :mod:`repro.stats` — exact statistics behind every insight metric.
* :mod:`repro.sketch` — single-pass, mergeable sketches for fast
  approximate insight metrics (random hyperplane, moments, quantile,
  frequent items, entropy, random projection, reservoir sampling).
* :mod:`repro.viz` — declarative visualization specs and ASCII renderers.

Quick serving example::

    from repro import InsightRequest, Workspace
    from repro.data.datasets import load_oecd

    workspace = Workspace()
    workspace.register("oecd", load_oecd)
    response = workspace.handle(InsightRequest(
        dataset="oecd",
        insight_classes=("linear_relationship", "skew", "outliers"),
        top_k=3,
    ))
    print(response.provenance["cache"], response.top("skew"))

See ``docs/API.md`` for the full serving-layer guide.
"""

from repro.core.engine import Carousel, EngineConfig, Foresight
from repro.core.executor import ExecutorConfig
from repro.core.insight import Insight, InsightClass, EvaluationContext
from repro.core.query import InsightQuery, MetricRange, query
from repro.core.ranking import RankingResult
from repro.core.registry import InsightRegistry, default_registry
from repro.core.session import ExplorationSession
from repro.data.table import DataTable
from repro.service import (
    AppendResult,
    IngestConfig,
    InsightRequest,
    InsightResponse,
    SessionState,
    Workspace,
)
from repro.sketch.store import SketchStore, SketchStoreConfig

__version__ = "1.2.0"

__all__ = [
    "Carousel",
    "DataTable",
    "EngineConfig",
    "EvaluationContext",
    "ExecutorConfig",
    "ExplorationSession",
    "Foresight",
    "Insight",
    "InsightClass",
    "InsightQuery",
    "InsightRegistry",
    "AppendResult",
    "IngestConfig",
    "InsightRequest",
    "InsightResponse",
    "MetricRange",
    "RankingResult",
    "SessionState",
    "SketchStore",
    "SketchStoreConfig",
    "Workspace",
    "__version__",
    "default_registry",
    "query",
]
