"""Snapshot-immutability checker.

Serving correctness rests on copy-on-merge snapshot isolation (PR 4): a
published ``DataTable``/``SketchStore``/``Column`` is shared by every
in-flight query, so mutating one in place silently corrupts concurrent
results.  The contract is that those types are only ever *built* —
populated inside their own constructor modules or rebuilt fresh (via
constructors, ``from_parts``-style classmethods, or ``copy.deepcopy``)
— and never mutated after publication.

This rule flags, outside the whitelisted builder modules:

* attribute or subscript assignment through a tracked object
  (``table.columns[...] = ...``, ``store.version = ...``);
* mutating-method calls on a tracked object (``sketch.merge(...)``,
  ``store.update(...)``, ``column.values.sort()``).

An object is *tracked* when a function parameter or annotated local is
typed as one of the immutable types; it stops being tracked once
reassigned from a fresh-construction expression (constructor call,
classmethod on the type, or ``copy.deepcopy``/``copy.copy``/
``dataclasses.replace``) — mutating your own fresh copy is the
sanctioned pattern.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .engine import Finding, Rule, SourceModule
from .project import ProjectConfig

__all__ = ["ImmutabilityRule"]

RULE_ID = "snapshot-immutability"

_FRESH_CALLS = {"deepcopy", "copy", "replace"}


def _annotation_types(node: ast.expr | None) -> set[str]:
    """Direct type names of an annotation.

    Handles ``X``, ``mod.X``, ``X | None``, ``Optional[X]`` and their
    string-literal forms.  Container generics (``list[X]``,
    ``dict[str, X]``) deliberately contribute *nothing*: a list of
    snapshot objects is itself a plain mutable list — only the elements
    are protected, and element access is tracked at its own annotation
    sites.
    """
    if node is None:
        return set()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return set()
        return _annotation_types(parsed)
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.Attribute):
        return {node.attr}
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_types(node.left) | _annotation_types(node.right)
    if isinstance(node, ast.Subscript):
        base = _annotation_types(node.value)
        if base & {"Optional", "Annotated", "Final"}:
            inner = node.slice
            if isinstance(inner, ast.Tuple):
                return _annotation_types(inner.elts[0]) if inner.elts else set()
            return _annotation_types(inner)
        return set()
    return set()


class _FunctionChecker:
    def __init__(self, rule: "ImmutabilityRule", module: SourceModule, fn: ast.AST):
        self.rule = rule
        self.module = module
        self.fn = fn
        self.tracked: set[str] = set()
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        args = self.fn.args
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        for arg in all_args:
            if arg.arg == "self":
                continue
            if _annotation_types(arg.annotation) & self.rule.immutable_types:
                self.tracked.add(arg.arg)
        self._walk(self.fn.body)
        return self.findings

    # ------------------------------------------------------------------
    def _is_fresh(self, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Name) and func.id in self.rule.immutable_types:
            return True
        if isinstance(func, ast.Name) and func.id in _FRESH_CALLS:
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in _FRESH_CALLS:
                return True  # copy.deepcopy(x), dataclasses.replace(x)
            # Classmethod constructors: SketchStore.from_parts(...).
            if isinstance(func.value, ast.Name) and func.value.id in self.rule.immutable_types:
                return True
        return False

    def _root_name(self, node: ast.expr) -> str | None:
        """The base Name of an attribute/subscript chain, if any."""
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _flag(self, line: int, what: str, name: str) -> None:
        self.findings.append(
            Finding(
                rule=RULE_ID,
                path=self.module.rel,
                line=line,
                message=(
                    f"{what} on published snapshot object '{name}' outside a "
                    "builder module; copy (deepcopy/from_parts) before mutating"
                ),
            )
        )

    def _walk(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Assign):
                self._handle_assign(stmt.targets, stmt.value)
            elif isinstance(stmt, ast.AnnAssign):
                self._handle_annassign(stmt)
            elif isinstance(stmt, ast.AugAssign):
                root = self._root_name(stmt.target)
                if (
                    isinstance(stmt.target, (ast.Attribute, ast.Subscript))
                    and root in self.tracked
                ):
                    self._flag(stmt.lineno, "augmented assignment", root)
            for node in self._own_calls(stmt):
                self._handle_call(node)
            for name in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, name, None)
                if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                    self._walk(sub)
            for handler in getattr(stmt, "handlers", None) or []:
                self._walk(handler.body)

    def _own_calls(self, stmt: ast.stmt):
        """Call nodes in this statement's own expressions (not nested
        statements or nested function bodies — those are visited on
        their own)."""

        def rec(parent: ast.AST):
            for child in ast.iter_child_nodes(parent):
                if isinstance(
                    child,
                    (ast.stmt, ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
                ):
                    continue
                if isinstance(child, ast.Call):
                    yield child
                yield from rec(child)

        yield from rec(stmt)

    def _handle_assign(self, targets: list[ast.expr], value: ast.expr) -> None:
        for target in targets:
            if isinstance(target, ast.Name):
                # Rebinding: fresh copies leave the tracked set; aliasing
                # a tracked object keeps the new name tracked too.
                if self._is_fresh(value):
                    self.tracked.discard(target.id)
                elif isinstance(value, ast.Name) and value.id in self.tracked:
                    self.tracked.add(target.id)
                continue
            root = self._root_name(target)
            if isinstance(target, (ast.Attribute, ast.Subscript)) and root in self.tracked:
                kind = "attribute assignment" if isinstance(target, ast.Attribute) else "item assignment"
                self._flag(target.lineno, kind, root)

    def _handle_annassign(self, stmt: ast.AnnAssign) -> None:
        if isinstance(stmt.target, ast.Name):
            types = _annotation_types(stmt.annotation) & self.rule.immutable_types
            if types and not (stmt.value is not None and self._is_fresh(stmt.value)):
                self.tracked.add(stmt.target.id)
            return
        root = self._root_name(stmt.target)
        if isinstance(stmt.target, (ast.Attribute, ast.Subscript)) and root in self.tracked:
            self._flag(stmt.lineno, "attribute assignment", root)

    def _handle_call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in self.rule.mutating_methods:
            return
        root = self._root_name(func.value)
        if root in self.tracked:
            self._flag(node.lineno, f"mutating call .{func.attr}()", root)


class ImmutabilityRule(Rule):
    id = RULE_ID

    def __init__(self, config: ProjectConfig):
        self.config = config
        self.immutable_types = set(config.immutable_types)
        self.mutating_methods = set(config.mutating_methods)

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if not module.in_scope(self.config.immutability_scopes):
            return ()
        if any(module.matches(builder) for builder in self.config.builder_modules):
            return ()
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(_FunctionChecker(self, module, node).run())
        return findings
