"""Declared project invariants consumed by the rule modules.

This file is the single place where the repository's concurrency and
purity contracts are written down as data.  The rules in the sibling
modules are generic AST machinery; everything repo-specific — which
attributes are locks, what order they may nest in, which modules may
construct snapshot objects, where wall-clock reads are banned — lives
here, so adding a lock or widening a scope is a one-line config change
reviewed alongside the code it describes.

Lock hierarchy
--------------
Levels increase in the order locks may be *taken while already holding
another*; holding a lock of level L, you may only acquire locks of level
strictly greater than L (or re-enter the same reentrant lock):

====================  =====  ==========================================
role                  level  lock
====================  =====  ==========================================
``replica.sync``        5    ``ReplicaWorkspace._sync_lock`` sync pass
``workspace.entry``    10    per-dataset ``_DatasetEntry.lock`` (RLock)
``workspace.registry`` 20    ``Workspace._lock`` registry (RLock)
``workspace.stats``    30    ``Workspace._stats_lock`` counter leaf
``cache.lock``         30    ``ResultCache._lock`` leaf
``executor.lock``      30    ``ParallelExecutor._lock`` pool leaf
``executor.process``   30    ``ProcessExecutor._lock`` pool leaf
``metrics.lock``       30    ``ServerMetrics._lock`` counter leaf
``journal.commit``     30    ``_CommitPipeline.cond`` group-commit leaf
``obs.trace``          30    ``Tracer._drain_lock`` trace-ring leaf
``obs.cost``           30    ``CostRecorder._lock`` per-request leaf
``obs.cost_window``    30    ``CostAggregator._lock`` window leaf
``obs.ledger``         30    ``MemoryLedger._lock`` byte-counter leaf
``obs.stall``          30    ``StallDetector._lock`` watchdog leaf
``obs.lock_wait``      30    ``LockWaitWatchdog._lock`` watchdog leaf
====================  =====  ==========================================

``replica.sync`` sits *below* the entry lock: a replica's sync pass
serialises whole apply passes and takes entry/registry locks inside
them, never the reverse.

``entry < registry`` matches the hot paths: ``_locked_entry`` holders
call back into the registry (``_entry``/``_next_version``) while the
entry lock is held.  ``register()`` intentionally inverts this twice
while publishing a replacement entry; both sites carry reasoned
``# repro: allow(lock-order)`` suppressions explaining why they cannot
deadlock (post-mark bail-out protocol / unpublished entry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = ["LockSpec", "ProjectConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class LockSpec:
    """One declared lock: where it lives and where it sits in the order."""

    lock_id: str
    level: int
    module: str  # path suffix, e.g. "service/workspace.py"
    cls: str | None  # owning class, None for module-level locks
    attr: str  # attribute name holding the lock object
    reentrant: bool = False


@dataclass(frozen=True)
class ProjectConfig:
    """Everything the six rule families need to know about this repo."""

    # ---- lock-order ------------------------------------------------------
    #: Modules whose lock usage is extracted and checked.
    lock_modules: tuple[str, ...] = ()
    locks: tuple[LockSpec, ...] = ()
    #: Calls on these ``self.<attr>`` receivers transitively acquire the
    #: mapped lock role (cross-module components used under locks).
    lock_taking_attrs: Mapping[str, str] = field(default_factory=dict)

    # ---- snapshot-immutability ------------------------------------------
    #: Published snapshot types that must never be mutated in place.
    immutable_types: tuple[str, ...] = ()
    #: Modules allowed to build/populate those types.
    builder_modules: tuple[str, ...] = ()
    #: Method names that mutate their receiver.
    mutating_methods: tuple[str, ...] = ()
    #: Modules the immutability rule scans (empty scope = everywhere).
    immutability_scopes: tuple[str, ...] = ("",)

    # ---- determinism -----------------------------------------------------
    determinism_scopes: tuple[str, ...] = ()

    # ---- durability-protocol --------------------------------------------
    durability_scopes: tuple[str, ...] = ()
    #: The only module allowed to touch files under data_dir.
    durability_owner: str = "ingest/durable.py"
    #: ``self.<attr>`` receivers that denote the journal component.
    journal_attrs: tuple[str, ...] = ("_journal",)
    #: Journal methods that write records/files.
    journal_write_methods: tuple[str, ...] = ()
    #: Lock roles that satisfy the "journal writes happen under the
    #: owning entry lock" requirement.
    journal_guard_locks: tuple[str, ...] = ()

    # ---- async-hygiene ---------------------------------------------------
    async_scopes: tuple[str, ...] = ()
    #: Fully dotted call names that block the event loop.
    async_blocking_calls: tuple[str, ...] = ()
    #: ``workspace.<method>`` receivers/methods that block.
    workspace_receivers: tuple[str, ...] = ("_workspace", "workspace")
    workspace_blocking_methods: tuple[str, ...] = ()

    # ---- trace-hygiene ---------------------------------------------------
    #: Receivers whose ``.span()``/``.start_span()`` calls create spans.
    tracer_receivers: tuple[str, ...] = ("tracer", "_tracer")
    #: Bare helper functions that create context-managed spans.
    trace_span_functions: tuple[str, ...] = ("obs_span",)
    #: Modules exempt from the rule (the tracer's own internals).
    trace_exempt_modules: tuple[str, ...] = ("obs/tracer.py",)


DEFAULT_CONFIG = ProjectConfig(
    lock_modules=(
        "service/workspace.py",
        "service/replica.py",
        "service/cache.py",
        "core/executor.py",
        "server/metrics.py",
        "ingest/durable.py",
        "obs/tracer.py",
        "obs/resources.py",
        "obs/ledger.py",
        "obs/watchdog.py",
    ),
    locks=(
        LockSpec("workspace.entry", 10, "service/workspace.py", "_DatasetEntry", "lock", reentrant=True),
        LockSpec("workspace.registry", 20, "service/workspace.py", "Workspace", "_lock", reentrant=True),
        LockSpec("workspace.stats", 30, "service/workspace.py", "Workspace", "_stats_lock"),
        # The replica's sync serialiser wraps entry/registry work, so it
        # sits below them; the duplicate entry/registry specs teach the
        # checker that replica.py's ``self._lock`` / ``entry.lock`` uses
        # are the same inherited Workspace locks, not new ones.
        LockSpec("replica.sync", 5, "service/replica.py", "ReplicaWorkspace", "_sync_lock"),
        LockSpec("workspace.registry", 20, "service/replica.py", "ReplicaWorkspace", "_lock", reentrant=True),
        LockSpec("workspace.entry", 10, "service/replica.py", "_DatasetEntry", "lock", reentrant=True),
        LockSpec("cache.lock", 30, "service/cache.py", "ResultCache", "_lock", reentrant=True),
        LockSpec("executor.lock", 30, "core/executor.py", "ParallelExecutor", "_lock"),
        LockSpec("executor.process", 30, "core/executor.py", "ProcessExecutor", "_lock"),
        LockSpec("metrics.lock", 30, "server/metrics.py", "ServerMetrics", "_lock"),
        # The group-commit condition: taken under workspace.entry on the
        # journal write paths, bare during off-lock ticket waits; never
        # wraps another lock.  Condition re-entry happens only through
        # wait()'s release/reacquire, which the order rule models as a
        # single hold, so it stays non-reentrant here.
        LockSpec("journal.commit", 30, "ingest/durable.py", "_CommitPipeline", "cond"),
        # The tracer's drain lock: root-span completion takes it to
        # publish the trace's span bucket into the ring.  A leaf by
        # design — root spans only end after every workspace/journal
        # lock is released (child-span ends are lock-free appends).
        LockSpec("obs.trace", 30, "obs/tracer.py", "Tracer", "_drain_lock"),
        # Resource-accounting leaves: pure counter read/write under the
        # lock, no calls out — safe to take under any workspace lock.
        LockSpec("obs.cost", 30, "obs/resources.py", "CostRecorder", "_lock"),
        LockSpec("obs.cost_window", 30, "obs/resources.py", "CostAggregator", "_lock"),
        LockSpec("obs.ledger", 30, "obs/ledger.py", "MemoryLedger", "_lock"),
        LockSpec("obs.stall", 30, "obs/watchdog.py", "StallDetector", "_lock"),
        LockSpec("obs.lock_wait", 30, "obs/watchdog.py", "LockWaitWatchdog", "_lock"),
    ),
    # _tracer covers span creation AND root-span completion: ending a
    # root publishes its bucket under the obs.trace leaf lock, so a
    # tracer call under a level-30 lock would be an inversion.
    lock_taking_attrs={
        "_cache": "cache.lock",
        "_metrics": "metrics.lock",
        "_tracer": "obs.trace",
        "_ledger": "obs.ledger",
        "_costs": "obs.cost_window",
    },
    immutable_types=(
        "DataTable",
        "SketchStore",
        "Column",
        "NumericColumn",
        "CategoricalColumn",
        "BooleanColumn",
        "ColumnSketches",
    ),
    builder_modules=(
        "data/table.py",
        "data/column.py",
        "sketch/store.py",
    ),
    mutating_methods=(
        "merge",
        "update",
        "update_many",
        "add",
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "advance",
        "discard",
        "sort",
        "reverse",
    ),
    determinism_scopes=("repro/core/", "repro/stats/", "repro/sketch/"),
    durability_scopes=("repro/ingest/", "repro/service/", "repro/server/",
                       "repro/replication/"),
    durability_owner="ingest/durable.py",
    journal_attrs=("_journal",),
    journal_write_methods=(
        "append",
        "write_snapshot",
        "begin_generation",
        "sync",
        "load",  # only flagged when called with repair=True
        "remove",
    ),
    journal_guard_locks=("workspace.entry",),
    async_scopes=("repro/server/",),
    async_blocking_calls=(
        "time.sleep",
        "os.fsync",
        "os.replace",
        "os.rename",
    ),
    workspace_receivers=("_workspace", "workspace"),
    workspace_blocking_methods=(
        "handle",
        "register",
        "reload",
        "append",
        "rebuild",
        "flush",
        "flush_all",
        "close",
        "wait_for_rebuilds",
    ),
)
