"""Runtime counterpart of the static lock-order rule.

The AST walker sees lexical nesting; this shim sees *actual* nesting.
With ``REPRO_DEBUG_LOCKS=1`` the test suite (via ``tests/conftest.py``)
installs a :class:`LockTracker` that wraps ``threading.Lock`` /
``threading.RLock`` construction in thin proxies.  Every successful
blocking acquisition resolves the acquiring source line against the
*statically extracted* site table (:func:`repro.analysis.locks.
collect_lock_sites`), giving the lock its declared role, and is checked
against the per-thread stack of roles already held:

* acquiring a lower-level role while holding a higher one → violation;
* re-entering a non-reentrant role → violation.

Sites whose line carries a ``# repro: allow(lock-order)`` suppression are
absent from the site table, so a static allowance extends to runtime.
Acquisitions from unresolved sites (test helpers, third-party code) are
ignored rather than guessed at: the tracker only ever reasons about
locks it can name, which also keeps it safe around ``threading.
Condition`` — the condition's internal ``_acquire_restore`` bookkeeping
reaches the raw lock through ``__getattr__`` delegation and bypasses
tracking entirely.

Violations are recorded, not raised, at the point of detection (raising
inside an arbitrary lock acquire corrupts the program under test);
:meth:`LockTracker.assert_clean` turns the record into a test failure at
session teardown.  Tests can also pin roles to specific lock objects
with :meth:`LockTracker.declare`, bypassing source-line resolution.
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from .locks import LockSite, collect_lock_sites
from .project import DEFAULT_CONFIG, ProjectConfig

__all__ = ["LockTracker", "LockOrderViolation", "install_from_env"]

_MAX_FRAMES = 20


@dataclass(frozen=True)
class LockOrderViolation:
    kind: str  # "inversion" | "reacquire"
    thread: str
    held_role: str
    held_site: str
    acquired_role: str
    acquired_site: str

    def render(self) -> str:
        return (
            f"[{self.kind}] thread {self.thread!r}: acquired '{self.acquired_role}' "
            f"at {self.acquired_site} while holding '{self.held_role}' "
            f"(taken at {self.held_site})"
        )


class _TracedLock:
    """Transparent proxy over a real lock, reporting to the tracker."""

    __slots__ = ("_inner", "_tracker")

    def __init__(self, inner, tracker: "LockTracker"):
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "_tracker", tracker)

    def acquire(self, blocking: bool = True, timeout: float = -1):
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._tracker._on_acquire(self, blocking)
        return ok

    def release(self):
        self._tracker._on_release(self)
        self._inner.release()

    def __enter__(self):
        return self.acquire()

    def __exit__(self, exc_type, exc, tb):
        self.release()
        return False

    def locked(self):
        return self._inner.locked()

    def __getattr__(self, name):
        # Everything else (e.g. Condition's _acquire_restore/_release_save
        # and _is_owned) goes straight to the raw lock, deliberately
        # untracked.
        return getattr(self._inner, name)

    def __repr__(self):
        return f"<traced {self._inner!r}>"


class LockTracker:
    """Patches lock construction and records ordering violations."""

    def __init__(self, config: ProjectConfig | None = None):
        self.config = config or DEFAULT_CONFIG
        self.violations: list[LockOrderViolation] = []
        self._sites: dict[tuple[str, int], LockSite] = {}
        self._files: set[str] = set()
        self._levels = {spec.lock_id: spec.level for spec in self.config.locks}
        self._reentrant = {spec.lock_id for spec in self.config.locks if spec.reentrant}
        self._declared: dict[int, str] = {}
        self._held = threading.local()
        self._record_lock = threading.Lock()
        self._installed = False
        self._orig_lock = None
        self._orig_rlock = None
        self._realpaths: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, roots: Iterable[Path] | None = None) -> "LockTracker":
        """Load the static site table and patch threading factories."""
        if roots is None:
            import repro

            roots = [Path(repro.__file__).resolve().parent]
        self._sites = collect_lock_sites(roots, self.config)
        self._files = {path for path, _line in self._sites}
        if self._installed:
            return self
        self._orig_lock = threading.Lock
        self._orig_rlock = threading.RLock
        tracker = self

        def make_lock():
            return _TracedLock(tracker._orig_lock(), tracker)

        def make_rlock():
            return _TracedLock(tracker._orig_rlock(), tracker)

        threading.Lock = make_lock  # type: ignore[assignment]
        threading.RLock = make_rlock  # type: ignore[assignment]
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        threading.Lock = self._orig_lock  # type: ignore[assignment]
        threading.RLock = self._orig_rlock  # type: ignore[assignment]
        self._installed = False

    def declare(self, lock, role: str) -> None:
        """Pin a role to a lock object (tests; skips site resolution)."""
        self._declared[id(lock)] = role

    # ------------------------------------------------------------------
    # Acquisition bookkeeping
    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def _realpath(self, filename: str) -> str:
        cached = self._realpaths.get(filename)
        if cached is None:
            cached = os.path.realpath(filename)
            self._realpaths[filename] = cached
        return cached

    def _resolve(self, lock) -> tuple[str | None, str]:
        declared = self._declared.get(id(lock))
        if declared is not None:
            return declared, "<declared>"
        frame = sys._getframe(2)  # _resolve <- _on_acquire <- acquire
        for _ in range(_MAX_FRAMES):
            if frame is None:
                break
            filename = self._realpath(frame.f_code.co_filename)
            if filename in self._files:
                site = self._sites.get((filename, frame.f_lineno))
                if site is not None and site.lock_id is not None:
                    return site.lock_id, f"{site.path}:{site.line}"
                return None, ""
            frame = frame.f_back
        return None, ""

    def _on_acquire(self, lock, blocking: bool) -> None:
        role, site = self._resolve(lock)
        if role is None:
            return
        stack = self._stack()
        level = self._levels.get(role)
        if blocking and level is not None:
            for _held_id, held_role, held_level, held_site in reversed(stack):
                if held_role == role:
                    if role not in self._reentrant:
                        self._record("reacquire", held_role, held_site, role, site)
                    # Reentrant re-entry: deeper holds were already
                    # checked when first taken.
                    break
                if held_level is not None and level < held_level:
                    self._record("inversion", held_role, held_site, role, site)
        stack.append((id(lock), role, level, site))

    def _on_release(self, lock) -> None:
        stack = getattr(self._held, "stack", None)
        if not stack:
            return
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] == id(lock):
                del stack[index]
                return

    def _record(
        self, kind: str, held_role: str, held_site: str, role: str, site: str
    ) -> None:
        violation = LockOrderViolation(
            kind=kind,
            thread=threading.current_thread().name,
            held_role=held_role,
            held_site=held_site,
            acquired_role=role,
            acquired_site=site,
        )
        with self._record_lock:
            self.violations.append(violation)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def assert_clean(self) -> None:
        with self._record_lock:
            violations = list(self.violations)
        if violations:
            rendered = "\n".join(v.render() for v in violations)
            raise AssertionError(
                f"{len(violations)} runtime lock-order violation(s) against the "
                f"declared hierarchy:\n{rendered}"
            )


def install_from_env(config: ProjectConfig | None = None) -> LockTracker | None:
    """Install a tracker when ``REPRO_DEBUG_LOCKS=1``; else no-op."""
    if os.environ.get("REPRO_DEBUG_LOCKS") != "1":
        return None
    return LockTracker(config).install()
