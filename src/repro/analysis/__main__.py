"""``repro-lint`` — run the project-invariant analyzer from the CLI.

Usage::

    repro-lint [paths...] [--format text|json] [--output FILE]

Exit status: 0 when the tree is clean (suppressed findings allowed),
1 when unsuppressed findings remain, 2 on usage errors.  With
``--format json`` the machine-readable report is also written to
``LINT_report.json`` (or ``--output``) for CI artifact collection.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import build_analyzer

DEFAULT_REPORT = "LINT_report.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static checks for the repo's concurrency/durability/determinism invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format; json also writes the report file",
    )
    parser.add_argument(
        "--output",
        default=None,
        help=f"where to write the JSON report (default with --format json: {DEFAULT_REPORT})",
    )
    args = parser.parse_args(argv)

    paths = [Path(p) for p in (args.paths or ["src/repro"])]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    report = build_analyzer().run(paths)

    if args.format == "json":
        sys.stdout.write(report.to_json())
    else:
        sys.stdout.write(report.render_text())

    output = args.output
    if output is None and args.format == "json":
        output = DEFAULT_REPORT
    if output is not None:
        Path(output).write_text(report.to_json(), encoding="utf-8")

    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
