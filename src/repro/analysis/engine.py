"""Core machinery for the ``repro.analysis`` static analyzer.

The engine is deliberately small and stdlib-only: it discovers Python
sources, parses them once into :class:`SourceModule` objects (AST plus
the raw text and the inline suppression comments), runs every registered
rule over each module, and folds the results into a :class:`Report`.

Suppressions
------------
A finding can be silenced with an inline comment::

    some_code()  # repro: allow(rule-id) — reason why this is safe

or, for statements too long to annotate inline, on the line directly
above the offending statement::

    # repro: allow(lock-order) — post-mark protocol, see comment below
    with marked.lock:
        ...

Multiple rule ids may be listed, comma separated.  Every suppression
must carry a reason; a reasonless or unused suppression is itself
reported (rule id ``unused-suppression``), so stale allowances cannot
linger after the code they excused is gone.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "Suppression",
    "SourceModule",
    "Rule",
    "Report",
    "Analyzer",
    "load_module",
    "iter_python_files",
]

# Matches "repro: allow(rule-a, rule-b)" comments followed by a reason;
# the reason separator may be an em dash, double hyphen, hyphen, or colon.
# (Spelled without a leading hash here so the analyzer does not read this
# very comment as a suppression.)
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*([a-zA-Z0-9_-]+(?:\s*,\s*[a-zA-Z0-9_-]+)*)\s*\)"
    r"\s*(?:(?:—|--|-|:)\s*(\S.*?))?\s*$"
)

UNUSED_SUPPRESSION = "unused-suppression"
PARSE_ERROR = "parse-error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    message: str
    col: int = 0

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Suppression:
    """An inline ``# repro: allow(...)`` comment."""

    rules: tuple[str, ...]
    line: int
    reason: str
    own_line: bool
    #: Rule ids that actually matched a finding — filled in by the engine.
    used: set[str] = field(default_factory=set)

    def covers(self, rule: str) -> bool:
        return rule in self.rules


@dataclass
class SourceModule:
    """A parsed source file plus everything rules need to inspect it."""

    path: Path
    rel: str
    text: str
    tree: ast.Module
    lines: list[str]
    suppressions: list[Suppression]
    #: line number -> suppressions covering findings on that line.
    covering: dict[int, list[Suppression]]

    def suppressions_for(self, line: int) -> list[Suppression]:
        return self.covering.get(line, [])

    def matches(self, suffix: str) -> bool:
        """True when this module's path ends with ``suffix`` (e.g.
        ``service/workspace.py``), respecting path-component boundaries."""
        if self.rel == suffix:
            return True
        return self.rel.endswith("/" + suffix)

    def in_scope(self, scopes: Sequence[str]) -> bool:
        """Substring scope match; an empty-string scope matches everything."""
        return any(scope == "" or scope in self.rel for scope in scopes)


class Rule:
    """Base class for checkers.

    ``check`` runs once per module; ``finish`` runs after every module has
    been checked and may emit whole-project findings (e.g. lock cycles
    whose edges span files).
    """

    id: str = "rule"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        return ()

    def finish(self) -> Iterable[Finding]:
        return ()


def _parse_suppressions(text: str, lines: list[str]) -> list[Suppression]:
    suppressions: list[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(tok.string)
            if match is None:
                continue
            rules = tuple(part.strip() for part in match.group(1).split(","))
            reason = (match.group(2) or "").strip()
            line = tok.start[0]
            own_line = lines[line - 1].lstrip().startswith("#")
            suppressions.append(
                Suppression(rules=rules, line=line, reason=reason, own_line=own_line)
            )
    except tokenize.TokenError:
        pass
    return suppressions


def _is_blank_or_comment(line: str) -> bool:
    stripped = line.strip()
    return not stripped or stripped.startswith("#")


def _build_covering(
    suppressions: list[Suppression], lines: list[str]
) -> dict[int, list[Suppression]]:
    covering: dict[int, list[Suppression]] = {}
    for sup in suppressions:
        covered = [sup.line]
        if sup.own_line:
            # A standalone comment covers the next code line, skipping
            # blanks and further comments.
            cursor = sup.line  # 0-based index of the next line
            while cursor < len(lines) and _is_blank_or_comment(lines[cursor]):
                cursor += 1
            if cursor < len(lines):
                covered.append(cursor + 1)
        for line in covered:
            covering.setdefault(line, []).append(sup)
    return covering


def load_module(path: Path, rel: str | None = None) -> SourceModule:
    """Parse one file into a :class:`SourceModule`.

    Raises :class:`SyntaxError` if the file does not parse; the analyzer
    turns that into a ``parse-error`` finding rather than crashing.
    """
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    lines = text.splitlines()
    suppressions = _parse_suppressions(text, lines)
    return SourceModule(
        path=path,
        rel=rel if rel is not None else path.as_posix(),
        text=text,
        tree=tree,
        lines=lines,
        suppressions=suppressions,
        covering=_build_covering(suppressions, lines),
    )


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


@dataclass
class Report:
    """The outcome of one analyzer run."""

    findings: list[Finding]
    suppressed: list[Finding]
    files: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, object]:
        return {
            "tool": "repro-lint",
            "version": 1,
            "ok": self.ok,
            "files": self.files,
            "summary": self.summary(),
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    def render_text(self) -> str:
        out: list[str] = []
        for finding in self.findings:
            out.append(finding.render())
        noun = "file" if self.files == 1 else "files"
        if self.findings:
            out.append("")
            parts = ", ".join(f"{rule}: {n}" for rule, n in self.summary().items())
            out.append(
                f"{len(self.findings)} finding(s) in {self.files} {noun} ({parts}); "
                f"{len(self.suppressed)} suppressed."
            )
        else:
            out.append(
                f"OK: {self.files} {noun} clean "
                f"({len(self.suppressed)} finding(s) suppressed)."
            )
        return "\n".join(out) + "\n"


class Analyzer:
    """Runs a set of rules over a file tree and applies suppressions."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules = list(rules)

    def run(self, paths: Iterable[Path | str]) -> Report:
        modules: list[SourceModule] = []
        raw_findings: list[Finding] = []
        files = 0
        for path in iter_python_files(Path(p) for p in paths):
            files += 1
            try:
                modules.append(load_module(path))
            except SyntaxError as exc:
                raw_findings.append(
                    Finding(
                        rule=PARSE_ERROR,
                        path=path.as_posix(),
                        line=exc.lineno or 1,
                        message=f"file does not parse: {exc.msg}",
                    )
                )

        by_rel = {module.rel: module for module in modules}
        for rule in self.rules:
            for module in modules:
                raw_findings.extend(rule.check(module))
            raw_findings.extend(rule.finish())

        active: list[Finding] = []
        suppressed: list[Finding] = []
        for finding in sorted(raw_findings, key=lambda f: (f.path, f.line, f.rule)):
            module = by_rel.get(finding.path)
            matched = None
            if module is not None and finding.rule != PARSE_ERROR:
                for sup in module.suppressions_for(finding.line):
                    if sup.covers(finding.rule):
                        matched = sup
                        break
            if matched is not None:
                matched.used.add(finding.rule)
                suppressed.append(finding)
            else:
                active.append(finding)

        # Unused or reasonless suppressions are findings themselves and
        # cannot be suppressed in turn.
        for module in modules:
            for sup in module.suppressions:
                stale = [rule for rule in sup.rules if rule not in sup.used]
                if stale:
                    active.append(
                        Finding(
                            rule=UNUSED_SUPPRESSION,
                            path=module.rel,
                            line=sup.line,
                            message=(
                                "suppression does not match any finding: "
                                f"allow({', '.join(stale)})"
                            ),
                        )
                    )
                if sup.used and not sup.reason:
                    active.append(
                        Finding(
                            rule=UNUSED_SUPPRESSION,
                            path=module.rel,
                            line=sup.line,
                            message=(
                                "suppression must carry a reason: "
                                "# repro: allow(rule) — why this is safe"
                            ),
                        )
                    )

        active.sort(key=lambda f: (f.path, f.line, f.rule))
        return Report(findings=active, suppressed=suppressed, files=files)
