"""Async-hygiene checker for the serving layer.

A single blocking call inside a coroutine stalls the whole event loop —
every connected client, not just the offending request.  The server
wraps all blocking workspace work in ``loop.run_in_executor``; this rule
keeps it that way by flagging, inside ``async def`` bodies in the
configured scopes:

* ``time.sleep(...)`` (use ``asyncio.sleep``);
* ``os.fsync(...)`` / ``os.replace(...)`` and friends — disk flushes
  belong on the executor thread;
* blocking ``<lock>.acquire(...)`` — only ``acquire(blocking=False)``
  or an *awaited* async ``acquire`` (e.g. the admission controller's)
  is acceptable on the loop thread;
* direct blocking workspace calls (``self._workspace.handle(...)``,
  ``.register(...)``, ...) — these must go through ``run_in_executor``.

Nested synchronous ``def`` functions and lambdas inside a coroutine are
excluded: they run wherever they are called, typically on the executor.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .engine import Finding, Rule, SourceModule
from .project import ProjectConfig

__all__ = ["AsyncHygieneRule"]

RULE_ID = "async-hygiene"


def _dotted(node: ast.expr) -> tuple[str, ...]:
    if isinstance(node, ast.Name):
        return (node.id,)
    if isinstance(node, ast.Attribute):
        return _dotted(node.value) + (node.attr,)
    return ()


class AsyncHygieneRule(Rule):
    id = RULE_ID

    def __init__(self, config: ProjectConfig):
        self.config = config
        self.blocking_calls = {tuple(name.split(".")) for name in config.async_blocking_calls}

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if not module.in_scope(self.config.async_scopes):
            return ()
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                findings.extend(self._check_coroutine(module, node))
        return findings

    def _sync_calls(self, fn: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
        """Non-awaited Call nodes in the coroutine's own body."""
        awaited: set[int] = set()

        def rec(parent: ast.AST) -> Iterator[ast.Call]:
            for child in ast.iter_child_nodes(parent):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                if isinstance(child, ast.Await) and isinstance(child.value, ast.Call):
                    awaited.add(id(child.value))
                if isinstance(child, ast.Call):
                    yield child
                yield from rec(child)

        for call in rec(fn):
            if id(call) not in awaited:
                yield call

    def _check_coroutine(
        self, module: SourceModule, fn: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for call in self._sync_calls(fn):
            dotted = _dotted(call.func)
            tail2 = tuple(dotted[-2:]) if len(dotted) >= 2 else ()
            if tail2 in self.blocking_calls or tuple(dotted) in self.blocking_calls:
                yield Finding(
                    rule=RULE_ID,
                    path=module.rel,
                    line=call.lineno,
                    message=(
                        f"blocking call {'.'.join(dotted)}() inside async def "
                        f"'{fn.name}' stalls the event loop; move it to "
                        "run_in_executor (or asyncio.sleep for sleeps)"
                    ),
                )
                continue
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr == "acquire":
                blocking = True
                if call.args and isinstance(call.args[0], ast.Constant):
                    blocking = bool(call.args[0].value)
                for kw in call.keywords:
                    if kw.arg == "blocking" and isinstance(kw.value, ast.Constant):
                        blocking = bool(kw.value.value)
                if blocking:
                    yield Finding(
                        rule=RULE_ID,
                        path=module.rel,
                        line=call.lineno,
                        message=(
                            f"blocking lock acquire inside async def '{fn.name}'; "
                            "use acquire(blocking=False) with backoff or move the "
                            "critical section to run_in_executor"
                        ),
                    )
                continue
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self.config.workspace_blocking_methods
            ):
                receiver = _dotted(func.value)
                if receiver and receiver[-1] in self.config.workspace_receivers:
                    yield Finding(
                        rule=RULE_ID,
                        path=module.rel,
                        line=call.lineno,
                        message=(
                            f"direct workspace call .{func.attr}() inside async def "
                            f"'{fn.name}' blocks the event loop; dispatch it via "
                            "loop.run_in_executor"
                        ),
                    )
