"""Trace-hygiene checker for the observability instrumentation.

A span that is opened but never closed corrupts its whole trace: the
root never completes, the thread buffers never drain, and the ring shows
a request that "never finished".  The tracer API is shaped so the safe
patterns are the easy ones — this rule keeps every instrumentation site
on them:

* ``tracer.span(...)`` / ``obs_span(...)`` return context managers and
  must be used as the context expression of a ``with`` (or ``async
  with``) statement.  Calling them bare leaks an ambient span onto the
  calling thread for the rest of its life.
* ``tracer.start_span(...)`` (the manual variant for event-loop and
  callback code) must be assigned to a plain name, and that name must be
  ``.end()``-ed in a ``finally`` block of the same function — the only
  shape that survives exceptions between start and end.
* Span attribute keys must be literal strings: ``set_attribute`` with a
  computed first argument or ``**kwargs`` splatted into a span call
  produces unbounded histogram/label cardinality and unauditable trace
  schemas.

The tracer's own module is exempt (``trace_exempt_modules``): it builds
the spans these rules govern.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .engine import Finding, Rule, SourceModule
from .project import ProjectConfig

__all__ = ["TraceHygieneRule"]

RULE_ID = "trace-hygiene"


def _receiver_tail(node: ast.expr) -> str | None:
    """The last attribute/name segment of a call receiver expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Nodes of one function body, excluding nested function bodies."""
    for child in ast.iter_child_nodes(fn):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        yield child
        yield from _own_nodes(child)


class TraceHygieneRule(Rule):
    id = RULE_ID

    def __init__(self, config: ProjectConfig):
        self.config = config

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if any(module.matches(suffix)
               for suffix in self.config.trace_exempt_modules):
            return ()
        findings: list[Finding] = []
        scopes: list[ast.AST] = [module.tree]
        scopes.extend(
            node for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            findings.extend(self._check_scope(module, scope))
        return findings

    # ------------------------------------------------------------------
    # Per-scope analysis
    # ------------------------------------------------------------------
    def _is_span_cm_call(self, call: ast.Call) -> bool:
        """``tracer.span(...)`` or a bare ``obs_span(...)`` helper."""
        func = call.func
        if (isinstance(func, ast.Name)
                and func.id in self.config.trace_span_functions):
            return True
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "span"
            and _receiver_tail(func.value) in self.config.tracer_receivers
        )

    def _is_start_span_call(self, call: ast.Call) -> bool:
        func = call.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "start_span"
            and _receiver_tail(func.value) in self.config.tracer_receivers
        )

    def _check_scope(
        self, module: SourceModule, scope: ast.AST
    ) -> Iterator[Finding]:
        nodes = list(_own_nodes(scope))
        with_items: set[int] = set()
        assigned: dict[int, str] = {}
        ended_in_finally: set[str] = set()
        for node in nodes:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_items.add(id(item.context_expr))
            elif isinstance(node, ast.Assign):
                if (len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)
                        and isinstance(node.value, ast.Call)):
                    assigned[id(node.value)] = node.targets[0].id
            elif isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    for sub in ast.walk(stmt):
                        if (isinstance(sub, ast.Call)
                                and isinstance(sub.func, ast.Attribute)
                                and sub.func.attr == "end"
                                and isinstance(sub.func.value, ast.Name)):
                            ended_in_finally.add(sub.func.value.id)

        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            if self._is_span_cm_call(node):
                if id(node) not in with_items:
                    yield Finding(
                        rule=RULE_ID,
                        path=module.rel,
                        line=node.lineno,
                        message=(
                            "span() / obs_span() must be the context "
                            "expression of a with-statement; a bare call "
                            "leaks an ambient span (use start_span + "
                            "try/finally end() for manual lifetimes)"
                        ),
                    )
                else:
                    yield from self._check_literal_keys(module, node)
            elif self._is_start_span_call(node):
                name = assigned.get(id(node))
                if name is None:
                    yield Finding(
                        rule=RULE_ID,
                        path=module.rel,
                        line=node.lineno,
                        message=(
                            "start_span(...) must be assigned to a plain "
                            "name so the span can be end()-ed in a finally "
                            "block"
                        ),
                    )
                elif name not in ended_in_finally:
                    yield Finding(
                        rule=RULE_ID,
                        path=module.rel,
                        line=node.lineno,
                        message=(
                            f"span '{name}' from start_span(...) is never "
                            f"{name}.end()-ed in a finally block of the "
                            "same function; an exception between start and "
                            "end would leave the trace unfinished forever"
                        ),
                    )
                else:
                    yield from self._check_literal_keys(module, node)
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "set_attribute"):
                if not (node.args
                        and isinstance(node.args[0], ast.Constant)
                        and isinstance(node.args[0].value, str)):
                    yield Finding(
                        rule=RULE_ID,
                        path=module.rel,
                        line=node.lineno,
                        message=(
                            "set_attribute key must be a literal string; "
                            "computed keys make span schemas unauditable "
                            "and histogram labels unbounded"
                        ),
                    )

    def _check_literal_keys(
        self, module: SourceModule, call: ast.Call
    ) -> Iterator[Finding]:
        """Attribute kwargs on a span call must be spelled out."""
        for kw in call.keywords:
            if kw.arg is None:  # a **splat — keys decided at runtime
                yield Finding(
                    rule=RULE_ID,
                    path=module.rel,
                    line=call.lineno,
                    message=(
                        "**kwargs splatted into a span call hides the "
                        "attribute keys; spell each key as a literal "
                        "keyword (or a set_attribute call per key)"
                    ),
                )
