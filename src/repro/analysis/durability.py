"""Durability-protocol checker.

The WAL discipline from PR 5 only works if three properties hold
everywhere, not just in the code paths the crash tests happen to
exercise:

* **d1 — single writer.** Files under ``data_dir`` are created, renamed
  and deleted only by ``ingest/durable.py``.  Any other module in the
  durability scopes that opens a file for writing, calls
  ``os.rename``/``os.replace``/``os.remove``/``shutil.*``, or uses
  ``Path.write_text``-style mutators is flagged.
* **d2 — fsync before rename.** Inside the owner module, every
  ``os.replace``/``os.rename`` that publishes a journal/snapshot must be
  lexically preceded (same function) by an ``os.fsync`` of the tmp file.
* **d3 — journal writes under the entry lock.** No call that appends a
  journal record or rewrites a snapshot may be reachable without the
  owning dataset's entry lock held; this reuses the lock-order
  extraction and walks the local call graph, so a public method calling
  an unguarded helper is caught even when the write is two hops away.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .engine import Finding, Rule, SourceModule
from .locks import extract_module
from .project import ProjectConfig

__all__ = ["DurabilityRule"]

RULE_ID = "durability-protocol"

_FS_MUTATORS = {"rename", "replace", "remove", "unlink", "truncate", "rmdir", "removedirs"}
# Note: bare ``.replace()``/``.rename()`` attribute calls are *not*
# listed — ``str.replace`` is ubiquitous and the dangerous forms are
# caught as ``os.replace``/``os.rename`` above.
_PATH_MUTATORS = {
    "write_text",
    "write_bytes",
    "unlink",
    "rmdir",
    "touch",
}
_WRITE_MODES = set("wax+")


def _dotted(node: ast.expr) -> tuple[str, ...]:
    if isinstance(node, ast.Name):
        return (node.id,)
    if isinstance(node, ast.Attribute):
        return _dotted(node.value) + (node.attr,)
    return ()


def _open_mode(call: ast.Call) -> str | None:
    """The mode argument of an ``open``-style call, if statically known."""
    mode_expr: ast.expr | None = None
    if len(call.args) >= 2:
        mode_expr = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_expr = kw.value
    if mode_expr is None:
        return "r"
    if isinstance(mode_expr, ast.Constant) and isinstance(mode_expr.value, str):
        return mode_expr.value
    return None  # not statically known


class DurabilityRule(Rule):
    id = RULE_ID

    def __init__(self, config: ProjectConfig):
        self.config = config

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if not module.in_scope(self.config.durability_scopes):
            return ()
        if module.matches(self.config.durability_owner):
            return self._check_owner(module)
        findings = list(self._check_foreign_writes(module))
        findings.extend(self._check_journal_guard(module))
        return findings

    # ------------------------------------------------------------------
    # d1: only the owner writes files
    # ------------------------------------------------------------------
    def _check_foreign_writes(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted == ("open",):
                mode = _open_mode(node)
                if mode is None or _WRITE_MODES & set(mode):
                    yield Finding(
                        rule=RULE_ID,
                        path=module.rel,
                        line=node.lineno,
                        message=(
                            "file opened for writing outside ingest/durable.py; "
                            "all data_dir writes go through the journal owner"
                        ),
                    )
                continue
            if len(dotted) == 2 and dotted[0] == "os" and dotted[1] in _FS_MUTATORS:
                yield Finding(
                    rule=RULE_ID,
                    path=module.rel,
                    line=node.lineno,
                    message=(
                        f"os.{dotted[1]}() outside ingest/durable.py; file-system "
                        "mutation is reserved to the journal owner"
                    ),
                )
                continue
            if dotted and dotted[0] == "shutil" and len(dotted) == 2:
                yield Finding(
                    rule=RULE_ID,
                    path=module.rel,
                    line=node.lineno,
                    message=(
                        f"shutil.{dotted[1]}() outside ingest/durable.py; file-system "
                        "mutation is reserved to the journal owner"
                    ),
                )
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _PATH_MUTATORS
                and len(dotted) != 2  # os./shutil. handled above
            ):
                yield Finding(
                    rule=RULE_ID,
                    path=module.rel,
                    line=node.lineno,
                    message=(
                        f".{func.attr}() file mutation outside ingest/durable.py; "
                        "route writes through the journal owner"
                    ),
                )

    # ------------------------------------------------------------------
    # d2: fsync precedes publishing renames inside the owner
    # ------------------------------------------------------------------
    def _check_owner(self, module: SourceModule) -> Iterable[Finding]:
        findings: list[Finding] = []
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            fsync_lines: list[int] = []
            renames: list[ast.Call] = []
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted(node.func)
                if dotted == ("os", "fsync"):
                    fsync_lines.append(node.lineno)
                elif dotted in (("os", "replace"), ("os", "rename")):
                    renames.append(node)
            for rename in renames:
                if not any(line < rename.lineno for line in fsync_lines):
                    findings.append(
                        Finding(
                            rule=RULE_ID,
                            path=module.rel,
                            line=rename.lineno,
                            message=(
                                "rename publishes a file without a preceding "
                                "os.fsync of the tmp file in this function; a "
                                "crash can publish an empty or torn file"
                            ),
                        )
                    )
        return findings

    # ------------------------------------------------------------------
    # d3: journal writes only reachable with the entry lock held
    # ------------------------------------------------------------------
    def _check_journal_guard(self, module: SourceModule) -> Iterable[Finding]:
        guards = set(self.config.journal_guard_locks)
        if not guards:
            return ()
        if not any(module.matches(m) for m in self.config.lock_modules):
            return ()
        model = extract_module(module, self.config)
        functions = model.functions

        # A function is "unguarded-reachable" when some call chain from an
        # entry point reaches it without the guard lock held across every
        # hop.  Entry points: public methods, dunders, and local functions
        # never called locally (thread targets, callbacks).
        unguarded = {name for name, fn in functions.items() if fn.is_entry}
        changed = True
        while changed:
            changed = False
            for name, fn in functions.items():
                if name not in unguarded:
                    continue
                for site in fn.call_sites:
                    if guards & site.held:
                        continue
                    if site.callee not in unguarded:
                        unguarded.add(site.callee)
                        changed = True

        findings: list[Finding] = []
        for name, fn in functions.items():
            for site in fn.journal_sites:
                if site.method == "load" and not site.repair:
                    continue  # read-only load
                if guards & site.held:
                    continue
                if name not in unguarded:
                    continue  # every caller holds the guard at the call site
                findings.append(
                    Finding(
                        rule=RULE_ID,
                        path=module.rel,
                        line=site.line,
                        message=(
                            f"journal write .{site.method}() reachable without the "
                            f"owning entry lock ({', '.join(sorted(guards))}); a "
                            "concurrent replace could journal into the wrong generation"
                        ),
                    )
                )
        return findings
