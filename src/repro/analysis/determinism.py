"""Determinism checker for the ranking core.

The paper's headline reproducibility claim — identical insight rankings
for identical inputs, byte-for-byte across serial and parallel execution
— only holds if the scoring pipeline never consults ambient state.
Inside the configured scopes (``core/``, ``stats/``, ``sketch/``) this
rule flags:

* module-level ``random.*`` calls and unseeded NumPy generators
  (``numpy.random.<fn>`` legacy API, or ``default_rng()`` with no seed);
* wall-clock reads: ``time.time()``/``time.time_ns()``/
  ``datetime.now()``/``utcnow()``/``today()``;
* iterating a ``set``/``frozenset`` expression or ``dict.keys()`` view
  directly — hash order feeding ordered output.  Wrapping the iterable
  in ``sorted(...)`` is the sanctioned fix and is not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .engine import Finding, Rule, SourceModule
from .project import ProjectConfig

__all__ = ["DeterminismRule"]

RULE_ID = "determinism"

_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}


def _dotted(node: ast.expr) -> tuple[str, ...]:
    if isinstance(node, ast.Name):
        return (node.id,)
    if isinstance(node, ast.Attribute):
        return _dotted(node.value) + (node.attr,)
    return ()


def _is_set_like(node: ast.expr) -> bool:
    """Does this expression produce a hash-ordered iterable?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_like(node.left) or _is_set_like(node.right)
    return False


class DeterminismRule(Rule):
    id = RULE_ID

    def __init__(self, config: ProjectConfig):
        self.config = config

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if not module.in_scope(self.config.determinism_scopes):
            return ()
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(module, node))
            for iterable in self._ordered_iterables(node):
                if _is_set_like(iterable):
                    findings.append(
                        Finding(
                            rule=RULE_ID,
                            path=module.rel,
                            line=iterable.lineno,
                            message=(
                                "iteration over a set/dict-keys expression feeds "
                                "hash order into output; wrap it in sorted(...)"
                            ),
                        )
                    )
        return findings

    def _ordered_iterables(self, node: ast.AST) -> Iterator[ast.expr]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            # SetComp feeding a set is unordered anyway, but iterating a
            # set inside any comprehension is still order-sensitive once
            # the result is consumed; flag uniformly.
            for gen in node.generators:
                yield gen.iter
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("list", "tuple", "enumerate"):
                if node.args:
                    yield node.args[0]

    def _check_call(self, module: SourceModule, node: ast.Call) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        if not dotted:
            return
        # random.random(), random.shuffle(), ...
        if dotted[0] == "random" and len(dotted) == 2:
            yield Finding(
                rule=RULE_ID,
                path=module.rel,
                line=node.lineno,
                message=(
                    f"module-level random.{dotted[1]}() uses unseeded global state; "
                    "use numpy.random.default_rng(seed) instead"
                ),
            )
            return
        # numpy.random legacy API and unseeded default_rng().
        if len(dotted) >= 3 and dotted[0] in ("np", "numpy") and dotted[1] == "random":
            fn = dotted[2]
            if fn == "default_rng":
                if not node.args and not node.keywords:
                    yield Finding(
                        rule=RULE_ID,
                        path=module.rel,
                        line=node.lineno,
                        message="default_rng() without a seed is nondeterministic",
                    )
            elif fn not in ("Generator", "SeedSequence", "PCG64"):
                yield Finding(
                    rule=RULE_ID,
                    path=module.rel,
                    line=node.lineno,
                    message=(
                        f"legacy numpy.random.{fn}() draws from hidden global "
                        "state; use numpy.random.default_rng(seed)"
                    ),
                )
            return
        # Wall-clock reads.
        tail = dotted[-2:] if len(dotted) >= 2 else ()
        if tuple(tail) in _CLOCK_CALLS:
            yield Finding(
                rule=RULE_ID,
                path=module.rel,
                line=node.lineno,
                message=(
                    f"wall-clock read {'.'.join(dotted)}() in deterministic scope; "
                    "inject a clock or take timestamps at the service layer"
                ),
            )
