"""Lock-order checker: static nested-acquisition graph over declared locks.

The rule extracts every ``threading.Lock``/``RLock`` acquisition site in
the configured modules — ``with <lock>:`` blocks, bare ``.acquire()``
calls (held lexically until the matching ``.release()`` or the end of
the function), and calls to same-module ``@contextmanager`` helpers that
yield with a lock held — then checks three things:

1. every lock object created in those modules is declared in the
   project hierarchy (:data:`repro.analysis.project.DEFAULT_CONFIG`);
2. every *nested* acquisition respects the declared levels: holding a
   lock of level L you may only take locks of level >= L — strictly
   greater unless re-entering the same reentrant lock;
3. the acquisition graph over equal-level edges (which rule 2 cannot
   order) is acyclic.

The extraction is interprocedural within a module: calling a local
function while holding a lock creates edges to every lock that function
transitively acquires, and entering a local ``@contextmanager`` adds its
yield-held locks to the caller's held set for the body of the ``with``.
Non-blocking ``acquire(blocking=False)`` attempts cannot deadlock, so
they never produce ordering findings, but locks *held* after a
successful try-acquire still order whatever is taken underneath them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .engine import Finding, Rule, SourceModule, iter_python_files, load_module
from .project import LockSpec, ProjectConfig

__all__ = [
    "LockOrderRule",
    "LockSite",
    "ModuleLockModel",
    "extract_module",
    "collect_lock_sites",
]

RULE_ID = "lock-order"

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}


def _is_lock_like(attr: str) -> bool:
    return attr == "lock" or attr.endswith("_lock") or attr.startswith("lock_")


def _expr_key(node: ast.expr) -> str:
    """A stable textual key for a lock expression, e.g. ``self._lock``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{_expr_key(node.value)}.{node.attr}"
    if isinstance(node, ast.Subscript):
        return f"{_expr_key(node.value)}[]"
    if isinstance(node, ast.Call):
        return f"{_expr_key(node.func)}()"
    return f"<{type(node).__name__}>"


@dataclass(frozen=True)
class LockSite:
    """One static acquisition (or creation) of a lock."""

    path: str
    line: int
    lock_id: str | None
    kind: str  # "with" | "acquire" | "create"
    blocking: bool
    function: str
    expr: str


@dataclass(frozen=True)
class _Edge:
    src: str
    dst: str
    path: str
    line: int
    function: str
    blocking: bool


@dataclass
class _CallSite:
    line: int
    callee: str
    held: frozenset


@dataclass
class _JournalSite:
    line: int
    method: str
    held: frozenset
    repair: bool


@dataclass
class _FnModel:
    qualname: str
    node: ast.AST
    cls: str | None
    is_contextmanager: bool = False
    is_entry: bool = True  # flipped off once observed as a local callee
    direct_roles: set = field(default_factory=set)
    transitive_roles: set = field(default_factory=set)
    yield_held: set = field(default_factory=set)
    local_callees: set = field(default_factory=set)
    call_sites: list = field(default_factory=list)
    journal_sites: list = field(default_factory=list)
    #: manual acquire intervals: (role, start_line, end_line, blocking)
    manual: list = field(default_factory=list)


@dataclass
class ModuleLockModel:
    module: SourceModule
    functions: dict
    sites: list
    edges: list
    findings: list


def _decorator_name(node: ast.expr) -> str:
    if isinstance(node, ast.Call):
        return _decorator_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _call_blocking(call: ast.Call) -> bool:
    """Is this ``.acquire(...)`` call a blocking acquisition?"""
    blocking = True
    if call.args and isinstance(call.args[0], ast.Constant):
        blocking = bool(call.args[0].value)
    for kw in call.keywords:
        if kw.arg == "blocking" and isinstance(kw.value, ast.Constant):
            blocking = bool(kw.value.value)
    return blocking


class _Extractor:
    """Builds the per-module lock model over four passes.

    discover    — find functions/classes, flag undeclared lock creations
    pass_direct — per-function direct roles, manual-hold intervals, local
                  call graph; fixpoint for transitive role sets
    pass_yields — held-at-yield sets for @contextmanager helpers (run
                  twice so cm-inside-cm converges)
    pass_edges  — the full walk emitting nesting edges, ordering
                  findings, and journal/call sites for the durability rule
    """

    def __init__(self, module: SourceModule, config: ProjectConfig):
        self.module = module
        self.config = config
        self.functions: dict[str, _FnModel] = {}
        self.sites: list[LockSite] = []
        self.edges: list[_Edge] = []
        self.findings: list[Finding] = []
        self._recording = True
        self._specs_here = [s for s in config.locks if module.matches(s.module)]
        self._by_attr: dict[str, list[LockSpec]] = {}
        for spec in self._specs_here:
            self._by_attr.setdefault(spec.attr, []).append(spec)
        self.spec_by_id = {s.lock_id: s for s in config.locks}

    def run(self) -> None:
        self.discover()
        self.pass_direct()
        self._recording = False
        for _ in range(2):
            for fn in self.functions.values():
                fn.yield_held.clear()
                fn.journal_sites.clear()
                fn.call_sites.clear()
                self._walk_body(fn.node.body, frozenset(), fn)
        self._recording = True
        for fn in self.functions.values():
            fn.journal_sites.clear()
            fn.call_sites.clear()
            self._walk_body(fn.node.body, frozenset(), fn)

    # ------------------------------------------------------------------
    # Lock expression resolution
    # ------------------------------------------------------------------
    def resolve(self, node: ast.expr, cls: str | None) -> tuple[str | None, bool]:
        """Map a lock expression to ``(role id, looks_like_lock)``."""
        if not isinstance(node, ast.Attribute):
            return None, False
        attr = node.attr
        candidates = self._by_attr.get(attr, [])
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            for spec in candidates:
                if spec.cls is None or spec.cls == cls:
                    return spec.lock_id, True
            return None, _is_lock_like(attr)
        # Non-self receiver (``entry.lock``): match by attribute alone.
        if len({s.lock_id for s in candidates}) == 1:
            return candidates[0].lock_id, True
        return None, _is_lock_like(attr)

    # ------------------------------------------------------------------
    # discover
    # ------------------------------------------------------------------
    def discover(self) -> None:
        self._walk_scope(self.module.tree.body, cls=None, prefix="")

    def _walk_scope(self, body: Iterable[ast.stmt], cls: str | None, prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                self._check_creations(stmt.body, cls=stmt.name)
                self._walk_scope(stmt.body, cls=stmt.name, prefix=f"{prefix}{stmt.name}.")
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{stmt.name}"
                is_cm = any(
                    _decorator_name(dec) in ("contextmanager", "asynccontextmanager")
                    for dec in stmt.decorator_list
                )
                fn = _FnModel(qualname=qualname, node=stmt, cls=cls, is_contextmanager=is_cm)
                self.functions[qualname] = fn
                self._check_creations(stmt.body, cls=cls)
                # Nested defs become their own (entry-point) functions.
                self._walk_scope(stmt.body, cls=cls, prefix=f"{qualname}.")

    def _check_creations(self, body: Iterable[ast.stmt], cls: str | None) -> None:
        for stmt in body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not self._creates_lock(value):
                continue
            for target in targets:
                if isinstance(target, ast.Attribute):
                    attr = target.attr
                elif isinstance(target, ast.Name):
                    attr = target.id
                else:
                    continue
                matched = next(
                    (
                        s
                        for s in self._specs_here
                        if s.attr == attr and (s.cls is None or s.cls == cls)
                    ),
                    None,
                )
                if matched is None:
                    self.findings.append(
                        Finding(
                            rule=RULE_ID,
                            path=self.module.rel,
                            line=stmt.lineno,
                            message=(
                                f"lock '{attr}' is not in the declared hierarchy; "
                                "add a LockSpec to repro.analysis.project"
                            ),
                        )
                    )
                self.sites.append(
                    LockSite(
                        path=self.module.rel,
                        line=stmt.lineno,
                        lock_id=matched.lock_id if matched else None,
                        kind="create",
                        blocking=True,
                        function=cls or "<module>",
                        expr=attr,
                    )
                )

    def _creates_lock(self, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Attribute) and func.attr in _LOCK_FACTORIES:
            if isinstance(func.value, ast.Name) and func.value.id == "threading":
                return True
        if isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
            return True
        # dataclasses.field(default_factory=threading.RLock)
        is_field = (isinstance(func, ast.Name) and func.id == "field") or (
            isinstance(func, ast.Attribute) and func.attr == "field"
        )
        if is_field:
            for kw in value.keywords:
                if kw.arg == "default_factory":
                    target = kw.value
                    if isinstance(target, ast.Attribute) and target.attr in _LOCK_FACTORIES:
                        return True
                    if isinstance(target, ast.Name) and target.id in _LOCK_FACTORIES:
                        return True
        return False

    # ------------------------------------------------------------------
    # Statement/call iteration helpers
    # ------------------------------------------------------------------
    def _own_statements(self, fn: _FnModel) -> Iterator[ast.stmt]:
        """All statements of ``fn``, excluding nested function bodies."""
        stack = list(fn.node.body)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield stmt
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    stack.append(child)
                elif isinstance(child, ast.ExceptHandler):
                    stack.extend(child.body)

    def _calls_in(self, node: ast.AST) -> Iterator[ast.Call]:
        """Call nodes in this node's own expressions.

        Skips nested statements (they are visited on their own) and the
        bodies of nested function definitions and lambdas.
        """

        def rec(parent: ast.AST) -> Iterator[ast.Call]:
            for child in ast.iter_child_nodes(parent):
                if isinstance(
                    child,
                    (ast.stmt, ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
                ):
                    continue
                if isinstance(child, ast.Call):
                    yield child
                yield from rec(child)

        if isinstance(node, ast.Call):
            yield node
        yield from rec(node)

    # ------------------------------------------------------------------
    # pass_direct
    # ------------------------------------------------------------------
    def pass_direct(self) -> None:
        for fn in self.functions.values():
            self._collect_direct(fn)
        for fn in self.functions.values():
            for callee in fn.local_callees:
                target = self.functions.get(callee)
                if target is not None:
                    target.is_entry = False
        changed = True
        while changed:
            changed = False
            for fn in self.functions.values():
                size = len(fn.transitive_roles)
                fn.transitive_roles |= fn.direct_roles
                for callee in fn.local_callees:
                    target = self.functions.get(callee)
                    if target is not None:
                        fn.transitive_roles |= target.transitive_roles
                if len(fn.transitive_roles) != size:
                    changed = True

    def _collect_direct(self, fn: _FnModel) -> None:
        releases: dict[str, list[int]] = {}
        acquires: list[tuple[str, str | None, int, bool]] = []
        for stmt in self._own_statements(fn):
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    role, _lockish = self.resolve(item.context_expr, fn.cls)
                    if role is not None:
                        fn.direct_roles.add(role)
            for call in self._calls_in(stmt):
                func = call.func
                if isinstance(func, ast.Attribute) and func.attr in ("acquire", "release"):
                    role, lockish = self.resolve(func.value, fn.cls)
                    if role is None and not lockish:
                        continue
                    key = _expr_key(func.value)
                    if func.attr == "acquire":
                        blocking = _call_blocking(call)
                        acquires.append((key, role, call.lineno, blocking))
                        if role is None:
                            self.findings.append(
                                Finding(
                                    rule=RULE_ID,
                                    path=self.module.rel,
                                    line=call.lineno,
                                    message=(
                                        f"acquisition of undeclared lock '{key}'; "
                                        "declare it in repro.analysis.project"
                                    ),
                                )
                            )
                    else:
                        releases.setdefault(key, []).append(call.lineno)
                    continue
                callee = self._local_callee(call, fn)
                if callee is not None:
                    fn.local_callees.add(callee)
                role = self._component_role(call)
                if role is not None:
                    fn.direct_roles.add(role)
        end = max(
            (getattr(node, "end_lineno", None) or node.lineno for node in ast.walk(fn.node) if hasattr(node, "lineno")),
            default=fn.node.lineno,
        )
        for key, role, line, blocking in acquires:
            if role is None:
                continue
            later = [rl for rl in releases.get(key, []) if rl >= line]
            until = min(later) if later else end
            fn.manual.append((role, line, until, blocking))
            fn.direct_roles.add(role)
            self.sites.append(
                LockSite(
                    path=self.module.rel,
                    line=line,
                    lock_id=role,
                    kind="acquire",
                    blocking=blocking,
                    function=fn.qualname,
                    expr=key,
                )
            )

    def _local_callee(self, call: ast.Call, fn: _FnModel) -> str | None:
        func = call.func
        if isinstance(func, ast.Name) and func.id in self.functions:
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and fn.cls is not None
        ):
            qualname = f"{fn.cls}.{func.attr}"
            if qualname in self.functions:
                return qualname
        return None

    def _component_role(self, call: ast.Call) -> str | None:
        """Calls on lock-taking components, e.g. ``self._cache.get(...)``."""
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            return dict(self.config.lock_taking_attrs).get(func.value.attr)
        return None

    # ------------------------------------------------------------------
    # pass_edges (and the recording-off yield pass)
    # ------------------------------------------------------------------
    def _manual_held(self, fn: _FnModel, line: int) -> frozenset:
        # Strictly after the acquire line: the acquisition itself must
        # not appear to nest under its own hold.
        return frozenset(
            role for role, start, until, _blk in fn.manual if start < line <= until
        )

    def _emit_edges(
        self, held: frozenset, role: str, line: int, fn: _FnModel, blocking: bool
    ) -> None:
        if not self._recording:
            return
        for src in sorted(held):
            self.edges.append(
                _Edge(
                    src=src,
                    dst=role,
                    path=self.module.rel,
                    line=line,
                    function=fn.qualname,
                    blocking=blocking,
                )
            )
            if not blocking:
                continue
            src_spec = self.spec_by_id.get(src)
            dst_spec = self.spec_by_id.get(role)
            if src_spec is None or dst_spec is None:
                continue
            if src == role:
                if not dst_spec.reentrant:
                    self.findings.append(
                        Finding(
                            rule=RULE_ID,
                            path=self.module.rel,
                            line=line,
                            message=f"non-reentrant lock '{role}' re-acquired while held",
                        )
                    )
            elif dst_spec.level < src_spec.level:
                self.findings.append(
                    Finding(
                        rule=RULE_ID,
                        path=self.module.rel,
                        line=line,
                        message=(
                            f"acquiring '{role}' (level {dst_spec.level}) while holding "
                            f"'{src}' (level {src_spec.level}) inverts the declared hierarchy"
                        ),
                    )
                )

    def _walk_body(self, stmts: Iterable[ast.stmt], held: frozenset, fn: _FnModel) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            cur = held | self._manual_held(fn, stmt.lineno)
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner: set = set()
                for item in stmt.items:
                    expr = item.context_expr
                    role, lockish = self.resolve(expr, fn.cls)
                    if role is not None:
                        if self._recording:
                            self.sites.append(
                                LockSite(
                                    path=self.module.rel,
                                    line=expr.lineno,
                                    lock_id=role,
                                    kind="with",
                                    blocking=True,
                                    function=fn.qualname,
                                    expr=_expr_key(expr),
                                )
                            )
                        self._emit_edges(
                            cur | frozenset(inner), role, expr.lineno, fn, blocking=True
                        )
                        inner.add(role)
                        continue
                    if lockish and isinstance(expr, ast.Attribute):
                        if self._recording:
                            self.findings.append(
                                Finding(
                                    rule=RULE_ID,
                                    path=self.module.rel,
                                    line=expr.lineno,
                                    message=(
                                        f"acquisition of undeclared lock '{_expr_key(expr)}'; "
                                        "declare it in repro.analysis.project"
                                    ),
                                )
                            )
                        continue
                    self._scan_calls(expr, cur | frozenset(inner), fn)
                    if isinstance(expr, ast.Call):
                        callee = self._local_callee(expr, fn)
                        target = self.functions.get(callee) if callee else None
                        if target is not None and target.is_contextmanager:
                            inner |= target.yield_held
                self._walk_body(stmt.body, cur | frozenset(inner), fn)
                continue
            # Yields: remember what a contextmanager holds at its yield.
            for node in self._exprs_of(stmt):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    fn.yield_held |= cur
                    break
            self._scan_calls(stmt, cur, fn)
            for name in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, name, None)
                if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                    self._walk_body(sub, held, fn)
            for handler in getattr(stmt, "handlers", None) or []:
                self._walk_body(handler.body, held, fn)

    def _exprs_of(self, stmt: ast.stmt) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.stmt, ast.ExceptHandler)):
                continue
            yield from ast.walk(child)

    def _scan_calls(self, node: ast.AST, held: frozenset, fn: _FnModel) -> None:
        for call in self._calls_in(node):
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr == "acquire":
                role, _lockish = self.resolve(func.value, fn.cls)
                if role is not None:
                    self._emit_edges(held - {role}, role, call.lineno, fn, blocking=_call_blocking(call))
                continue
            # Journal write sites (consumed by the durability rule).
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and func.value.attr in self.config.journal_attrs
                and func.attr in self.config.journal_write_methods
            ):
                repair = any(
                    kw.arg == "repair"
                    and isinstance(kw.value, ast.Constant)
                    and bool(kw.value.value)
                    for kw in call.keywords
                )
                fn.journal_sites.append(
                    _JournalSite(line=call.lineno, method=func.attr, held=held, repair=repair)
                )
            role = self._component_role(call)
            if role is not None:
                self._emit_edges(held, role, call.lineno, fn, blocking=True)
            callee = self._local_callee(call, fn)
            if callee is not None:
                target = self.functions.get(callee)
                if target is not None:
                    fn.call_sites.append(_CallSite(line=call.lineno, callee=callee, held=held))
                    for dst in sorted(target.transitive_roles):
                        self._emit_edges(held - {dst}, dst, call.lineno, fn, blocking=True)


def extract_module(module: SourceModule, config: ProjectConfig) -> ModuleLockModel:
    extractor = _Extractor(module, config)
    extractor.run()
    return ModuleLockModel(
        module=module,
        functions=extractor.functions,
        sites=extractor.sites,
        edges=extractor.edges,
        findings=extractor.findings,
    )


class LockOrderRule(Rule):
    id = RULE_ID

    def __init__(self, config: ProjectConfig):
        self.config = config
        self._edges: list[_Edge] = []

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if not any(module.matches(m) for m in self.config.lock_modules):
            return ()
        model = extract_module(module, self.config)
        for edge in model.edges:
            # Edges at statically suppressed lines stay out of the cycle
            # graph: the allow() comment vouches for the whole inversion.
            if not any(s.covers(RULE_ID) for s in module.suppressions_for(edge.line)):
                self._edges.append(edge)
        return model.findings

    def finish(self) -> Iterable[Finding]:
        """Cycle check over the edges rule 2 could not order (equal levels)."""
        spec_by_id = {s.lock_id: s for s in self.config.locks}
        graph: dict[str, set[str]] = {}
        locations: dict[tuple[str, str], _Edge] = {}
        for edge in self._edges:
            src, dst = spec_by_id.get(edge.src), spec_by_id.get(edge.dst)
            if src is None or dst is None or edge.src == edge.dst or not edge.blocking:
                continue
            if dst.level < src.level:
                continue  # already reported as an inversion
            graph.setdefault(edge.src, set()).add(edge.dst)
            locations.setdefault((edge.src, edge.dst), edge)
        findings: list[Finding] = []
        state: dict[str, int] = {}

        def visit(node: str, stack: list[str]) -> None:
            state[node] = 1
            for nxt in sorted(graph.get(node, ())):
                if state.get(nxt) == 1:
                    cycle = (stack[stack.index(nxt):] + [nxt]) if nxt in stack else [node, nxt]
                    edge = locations.get((node, nxt))
                    if edge is not None:
                        findings.append(
                            Finding(
                                rule=RULE_ID,
                                path=edge.path,
                                line=edge.line,
                                message="lock acquisition cycle: " + " -> ".join(cycle),
                            )
                        )
                elif state.get(nxt, 0) == 0:
                    visit(nxt, stack + [nxt])
            state[node] = 2

        for node in sorted(graph):
            if state.get(node, 0) == 0:
                visit(node, [node])
        self._edges = []
        return findings


def collect_lock_sites(
    roots: Iterable[Path], config: ProjectConfig
) -> dict[tuple[str, int], LockSite]:
    """Acquisition sites keyed by (resolved path, line) for the runtime shim.

    Sites whose line carries a ``# repro: allow(lock-order)`` suppression
    are excluded: the static allowance extends to runtime checking.
    """
    table: dict[tuple[str, int], LockSite] = {}
    for path in iter_python_files(roots):
        try:
            module = load_module(path)
        except SyntaxError:
            continue
        if not any(module.matches(m) for m in config.lock_modules):
            continue
        model = extract_module(module, config)
        resolved = str(path.resolve())
        for site in model.sites:
            if site.kind == "create":
                continue
            if any(s.covers(RULE_ID) for s in module.suppressions_for(site.line)):
                continue
            table[(resolved, site.line)] = site
    return table
