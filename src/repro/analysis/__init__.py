"""Project-invariant static analysis (``repro-lint``).

Six AST-based checkers encode the repository's load-bearing contracts
as machine-checked rules:

==========================  ============================================
rule id                     invariant
==========================  ============================================
``lock-order``              declared lock hierarchy, acyclic acquisition
``snapshot-immutability``   published tables/stores never mutated
``determinism``             no ambient RNG/clock/hash-order in the core
``durability-protocol``     WAL writes fsynced, guarded, owner-only
``async-hygiene``           no blocking calls on the event loop
``trace-hygiene``           spans closed on every path, literal keys
==========================  ============================================

See ``docs/ANALYSIS.md`` for the full catalog and suppression syntax.
"""

from __future__ import annotations

from .async_hygiene import AsyncHygieneRule
from .determinism import DeterminismRule
from .durability import DurabilityRule
from .engine import Analyzer, Finding, Report, Rule, SourceModule
from .immutability import ImmutabilityRule
from .locks import LockOrderRule, collect_lock_sites
from .project import DEFAULT_CONFIG, LockSpec, ProjectConfig
from .tracing import TraceHygieneRule

__all__ = [
    "Analyzer",
    "AsyncHygieneRule",
    "DEFAULT_CONFIG",
    "DeterminismRule",
    "DurabilityRule",
    "Finding",
    "ImmutabilityRule",
    "LockOrderRule",
    "LockSpec",
    "ProjectConfig",
    "Report",
    "Rule",
    "SourceModule",
    "TraceHygieneRule",
    "build_analyzer",
    "collect_lock_sites",
]


def default_rules(config: ProjectConfig | None = None) -> list[Rule]:
    config = config or DEFAULT_CONFIG
    return [
        LockOrderRule(config),
        ImmutabilityRule(config),
        DeterminismRule(config),
        DurabilityRule(config),
        AsyncHygieneRule(config),
        TraceHygieneRule(config),
    ]


def build_analyzer(config: ProjectConfig | None = None) -> Analyzer:
    """The analyzer with all six project rules installed."""
    return Analyzer(default_rules(config))
