"""HTTP transport for the replication feed.

:class:`HttpFeedSource` adapts the primary's
``GET /v1/datasets/{name}/journal`` endpoint to the
:class:`~repro.service.replica.FeedSource` interface, so a
:class:`~repro.service.replica.ReplicaWorkspace` in another process (or
on another host) tails the primary exactly like a local one tails a
shared data directory.  The records on the wire are the journal's own
payloads — the endpoint is a positioned read of the WAL, not a second
replication protocol.

Transport failures surface as :class:`~repro.errors.ServiceError` so
the replica's tailer treats an unreachable primary uniformly (retry,
and optionally auto-promote after ``promote_after`` seconds).
"""

from __future__ import annotations

import http.client
import urllib.parse
from typing import Any

from repro.errors import ServiceError
from repro.ingest.durable import (
    FeedBatch,
    FeedPosition,
    durable_state_from_payload,
)
from repro.server.client import ReproClient
from repro.service.replica import FeedSource


class HttpFeedSource(FeedSource):
    """Tail a remote primary over its HTTP journal endpoint.

    One source wraps one keep-alive connection (via
    :class:`~repro.server.client.ReproClient`) and, like the client, is
    not thread-safe — the replica's single sync pass is its only caller.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self._client = ReproClient(host, port, timeout=timeout)

    @classmethod
    def from_url(cls, url: str, timeout: float = 30.0) -> "HttpFeedSource":
        """Build a source from ``http://host:port`` (the --replica-of form)."""
        parsed = urllib.parse.urlparse(
            url if "//" in url else f"//{url}", scheme="http"
        )
        if parsed.scheme != "http" or not parsed.hostname:
            raise ServiceError(
                f"--replica-of expects http://host:port, got {url!r}"
            )
        return cls(parsed.hostname, parsed.port or 80, timeout=timeout)

    def dataset_names(self) -> list[str]:
        try:
            return [item["name"] for item in self._client.datasets()]
        except (http.client.HTTPException, ConnectionError, OSError) as exc:
            raise ServiceError(
                f"primary {self.host}:{self.port} is unreachable: {exc}"
            ) from exc

    def poll(self, name: str, position: FeedPosition | None,
             max_records: int) -> FeedBatch | None:
        quoted = urllib.parse.quote(name, safe="")
        params: dict[str, str] = {"max_records": str(max_records)}
        if position is not None:
            params["from"] = position.token()
        path = (f"/v1/datasets/{quoted}/journal?"
                + urllib.parse.urlencode(params))
        try:
            payload = self._client._request("GET", path)
        except (http.client.HTTPException, ConnectionError, OSError) as exc:
            raise ServiceError(
                f"primary {self.host}:{self.port} is unreachable: {exc}"
            ) from exc
        batch = payload.get("batch")
        if batch is None:
            return None
        return self._decode_batch(name, batch)

    @staticmethod
    def _decode_batch(name: str, batch: dict[str, Any]) -> FeedBatch:
        reset = batch.get("reset")
        return FeedBatch(
            dataset=name,
            reset=(durable_state_from_payload(reset)
                   if reset is not None else None),
            records=list(batch.get("records") or []),
            position=FeedPosition.parse(batch["position"]),
            more=bool(batch.get("more", False)),
            primary_seq=int(batch.get("primary_seq", 0)),
        )

    def close(self) -> None:
        self._client.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HttpFeedSource(http://{self.host}:{self.port})"


__all__ = ["HttpFeedSource"]
