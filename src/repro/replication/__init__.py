"""Journal-stream replication: primaries, feeds and read replicas.

This package is the façade over the pieces that together scale reads
past one process:

* :class:`~repro.ingest.durable.JournalFeed` — a tailable, cursor-
  positioned view of a primary's durable journal (the WAL *is* the
  replication stream; no second wire format exists);
* :class:`~repro.service.replica.ReplicaWorkspace` — a read-only
  workspace applying that stream through the restart-replay code path,
  byte-identical to a restarted primary at the same ``(version, seq)``;
* :class:`HttpFeedSource` — the feed tailed over the primary's existing
  HTTP surface (``GET /v1/datasets/{name}/journal?from=``), used by
  ``repro-serve --replica-of URL``.

See ``docs/API.md`` (Replication) for topology, staleness semantics
(``max_lag_seq``) and the promote runbook.
"""

from repro.ingest.durable import (
    FeedBatch,
    FeedPosition,
    JournalFeed,
    durable_state_from_payload,
    durable_state_to_payload,
)
from repro.replication.feed import HttpFeedSource
from repro.service.replica import FeedSource, LocalFeedSource, ReplicaWorkspace

__all__ = [
    "FeedBatch",
    "FeedPosition",
    "FeedSource",
    "HttpFeedSource",
    "JournalFeed",
    "LocalFeedSource",
    "ReplicaWorkspace",
    "durable_state_from_payload",
    "durable_state_to_payload",
]
