"""Synthetic Parkinson's-progression (PPMI-like) dataset (2 000 x 50).

The paper's second demo dataset is a clinical extract from the Parkinson's
Progression Markers Initiative (PPMI): "2K rows and 50 columns" of measured
clinical descriptors characterising disease progression (MDS-UPDRS scales).
The real extract is not redistributable, so this generator produces a
synthetic table with the same scale and the statistical structure a clinical
reader would expect:

* strongly inter-correlated UPDRS part scores and a total score;
* disease duration driving symptom severity (monotonic, partly nonlinear);
* right-skewed symptom scores (most patients mild, a long severe tail);
* heavy-hitter categorical columns (study site, dominant side, medication);
* a handful of extreme outliers and missing values, as in clinical data.
"""

from __future__ import annotations

import numpy as np

from repro.data.column import BooleanColumn, CategoricalColumn, NumericColumn
from repro.data.schema import ColumnKind, Field
from repro.data.table import DataTable

N_ROWS = 2000

_SITES = [f"SITE_{i:02d}" for i in range(1, 22)]
_MEDICATIONS = ["levodopa", "dopamine_agonist", "mao_b_inhibitor", "none", "other"]
_SUBTYPES = ["tremor_dominant", "akinetic_rigid", "mixed"]


def _numeric(name: str, values: np.ndarray, description: str = "") -> NumericColumn:
    return NumericColumn(Field(name, ColumnKind.NUMERIC, description=description), values)


def load_parkinson(seed: int = 7, n_rows: int = N_ROWS) -> DataTable:
    """Build the synthetic PPMI-like table (default 2 000 rows x 50 columns)."""
    rng = np.random.default_rng(seed)
    n = int(n_rows)

    # Demographics and disease timeline.
    age = rng.normal(63.0, 9.5, n).clip(33, 90)
    sex_male = rng.random(n) < 0.62
    years_since_diagnosis = rng.gamma(shape=2.0, scale=2.2, size=n).clip(0.1, 25)
    age_at_onset = (age - years_since_diagnosis).clip(25, 85)
    education_years = rng.normal(15.5, 2.8, n).clip(6, 24)

    # Latent severity grows with disease duration (monotone, saturating).
    severity = 1.0 - np.exp(-years_since_diagnosis / 6.0)
    severity = severity + 0.08 * rng.standard_normal(n)
    severity = severity.clip(0.02, 1.4)

    def updrs_part(scale: float, noise: float, skew_boost: float = 0.0) -> np.ndarray:
        base = scale * severity + noise * rng.standard_normal(n)
        base = base + skew_boost * rng.gamma(1.5, 1.0, n)
        return base.clip(0, None)

    updrs1 = updrs_part(10.0, 1.6, 0.6)           # non-motor experiences
    updrs2 = updrs_part(14.0, 2.0, 0.8)           # motor experiences of daily living
    updrs3 = updrs_part(34.0, 4.5, 1.4)           # motor examination
    updrs4 = updrs_part(5.0, 1.0, 0.4)            # motor complications
    updrs_total = updrs1 + updrs2 + updrs3 + updrs4

    tremor_score = updrs_part(8.0, 1.8, 0.5)
    rigidity_score = updrs_part(9.0, 1.7, 0.5)
    bradykinesia = updrs_part(12.0, 2.2, 0.7)
    gait_score = updrs_part(6.0, 1.2, 0.4)
    hoehn_yahr = (1.0 + 3.0 * severity + 0.3 * rng.standard_normal(n)).clip(1, 5).round()

    moca = (27.5 - 4.5 * severity - 0.05 * (age - 60) + 1.2 * rng.standard_normal(n)).clip(5, 30)
    semantic_fluency = (48 - 14 * severity + 6 * rng.standard_normal(n)).clip(5, 80)
    benton_judgment = (13 - 3 * severity + 1.5 * rng.standard_normal(n)).clip(2, 15)
    symbol_digit = (45 - 16 * severity - 0.2 * (age - 60) + 5 * rng.standard_normal(n)).clip(5, 75)

    # Sleep / autonomic / mood scales (right-skewed).
    epworth = rng.gamma(2.0, 2.2, n).clip(0, 24) + 3.0 * severity
    rbd_score = rng.gamma(1.8, 1.6, n).clip(0, 13) + 2.0 * severity
    scopa_aut = rng.gamma(2.2, 3.0, n).clip(0, 60) + 6.0 * severity
    gds_depression = rng.gamma(1.3, 1.6, n).clip(0, 15) + 1.5 * severity
    stai_anxiety = (35 + 22 * severity + 8 * rng.standard_normal(n)).clip(20, 80)

    # Biomarkers (heavy-tailed, with planted outliers).
    csf_abeta = rng.lognormal(6.6, 0.35, n)
    csf_tau = rng.lognormal(5.1, 0.4, n)
    csf_asyn = rng.lognormal(7.2, 0.45, n)
    serum_urate = rng.normal(5.2, 1.2, n).clip(1.5, 10.5)
    datscan_putamen = (2.2 - 1.3 * severity + 0.25 * rng.standard_normal(n)).clip(0.2, 3.5)
    datscan_caudate = (2.9 - 1.1 * severity + 0.28 * rng.standard_normal(n)).clip(0.4, 4.2)
    outlier_rows = rng.random(n) < 0.008
    csf_tau[outlier_rows] *= 6.0

    # Motor timing tasks (nonlinear monotone in severity).
    tap_speed = (190 * np.exp(-0.9 * severity) + 12 * rng.standard_normal(n)).clip(30, 260)
    tug_seconds = (7.0 * np.exp(0.9 * severity) + 1.2 * rng.standard_normal(n)).clip(3, 60)
    stride_length = (1.45 - 0.5 * severity + 0.08 * rng.standard_normal(n)).clip(0.3, 1.9)

    # Dosing / lifestyle.
    ledd_dose = (350 * severity**1.2 * rng.lognormal(0.0, 0.35, n)).clip(0, 2500)
    bmi = rng.normal(27.0, 4.3, n).clip(16, 48)
    systolic_bp = rng.normal(131, 15, n).clip(90, 200)
    diastolic_bp = rng.normal(79, 10, n).clip(50, 120)
    caffeine_mg = rng.gamma(1.6, 90.0, n).clip(0, 900)
    exercise_hours = rng.gamma(1.8, 1.6, n).clip(0, 20)

    quality_of_life = (
        78 - 34 * severity - 0.9 * gds_depression + 5.5 * rng.standard_normal(n)
    ).clip(5, 100)

    # Categorical columns (heavy hitters at a few large sites / common meds).
    site_probabilities = np.array([0.18, 0.14, 0.10] + [0.58 / 18] * 18)
    site = rng.choice(_SITES, size=n, p=site_probabilities)
    medication = rng.choice(_MEDICATIONS, size=n, p=[0.46, 0.22, 0.12, 0.14, 0.06])
    subtype = rng.choice(_SUBTYPES, size=n, p=[0.45, 0.3, 0.25])
    dominant_side = rng.choice(["left", "right", "symmetric"], size=n, p=[0.42, 0.47, 0.11])
    family_history = rng.random(n) < 0.16
    cohort = np.where(severity < 0.35, "prodromal",
                      np.where(severity < 0.8, "early_pd", "advanced_pd"))

    visit_month = rng.choice([0, 6, 12, 24, 36, 48], size=n,
                             p=[0.3, 0.2, 0.18, 0.14, 0.1, 0.08]).astype(float)

    # Introduce realistic missingness in a few clinical scales.
    for values, rate in ((moca, 0.04), (csf_abeta, 0.12), (csf_tau, 0.12),
                         (datscan_putamen, 0.08), (semantic_fluency, 0.05)):
        mask = rng.random(n) < rate
        values[mask] = np.nan

    columns = [
        CategoricalColumn.from_raw("PatientID", [f"PD{idx:05d}" for idx in range(n)]),
        _numeric("Age", age, "Age at visit (years)"),
        BooleanColumn.from_raw("Male", sex_male.tolist()),
        _numeric("AgeAtOnset", age_at_onset),
        _numeric("YearsSinceDiagnosis", years_since_diagnosis),
        _numeric("EducationYears", education_years),
        _numeric("VisitMonth", visit_month),
        _numeric("UPDRS_I", updrs1, "MDS-UPDRS Part I"),
        _numeric("UPDRS_II", updrs2, "MDS-UPDRS Part II"),
        _numeric("UPDRS_III", updrs3, "MDS-UPDRS Part III"),
        _numeric("UPDRS_IV", updrs4, "MDS-UPDRS Part IV"),
        _numeric("UPDRS_Total", updrs_total, "MDS-UPDRS total score"),
        _numeric("TremorScore", tremor_score),
        _numeric("RigidityScore", rigidity_score),
        _numeric("BradykinesiaScore", bradykinesia),
        _numeric("GaitScore", gait_score),
        _numeric("HoehnYahrStage", hoehn_yahr),
        _numeric("MoCA", moca, "Montreal Cognitive Assessment"),
        _numeric("SemanticFluency", semantic_fluency),
        _numeric("BentonJudgment", benton_judgment),
        _numeric("SymbolDigitModalities", symbol_digit),
        _numeric("EpworthSleepiness", epworth),
        _numeric("RBDScreening", rbd_score),
        _numeric("SCOPA_AUT", scopa_aut),
        _numeric("GDSDepression", gds_depression),
        _numeric("STAIAnxiety", stai_anxiety),
        _numeric("CSF_ABeta", csf_abeta),
        _numeric("CSF_Tau", csf_tau),
        _numeric("CSF_AlphaSynuclein", csf_asyn),
        _numeric("SerumUrate", serum_urate),
        _numeric("DaTscanPutamen", datscan_putamen),
        _numeric("DaTscanCaudate", datscan_caudate),
        _numeric("FingerTapSpeed", tap_speed),
        _numeric("TimedUpAndGo", tug_seconds),
        _numeric("StrideLength", stride_length),
        _numeric("LEDD", ledd_dose, "Levodopa equivalent daily dose"),
        _numeric("BMI", bmi),
        _numeric("SystolicBP", systolic_bp),
        _numeric("DiastolicBP", diastolic_bp),
        _numeric("CaffeineMgPerDay", caffeine_mg),
        _numeric("ExerciseHoursPerWeek", exercise_hours),
        _numeric("QualityOfLife", quality_of_life, "PDQ-39 style index"),
        _numeric("LatentSeverity", severity,
                 "Latent progression factor used to generate the scales"),
        CategoricalColumn.from_raw("StudySite", site.tolist()),
        CategoricalColumn.from_raw("Medication", medication.tolist()),
        CategoricalColumn.from_raw("MotorSubtype", subtype.tolist()),
        CategoricalColumn.from_raw("DominantSide", dominant_side.tolist()),
        BooleanColumn.from_raw("FamilyHistory", family_history.tolist()),
        CategoricalColumn.from_raw("Cohort", cohort.tolist()),
        _numeric("SymptomAsymmetry", rng.gamma(1.5, 1.0, n)),
    ]
    return DataTable(columns, name="parkinson-ppmi")
