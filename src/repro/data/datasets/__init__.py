"""Demo datasets (synthetic stand-ins for the paper's three demo datasets)
and controllable workload generators for the benchmarks."""

from repro.data.datasets.oecd import (
    LEISURE_WORKHOURS_CORRELATION,
    HEALTH_LIFESATISFACTION_CORRELATION,
    OECD_COUNTRIES,
    OECD_INDICATORS,
    figure2_abbreviations,
    load_oecd,
)
from repro.data.datasets.parkinson import load_parkinson
from repro.data.datasets.imdb import load_imdb
from repro.data.datasets.synthetic import (
    MixedConfig,
    SyntheticConfig,
    make_bimodal_column,
    make_clustered_table,
    make_correlated_pair,
    make_mixed_table,
    make_numeric_table,
    make_uniform_categorical,
    make_zipf_categorical,
)

__all__ = [
    "HEALTH_LIFESATISFACTION_CORRELATION",
    "LEISURE_WORKHOURS_CORRELATION",
    "MixedConfig",
    "OECD_COUNTRIES",
    "OECD_INDICATORS",
    "SyntheticConfig",
    "figure2_abbreviations",
    "load_imdb",
    "load_oecd",
    "load_parkinson",
    "make_bimodal_column",
    "make_clustered_table",
    "make_correlated_pair",
    "make_mixed_table",
    "make_numeric_table",
    "make_uniform_categorical",
    "make_zipf_categorical",
]
