"""Synthetic IMDB movies dataset (5 000 x 28).

The paper's third demo dataset is the familiar "IMDB 5000" movie table
("5000 movies (rows) and 28 features (columns) ... from the director name to
the IMDB score"), used to explore questions such as *what factors correlate
highly with a film's profitability?* and *how are critical responses and
commercial success interrelated?*.

This generator reproduces the scale and plants the relationships those
questions probe: budget and gross are strongly related (and right-skewed /
heavy-tailed), profit correlates with audience engagement, critic and user
scores are positively but imperfectly correlated, and a few blockbusters act
as extreme outliers — plus heavy-hitter categorical columns (genres,
countries, content ratings, a long tail of directors).
"""

from __future__ import annotations

import numpy as np

from repro.data.column import BooleanColumn, CategoricalColumn, NumericColumn
from repro.data.schema import ColumnKind, Field
from repro.data.table import DataTable

N_ROWS = 5000

_GENRES = ["Drama", "Comedy", "Action", "Thriller", "Adventure", "Romance",
           "Crime", "Horror", "SciFi", "Animation", "Documentary", "Fantasy"]
_GENRE_P = np.array([0.22, 0.18, 0.14, 0.09, 0.08, 0.07, 0.06, 0.06, 0.04, 0.03, 0.02, 0.01])
_COUNTRIES = ["USA", "UK", "France", "Germany", "Canada", "India", "Japan",
              "Australia", "Spain", "China", "Italy", "South Korea"]
_COUNTRY_P = np.array([0.62, 0.11, 0.05, 0.04, 0.04, 0.03, 0.03, 0.02, 0.02, 0.02, 0.01, 0.01])
_RATINGS = ["R", "PG-13", "PG", "G", "NC-17", "Unrated"]
_RATING_P = np.array([0.45, 0.33, 0.13, 0.04, 0.01, 0.04])
_LANGUAGES = ["English", "French", "Spanish", "Mandarin", "Hindi", "Japanese", "German", "Korean"]
_LANGUAGE_P = np.array([0.78, 0.05, 0.04, 0.03, 0.03, 0.03, 0.02, 0.02])


def _numeric(name: str, values: np.ndarray, description: str = "") -> NumericColumn:
    return NumericColumn(Field(name, ColumnKind.NUMERIC, description=description), values)


def load_imdb(seed: int = 42, n_rows: int = N_ROWS) -> DataTable:
    """Build the synthetic IMDB-5000-like table (default 5 000 rows x 28 columns)."""
    rng = np.random.default_rng(seed)
    n = int(n_rows)

    title_year = rng.choice(np.arange(1960, 2017), size=n,
                            p=_year_probabilities()).astype(float)
    duration = rng.normal(108, 19, n).clip(60, 240)

    # Budget (log-normal, right-skewed); gross driven by budget + quality + luck.
    log_budget = rng.normal(16.6, 1.25, n)                       # ~ exp(16.6) ≈ 16M
    budget = np.exp(log_budget).clip(5e4, 4.0e8)
    quality = rng.standard_normal(n)                              # latent film quality
    marketing = rng.standard_normal(n)
    log_gross = (
        0.82 * (log_budget - log_budget.mean())
        + 0.55 * quality
        + 0.35 * marketing
        + rng.normal(0.0, 0.8, n)
        + 16.8
    )
    gross = np.exp(log_gross).clip(1e3, 3.0e9)
    # A few blockbusters become extreme outliers.
    blockbusters = rng.random(n) < 0.004
    gross[blockbusters] *= rng.uniform(3.0, 8.0, int(blockbusters.sum()))
    profit = gross - budget
    roi = profit / budget

    imdb_score = (6.4 + 0.85 * quality + 0.15 * rng.standard_normal(n)).clip(1.0, 9.8)
    critic_score = (58 + 16 * quality + 9 * rng.standard_normal(n)).clip(1, 100)
    num_critic_reviews = (np.exp(4.4 + 0.45 * np.log1p(gross / 1e6) / 3
                                 + 0.3 * rng.standard_normal(n))).clip(1, 900)
    num_user_reviews = (num_critic_reviews * rng.lognormal(1.1, 0.5, n)).clip(1, 6000)
    num_voted_users = (np.exp(9.0 + 0.8 * quality + 0.6 * np.log1p(gross / 1e6) / 4
                              + 0.5 * rng.standard_normal(n))).clip(50, 2.2e6)

    facebook_likes_movie = (num_voted_users * rng.lognormal(-2.0, 0.8, n)).clip(0, 4e5)
    facebook_likes_cast = rng.lognormal(8.6, 1.1, n).clip(0, 7e5)
    facebook_likes_director = rng.lognormal(5.6, 1.6, n).clip(0, 2.5e5)
    facebook_likes_lead = facebook_likes_cast * rng.uniform(0.35, 0.8, n)

    aspect_ratio = rng.choice([1.85, 2.35, 1.78, 1.66, 2.39], size=n,
                              p=[0.42, 0.38, 0.12, 0.04, 0.04])
    face_number_in_poster = rng.poisson(1.4, n).astype(float)

    # Categorical columns with heavy hitters.
    genre = rng.choice(_GENRES, size=n, p=_GENRE_P / _GENRE_P.sum())
    country = rng.choice(_COUNTRIES, size=n, p=_COUNTRY_P / _COUNTRY_P.sum())
    content_rating = rng.choice(_RATINGS, size=n, p=_RATING_P / _RATING_P.sum())
    language = rng.choice(_LANGUAGES, size=n, p=_LANGUAGE_P / _LANGUAGE_P.sum())
    color = rng.random(n) < 0.94

    # Long-tailed director / actor name distributions (few prolific names).
    director = _name_pool(rng, n, prefix="director", n_heavy=25, n_tail=1400,
                          heavy_share=0.3)
    lead_actor = _name_pool(rng, n, prefix="actor", n_heavy=60, n_tail=2400,
                            heavy_share=0.35)

    # Missing values where the real scrape has them (budget/gross gaps).
    for values, rate in ((budget, 0.06), (gross, 0.09), (critic_score, 0.03),
                         (aspect_ratio, 0.02)):
        mask = rng.random(n) < rate
        values[mask] = np.nan
    profit = gross - budget  # recompute so missingness propagates
    roi = profit / budget

    columns = [
        CategoricalColumn.from_raw("MovieTitle", [f"Movie {i:05d}" for i in range(n)]),
        CategoricalColumn.from_raw("Director", director),
        CategoricalColumn.from_raw("LeadActor", lead_actor),
        CategoricalColumn.from_raw("Genre", genre.tolist()),
        CategoricalColumn.from_raw("Country", country.tolist()),
        CategoricalColumn.from_raw("Language", language.tolist()),
        CategoricalColumn.from_raw("ContentRating", content_rating.tolist()),
        BooleanColumn.from_raw("Color", color.tolist()),
        _numeric("TitleYear", title_year),
        _numeric("DurationMinutes", duration),
        _numeric("Budget", budget, "Production budget (USD)"),
        _numeric("Gross", gross, "Worldwide gross (USD)"),
        _numeric("Profit", profit, "Gross minus budget (USD)"),
        _numeric("ReturnOnInvestment", roi),
        _numeric("IMDBScore", imdb_score),
        _numeric("CriticScore", critic_score, "Metacritic-style critic score"),
        _numeric("NumCriticReviews", num_critic_reviews),
        _numeric("NumUserReviews", num_user_reviews),
        _numeric("NumVotedUsers", num_voted_users),
        _numeric("MovieFacebookLikes", facebook_likes_movie),
        _numeric("CastFacebookLikes", facebook_likes_cast),
        _numeric("DirectorFacebookLikes", facebook_likes_director),
        _numeric("LeadActorFacebookLikes", facebook_likes_lead),
        _numeric("AspectRatio", aspect_ratio),
        _numeric("FacesInPoster", face_number_in_poster),
        _numeric("BudgetMillions", budget / 1e6),
        _numeric("GrossMillions", gross / 1e6),
        _numeric("ProfitMillions", profit / 1e6),
    ]
    return DataTable(columns, name="imdb-movies")


def _year_probabilities() -> np.ndarray:
    years = np.arange(1960, 2017)
    weights = np.linspace(0.2, 1.0, years.size) ** 2
    return weights / weights.sum()


def _name_pool(rng: np.random.Generator, n: int, prefix: str, n_heavy: int,
               n_tail: int, heavy_share: float) -> list[str]:
    """Draw names where a small set of prolific names covers ``heavy_share``."""
    heavy = [f"{prefix}_{i:04d}" for i in range(n_heavy)]
    tail = [f"{prefix}_{i:04d}" for i in range(n_heavy, n_heavy + n_tail)]
    from_heavy = rng.random(n) < heavy_share
    heavy_choices = rng.choice(len(heavy), size=n)
    tail_choices = rng.choice(len(tail), size=n)
    return [
        heavy[heavy_choices[i]] if from_heavy[i] else tail[tail_choices[i]]
        for i in range(n)
    ]
