"""Synthetic OECD Better-Life dataset (35 countries x 25 attributes).

The paper's primary demo dataset "contains 25 distinct attributes
(indicators) about 35 countries".  The original extract is not bundled with
the paper, so this generator produces a synthetic stand-in that

* uses the 24 indicator abbreviations visible in Figure 2 (expanded to full
  names) plus the country name, and
* plants exactly the statistical relationships the section 4.1 usage
  scenario relies on:

  - ``EmployeesWorkingVeryLongHours`` and ``TimeDevotedToLeisure`` have a
    strong *negative* correlation and form the top-ranked correlation pair;
  - ``TimeDevotedToLeisure`` has (near) zero correlation with
    ``SelfReportedHealth``;
  - ``TimeDevotedToLeisure`` is approximately normally distributed while
    ``SelfReportedHealth`` is left-skewed;
  - ``LifeSatisfaction`` and ``SelfReportedHealth`` are highly correlated,
    so focusing on Self Reported Health surfaces Life Satisfaction.

The key correlations are planted *exactly in-sample* by building the
indicator columns from an orthonormalised noise basis, so the scenario is
reproducible for any seed.
"""

from __future__ import annotations

import numpy as np

from repro.data.column import CategoricalColumn, NumericColumn
from repro.data.schema import ColumnKind, Field
from repro.data.table import DataTable

#: Figure 2 abbreviation -> full indicator name.
OECD_INDICATORS: dict[str, str] = {
    "CnOR": "ConsultationOnRuleMaking",
    "EdcA": "EducationalAttainment",
    "StdS": "StudentSkills",
    "QOSN": "QualityOfSupportNetwork",
    "SlRH": "SelfReportedHealth",
    "LfSt": "LifeSatisfaction",
    "EmpR": "EmploymentRate",
    "WtrQ": "WaterQuality",
    "LfEx": "LifeExpectancy",
    "HNFW": "HouseholdNetFinancialWealth",
    "RmPP": "RoomsPerPerson",
    "HNAD": "HouseholdNetAdjustedDisposableIncome",
    "PrsE": "PersonalEarnings",
    "VtrT": "VoterTurnout",
    "YrIE": "YearsInEducation",
    "TDTL": "TimeDevotedToLeisure",
    "HsnE": "HousingExpenditure",
    "JbSc": "JobSecurity",
    "LnUR": "LongTermUnemploymentRate",
    "AssR": "AssaultRate",
    "HmcR": "HomicideRate",
    "DWBF": "DwellingsWithoutBasicFacilities",
    "ArPl": "AirPollution",
    "EWVL": "EmployeesWorkingVeryLongHours",
}

#: The 35 OECD member countries (2017 membership).
OECD_COUNTRIES: list[str] = [
    "Australia", "Austria", "Belgium", "Canada", "Chile", "Czech Republic",
    "Denmark", "Estonia", "Finland", "France", "Germany", "Greece", "Hungary",
    "Iceland", "Ireland", "Israel", "Italy", "Japan", "Korea", "Latvia",
    "Luxembourg", "Mexico", "Netherlands", "New Zealand", "Norway", "Poland",
    "Portugal", "Slovak Republic", "Slovenia", "Spain", "Sweden",
    "Switzerland", "Turkey", "United Kingdom", "United States",
]

#: Planted in-sample correlations used by the usage scenario.
LEISURE_WORKHOURS_CORRELATION = -0.92
HEALTH_LIFESATISFACTION_CORRELATION = 0.88

#: Realistic (location, scale) used to map standardised columns to indicator units.
_INDICATOR_SCALES: dict[str, tuple[float, float]] = {
    "ConsultationOnRuleMaking": (2.4, 0.8),
    "EducationalAttainment": (76.0, 10.0),
    "StudentSkills": (486.0, 25.0),
    "QualityOfSupportNetwork": (89.0, 4.0),
    "SelfReportedHealth": (69.0, 12.0),
    "LifeSatisfaction": (6.5, 0.7),
    "EmploymentRate": (66.0, 7.0),
    "WaterQuality": (81.0, 9.0),
    "LifeExpectancy": (80.0, 2.5),
    "HouseholdNetFinancialWealth": (67000.0, 45000.0),
    "RoomsPerPerson": (1.7, 0.4),
    "HouseholdNetAdjustedDisposableIncome": (27000.0, 7000.0),
    "PersonalEarnings": (41000.0, 12000.0),
    "VoterTurnout": (68.0, 12.0),
    "YearsInEducation": (17.4, 1.5),
    "TimeDevotedToLeisure": (14.9, 0.5),
    "HousingExpenditure": (20.5, 2.0),
    "JobSecurity": (5.4, 2.5),
    "LongTermUnemploymentRate": (2.5, 2.3),
    "AssaultRate": (3.8, 1.6),
    "HomicideRate": (1.4, 2.2),
    "DwellingsWithoutBasicFacilities": (2.3, 3.0),
    "AirPollution": (13.8, 5.0),
    "EmployeesWorkingVeryLongHours": (8.0, 6.0),
}


def _orthonormal_basis(
    n_rows: int, n_vectors: int, rng: np.random.Generator,
    anchor: np.ndarray | None = None,
) -> np.ndarray:
    """Columns that are exactly zero-mean, unit-variance and mutually orthogonal.

    When ``anchor`` is given, every returned column is also exactly
    orthogonal to it (in addition to the constant vector), which lets the
    generator plant exact correlations against a hand-crafted column.
    """
    extra = 2 if anchor is not None else 1
    raw = rng.standard_normal((n_rows, n_vectors + extra))
    raw[:, 0] = 1.0  # include the constant so the rest are exactly zero-mean
    if anchor is not None:
        raw[:, 1] = anchor
    q, _ = np.linalg.qr(raw)
    basis = q[:, extra: n_vectors + extra]
    return basis * np.sqrt(n_rows)  # unit sample variance


def _standardize(values: np.ndarray) -> np.ndarray:
    centered = values - values.mean()
    sigma = centered.std()
    return centered / sigma if sigma > 0 else centered


def _orthogonalize(values: np.ndarray, against: np.ndarray) -> np.ndarray:
    """Remove the in-sample projection of ``values`` onto ``against``."""
    against_std = _standardize(against)
    values_std = _standardize(values)
    projection = np.dot(values_std, against_std) / np.dot(against_std, against_std)
    return _standardize(values_std - projection * against_std)


def load_oecd(seed: int = 2017) -> DataTable:
    """Build the synthetic OECD wellbeing table (35 rows x 25 columns)."""
    rng = np.random.default_rng(seed)
    n = len(OECD_COUNTRIES)
    names = list(OECD_INDICATORS.values())

    # --- scenario columns (exact in-sample correlations) -------------------
    # Time Devoted To Leisure must look normally distributed (section 4.1),
    # so it is built from normal quantiles of a random country ordering:
    # exactly symmetric in-sample, hence near-zero skewness.
    from scipy import stats as scipy_stats

    quantile_grid = scipy_stats.norm.ppf((np.arange(1, n + 1) - 0.5) / n)
    leisure = _standardize(quantile_grid[rng.permutation(n)])
    standardized: dict[str, np.ndarray] = {"TimeDevotedToLeisure": leisure}

    # Remaining structure comes from a basis that is exactly orthogonal to
    # the leisure column: 2 scenario components + one anchor per thematic
    # block + one component per remaining indicator (32 vectors; 35 rows
    # admit at most 33 zero-mean vectors orthogonal to leisure).
    basis = _orthonormal_basis(n, len(names) + 8, rng, anchor=leisure)

    rho = LEISURE_WORKHOURS_CORRELATION
    standardized["EmployeesWorkingVeryLongHours"] = (
        rho * leisure + np.sqrt(1.0 - rho * rho) * basis[:, 1]
    )

    # Self Reported Health: left-skewed and exactly uncorrelated with leisure.
    raw_health = -rng.lognormal(mean=0.0, sigma=0.55, size=n)
    health = _orthogonalize(raw_health, leisure)
    standardized["SelfReportedHealth"] = health

    rho_health = HEALTH_LIFESATISFACTION_CORRELATION
    noise = _orthogonalize(basis[:, 2], health)
    standardized["LifeSatisfaction"] = (
        rho_health * health + np.sqrt(1.0 - rho_health * rho_health) * noise
    )

    # --- remaining indicators: moderately correlated thematic blocks --------
    blocks = {
        "economy": ["HouseholdNetFinancialWealth", "HouseholdNetAdjustedDisposableIncome",
                    "PersonalEarnings", "EmploymentRate", "RoomsPerPerson"],
        "education": ["EducationalAttainment", "StudentSkills", "YearsInEducation"],
        "environment": ["WaterQuality", "AirPollution", "DwellingsWithoutBasicFacilities"],
        "safety": ["AssaultRate", "HomicideRate", "JobSecurity", "LongTermUnemploymentRate"],
        "civic": ["ConsultationOnRuleMaking", "VoterTurnout", "QualityOfSupportNetwork"],
        "health_extra": ["LifeExpectancy", "HousingExpenditure"],
    }
    basis_index = 3
    for block_columns in blocks.values():
        anchor = basis[:, basis_index]
        basis_index += 1
        for position, indicator in enumerate(block_columns):
            if indicator in standardized:
                continue
            loading = 0.72 if position > 0 else 1.0
            component = basis[:, basis_index]
            basis_index += 1
            standardized[indicator] = (
                loading * anchor + np.sqrt(max(1.0 - loading**2, 0.0)) * component
            )

    # --- scale to realistic units and assemble the table ---------------------
    columns: list = [
        CategoricalColumn.from_raw("Country", OECD_COUNTRIES)
    ]
    for indicator in names:
        location, scale = _INDICATOR_SCALES[indicator]
        values = location + scale * _standardize(standardized[indicator])
        columns.append(
            NumericColumn(
                Field(indicator, ColumnKind.NUMERIC,
                      description=f"OECD Better Life indicator: {indicator}"),
                values,
            )
        )
    return DataTable(columns, name="oecd-wellbeing")


def figure2_abbreviations() -> dict[str, str]:
    """Full indicator name -> Figure 2 abbreviation (for the overview bench)."""
    return {full: abbrev for abbrev, full in OECD_INDICATORS.items()}
