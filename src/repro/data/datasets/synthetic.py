"""Controllable synthetic workload generators.

The benchmark harness needs datasets whose statistical structure is known in
advance: columns with planted correlations, skew, heavy tails, outliers,
heavy hitters, multimodality and cluster structure.  These generators build
:class:`~repro.data.table.DataTable` objects of any size with that planted
structure, which is what the sketch-accuracy, speedup and latency
experiments sweep over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.column import CategoricalColumn, NumericColumn
from repro.data.schema import ColumnKind, Field
from repro.data.table import DataTable


@dataclass
class SyntheticConfig:
    """Parameters for the general-purpose numeric workload generator.

    ``n_rows`` x ``n_columns`` numeric table whose columns are grouped into
    correlated blocks: within a block, consecutive columns are correlated at
    roughly ``block_correlation``; across blocks columns are independent.
    A fraction of columns also receives skew, heavy tails and outliers.
    """

    n_rows: int = 10_000
    n_columns: int = 50
    block_size: int = 5
    block_correlation: float = 0.8
    skewed_fraction: float = 0.2
    heavy_tailed_fraction: float = 0.2
    outlier_fraction: float = 0.1
    outlier_rate: float = 0.01
    missing_rate: float = 0.0
    seed: int = 0


def make_numeric_table(config: SyntheticConfig | None = None, **overrides) -> DataTable:
    """Generate an all-numeric table with planted correlation blocks."""
    if config is None:
        config = SyntheticConfig(**overrides)
    elif overrides:
        config = SyntheticConfig(**{**config.__dict__, **overrides})
    rng = np.random.default_rng(config.seed)
    n, d = config.n_rows, config.n_columns
    matrix = np.empty((n, d))
    block_count = max(1, (d + config.block_size - 1) // config.block_size)
    column = 0
    for block in range(block_count):
        base = rng.standard_normal(n)
        for position in range(config.block_size):
            if column >= d:
                break
            rho = config.block_correlation
            noise = rng.standard_normal(n)
            if position == 0:
                values = base.copy()
            else:
                values = rho * base + np.sqrt(max(1.0 - rho * rho, 0.0)) * noise
            matrix[:, column] = values
            column += 1
    # Plant shape structure on a deterministic subset of columns.
    n_skewed = int(config.skewed_fraction * d)
    n_heavy = int(config.heavy_tailed_fraction * d)
    n_outlier = int(config.outlier_fraction * d)
    for j in range(n_skewed):
        matrix[:, j] = np.exp(matrix[:, j])  # log-normal: right-skewed
    for j in range(n_skewed, n_skewed + n_heavy):
        matrix[:, j] = rng.standard_t(df=3, size=n)  # heavy tails
    for j in range(d - n_outlier, d):
        outlier_rows = rng.random(n) < config.outlier_rate
        matrix[outlier_rows, j] += rng.choice([-1.0, 1.0], size=int(outlier_rows.sum())) * 8.0
    if config.missing_rate > 0:
        missing = rng.random(matrix.shape) < config.missing_rate
        matrix[missing] = np.nan
    names = [f"attr_{j:03d}" for j in range(d)]
    table = DataTable.from_numeric_matrix(matrix, names, name="synthetic-numeric")
    return table


def make_correlated_pair(
    n_rows: int, correlation: float, seed: int = 0, names: tuple[str, str] = ("x", "y")
) -> DataTable:
    """Two numeric columns with (population) correlation ``correlation``."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n_rows)
    noise = rng.standard_normal(n_rows)
    y = correlation * x + np.sqrt(max(1.0 - correlation**2, 0.0)) * noise
    return DataTable(
        [
            NumericColumn(Field(names[0], ColumnKind.NUMERIC), x),
            NumericColumn(Field(names[1], ColumnKind.NUMERIC), y),
        ],
        name="correlated-pair",
    )


def make_zipf_categorical(
    n_rows: int, n_categories: int = 100, exponent: float = 1.5, seed: int = 0,
    name: str = "category",
) -> CategoricalColumn:
    """A categorical column with Zipf-distributed (heavy-hitter) frequencies."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_categories + 1, dtype=np.float64)
    probabilities = ranks ** (-exponent)
    probabilities /= probabilities.sum()
    codes = rng.choice(n_categories, size=n_rows, p=probabilities)
    labels = [f"value_{i:04d}" for i in range(n_categories)]
    return CategoricalColumn(Field(name, ColumnKind.CATEGORICAL), codes, labels)


def make_uniform_categorical(
    n_rows: int, n_categories: int = 10, seed: int = 0, name: str = "category"
) -> CategoricalColumn:
    """A categorical column with (near) uniform frequencies."""
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, n_categories, size=n_rows)
    labels = [f"level_{i:02d}" for i in range(n_categories)]
    return CategoricalColumn(Field(name, ColumnKind.CATEGORICAL), codes, labels)


def make_bimodal_column(
    n_rows: int, separation: float = 4.0, weight: float = 0.5, seed: int = 0,
    name: str = "bimodal",
) -> NumericColumn:
    """A numeric column drawn from a two-component Gaussian mixture."""
    rng = np.random.default_rng(seed)
    component = rng.random(n_rows) < weight
    values = np.where(
        component,
        rng.normal(-separation / 2.0, 1.0, size=n_rows),
        rng.normal(separation / 2.0, 1.0, size=n_rows),
    )
    return NumericColumn(Field(name, ColumnKind.NUMERIC), values)


def make_clustered_table(
    n_rows: int = 2000, n_clusters: int = 3, separation: float = 6.0, seed: int = 0
) -> DataTable:
    """(x, y) points in well-separated clusters plus the cluster label.

    Used to exercise the Segmentation insight: segmentation_strength of
    (x, y, cluster) should be close to 1.
    """
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_clusters, size=n_rows)
    angles = 2.0 * np.pi * np.arange(n_clusters) / n_clusters
    centers = separation * np.column_stack([np.cos(angles), np.sin(angles)])
    x = centers[labels, 0] + rng.standard_normal(n_rows)
    y = centers[labels, 1] + rng.standard_normal(n_rows)
    label_names = [f"cluster_{i}" for i in range(n_clusters)]
    return DataTable(
        [
            NumericColumn(Field("x", ColumnKind.NUMERIC), x),
            NumericColumn(Field("y", ColumnKind.NUMERIC), y),
            CategoricalColumn(Field("cluster", ColumnKind.CATEGORICAL), labels, label_names),
        ],
        name="clustered",
    )


@dataclass
class MixedConfig:
    """Parameters for a mixed numeric + categorical benchmark table."""

    n_rows: int = 10_000
    n_numeric: int = 40
    n_categorical: int = 10
    n_categories: int = 20
    zipf_exponent: float = 1.3
    block_correlation: float = 0.7
    seed: int = 0
    numeric: SyntheticConfig = field(init=False)

    def __post_init__(self) -> None:
        self.numeric = SyntheticConfig(
            n_rows=self.n_rows,
            n_columns=self.n_numeric,
            block_correlation=self.block_correlation,
            seed=self.seed,
        )


def make_mixed_table(config: MixedConfig | None = None, **overrides) -> DataTable:
    """Generate a mixed-kind table (numeric blocks + Zipfian categoricals)."""
    if config is None:
        config = MixedConfig(**overrides)
    elif overrides:
        config = MixedConfig(**{
            key: overrides.get(key, getattr(config, key))
            for key in ("n_rows", "n_numeric", "n_categorical", "n_categories",
                        "zipf_exponent", "block_correlation", "seed")
        })
    numeric_table = make_numeric_table(config.numeric)
    columns = numeric_table.columns()
    for i in range(config.n_categorical):
        columns.append(
            make_zipf_categorical(
                config.n_rows,
                n_categories=config.n_categories,
                exponent=config.zipf_exponent,
                seed=config.seed + 1000 + i,
                name=f"cat_{i:02d}",
            )
        )
    return DataTable(columns, name="synthetic-mixed")
