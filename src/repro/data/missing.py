"""Missing-value policies.

The paper assumes pre-cleaned data, but real tables (and the synthetic demo
datasets) contain missing cells.  Insight metrics need a consistent way to
obtain usable values; this module centralises the policies:

* ``complete`` — keep only rows where *all* requested columns are present
  (used for multivariate metrics such as correlation);
* ``pairwise`` — for a pair of columns, keep rows where both are present;
* ``impute_mean`` / ``impute_median`` / ``impute_mode`` — fill missing
  entries so that sketch construction can run over a dense matrix.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import EmptyColumnError, SchemaError
from repro.data.column import CategoricalColumn, NumericColumn
from repro.data.table import DataTable


def complete_rows_mask(table: DataTable, names: Sequence[str]) -> np.ndarray:
    """Boolean mask of rows where every column in ``names`` is non-missing."""
    if not names:
        return np.ones(table.n_rows, dtype=bool)
    mask = np.ones(table.n_rows, dtype=bool)
    for name in names:
        mask &= ~table.column(name).mask
    return mask


def drop_missing(table: DataTable, names: Sequence[str] | None = None) -> DataTable:
    """Return a table with only rows complete in ``names`` (default: all)."""
    names = list(names) if names is not None else table.column_names()
    mask = complete_rows_mask(table, names)
    return table.take(np.flatnonzero(mask))


def pairwise_values(
    x: NumericColumn, y: NumericColumn, minimum: int = 2
) -> tuple[np.ndarray, np.ndarray]:
    """Aligned non-missing value arrays for a pair of numeric columns."""
    if len(x) != len(y):
        raise SchemaError("pairwise columns must have equal length")
    keep = ~(x.mask | y.mask)
    if int(keep.sum()) < minimum:
        raise EmptyColumnError(
            f"columns {x.name!r} and {y.name!r} share only {int(keep.sum())} "
            f"complete rows; {minimum} required"
        )
    return x.values[keep].copy(), y.values[keep].copy()


def groupwise_values(
    values: NumericColumn, groups: CategoricalColumn, minimum_per_group: int = 1
) -> dict[str, np.ndarray]:
    """Split a numeric column's values by the labels of a categorical column.

    Rows missing in either column are dropped.  Groups with fewer than
    ``minimum_per_group`` values are omitted.
    """
    if len(values) != len(groups):
        raise SchemaError("grouped columns must have equal length")
    keep = ~(values.mask | groups.mask)
    x = values.values[keep]
    codes = groups.codes[keep]
    out: dict[str, np.ndarray] = {}
    for code, label in enumerate(groups.categories):
        member = x[codes == code]
        if member.size >= minimum_per_group:
            out[label] = member.copy()
    return out


def impute_mean(column: NumericColumn) -> NumericColumn:
    """Fill missing values with the column mean."""
    return _impute_numeric(column, statistic="mean")


def impute_median(column: NumericColumn) -> NumericColumn:
    """Fill missing values with the column median."""
    return _impute_numeric(column, statistic="median")


def _impute_numeric(column: NumericColumn, statistic: str) -> NumericColumn:
    valid = column.valid_values()
    if valid.size == 0:
        raise EmptyColumnError(
            f"cannot impute column {column.name!r}: it has no usable values"
        )
    fill = float(np.mean(valid)) if statistic == "mean" else float(np.median(valid))
    values = column.values.copy()
    values[column.mask] = fill
    return NumericColumn(column.field, values, np.zeros(len(column), dtype=bool))


def impute_mode(column: CategoricalColumn) -> CategoricalColumn:
    """Fill missing values with the most frequent category."""
    counts = column.value_counts()
    if not counts:
        raise EmptyColumnError(
            f"cannot impute column {column.name!r}: it has no usable values"
        )
    mode_label = next(iter(counts))
    mode_code = column.categories.index(mode_label)
    codes = column.codes.copy()
    codes[codes == CategoricalColumn.MISSING_CODE] = mode_code
    return CategoricalColumn(column.field, codes, column.categories)


def dense_numeric_matrix(
    table: DataTable, names: Sequence[str] | None = None, policy: str = "impute_mean"
) -> tuple[np.ndarray, list[str]]:
    """Export the numeric block with missing values resolved.

    ``policy`` is one of ``"impute_mean"``, ``"impute_median"`` or
    ``"drop"`` (drop incomplete rows).  Sketch construction uses the mean
    policy by default so that sketches cover every row.
    """
    if names is None:
        names = table.numeric_names()
    names = list(names)
    if policy == "drop":
        clean = drop_missing(table, names)
        matrix, _ = clean.numeric_matrix(names)
        return matrix, names
    if policy not in ("impute_mean", "impute_median"):
        raise ValueError(f"unknown missing-value policy {policy!r}")
    arrays = []
    for name in names:
        column = table.numeric_column(name)
        if column.missing_count():
            column = (
                impute_mean(column) if policy == "impute_mean" else impute_median(column)
            )
        arrays.append(column.values.copy())
    if not arrays:
        return np.empty((table.n_rows, 0), dtype=np.float64), []
    return np.column_stack(arrays), names
