"""The :class:`DataTable`: Foresight's input matrix ``A(n x d)``.

A ``DataTable`` is an ordered collection of typed columns of equal length.
It supports the operations the insight engine needs:

* schema access (numeric set ``B`` and categorical set ``C``);
* column selection and row filtering / sampling;
* export of the numeric block as a dense matrix (for sketch construction);
* construction from column dicts, from row records and from raw values with
  schema inference.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import SchemaError, UnknownColumnError
from repro.data.column import (
    BooleanColumn,
    CategoricalColumn,
    Column,
    NumericColumn,
    column_from_raw,
)
from repro.data.schema import ColumnKind, Field, Schema, infer_schema


class DataTable:
    """An immutable, columnar table of typed columns.

    Parameters
    ----------
    columns:
        The columns, all of the same length.  Order is preserved and
        determines attribute indices (used e.g. by the overview heat map).
    name:
        Optional dataset name, surfaced in visualizations and sessions.
    """

    def __init__(self, columns: Iterable[Column], name: str = "dataset"):
        self._columns: list[Column] = list(columns)
        self._name = name
        if not self._columns:
            self._n_rows = 0
        else:
            lengths = {len(c) for c in self._columns}
            if len(lengths) != 1:
                raise SchemaError(
                    f"all columns must have the same length, got lengths {sorted(lengths)}"
                )
            self._n_rows = lengths.pop()
        self._index: dict[str, int] = {}
        for i, column in enumerate(self._columns):
            if column.name in self._index:
                raise SchemaError(f"duplicate column name {column.name!r}")
            self._index[column.name] = i

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls, columns: Mapping[str, Sequence[object]], name: str = "dataset",
        kinds: Mapping[str, ColumnKind] | None = None,
    ) -> "DataTable":
        """Build a table from a mapping of column name -> raw values.

        Column kinds are inferred unless overridden via ``kinds``.
        """
        kinds = dict(kinds or {})
        names = list(columns.keys())
        rows = list(zip(*columns.values())) if columns else []
        schema = infer_schema(names, rows, overrides=kinds)
        built = [
            column_from_raw(field.name, list(columns[field.name]), field.kind)
            for field in schema
        ]
        return cls(built, name=name)

    @classmethod
    def from_records(
        cls, records: Sequence[Mapping[str, object]], name: str = "dataset",
        kinds: Mapping[str, ColumnKind] | None = None,
    ) -> "DataTable":
        """Build a table from a list of row dictionaries."""
        if not records:
            return cls([], name=name)
        names: list[str] = []
        for record in records:
            for key in record:
                if key not in names:
                    names.append(key)
        columns = {key: [record.get(key) for record in records] for key in names}
        return cls.from_columns(columns, name=name, kinds=kinds)

    @classmethod
    def from_numeric_matrix(
        cls, matrix: np.ndarray, column_names: Sequence[str] | None = None,
        name: str = "dataset",
    ) -> "DataTable":
        """Build an all-numeric table from a dense ``(n, d)`` matrix."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise SchemaError("matrix must be two-dimensional")
        d = matrix.shape[1]
        if column_names is None:
            column_names = [f"x{j}" for j in range(d)]
        if len(column_names) != d:
            raise SchemaError("column_names length must match matrix width")
        columns = [
            NumericColumn(Field(name=column_names[j], kind=ColumnKind.NUMERIC), matrix[:, j])
            for j in range(d)
        ]
        return cls(columns, name=name)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return len(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        """(n_rows, n_columns) — the paper's (n, d)."""
        return (self._n_rows, len(self._columns))

    @property
    def schema(self) -> Schema:
        return Schema(column.field for column in self._columns)

    def column_names(self) -> list[str]:
        return [column.name for column in self._columns]

    def numeric_names(self) -> list[str]:
        """Names of the numeric columns (the paper's set ``B``)."""
        return [c.name for c in self._columns if c.kind.is_numeric]

    def categorical_names(self) -> list[str]:
        """Names of the categorical/boolean columns (the paper's set ``C``)."""
        return [c.name for c in self._columns if c.kind.is_categorical]

    def discrete_names(self, max_distinct: int = 20) -> list[str]:
        """Categorical columns plus low-cardinality integer numeric columns.

        These are the columns eligible for the heterogeneous-frequencies
        insight (paper section 2.2, insight 5).
        """
        names = self.categorical_names()
        for column in self._columns:
            if isinstance(column, NumericColumn) and column.is_discrete(max_distinct):
                names.append(column.name)
        return names

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return self._n_rows

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def column(self, name: str) -> Column:
        """Return a column by name."""
        if name not in self._index:
            raise UnknownColumnError(name, self.column_names())
        return self._columns[self._index[name]]

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    def numeric_column(self, name: str) -> NumericColumn:
        """Return a column by name, requiring it to be numeric."""
        column = self.column(name)
        if not isinstance(column, NumericColumn):
            raise SchemaError(f"column {name!r} is not numeric (kind={column.kind})")
        return column

    def categorical_column(self, name: str) -> CategoricalColumn:
        """Return a column by name, requiring it to be categorical."""
        column = self.column(name)
        if not isinstance(column, CategoricalColumn):
            raise SchemaError(f"column {name!r} is not categorical (kind={column.kind})")
        return column

    def columns(self) -> list[Column]:
        return list(self._columns)

    def numeric_columns(self) -> list[NumericColumn]:
        return [c for c in self._columns if isinstance(c, NumericColumn)]

    def categorical_columns(self) -> list[CategoricalColumn]:
        return [
            c for c in self._columns
            if isinstance(c, CategoricalColumn)
        ]

    # ------------------------------------------------------------------
    # Table transformations (all return new tables)
    # ------------------------------------------------------------------
    def select(self, names: Sequence[str], name: str | None = None) -> "DataTable":
        """Return a new table with only the named columns, in that order."""
        return DataTable(
            [self.column(n) for n in names], name=name or self._name
        )

    def drop(self, names: Sequence[str]) -> "DataTable":
        """Return a new table without the named columns."""
        to_drop = set(names)
        for n in names:
            if n not in self._index:
                raise UnknownColumnError(n, self.column_names())
        return DataTable(
            [c for c in self._columns if c.name not in to_drop], name=self._name
        )

    def rename(self, mapping: Mapping[str, str]) -> "DataTable":
        """Return a new table with columns renamed via ``mapping``."""
        for old in mapping:
            if old not in self._index:
                raise UnknownColumnError(old, self.column_names())
        return DataTable(
            [
                c.rename(mapping[c.name]) if c.name in mapping else c
                for c in self._columns
            ],
            name=self._name,
        )

    def take(self, indices: Sequence[int] | np.ndarray, name: str | None = None) -> "DataTable":
        """Return a new table containing the rows at ``indices``."""
        indices = np.asarray(indices, dtype=np.int64)
        return DataTable(
            [c.take(indices) for c in self._columns], name=name or self._name
        )

    def head(self, n: int = 10) -> "DataTable":
        """Return the first ``n`` rows."""
        n = min(n, self._n_rows)
        return self.take(np.arange(n))

    def filter_rows(self, predicate: Callable[[dict[str, object]], bool]) -> "DataTable":
        """Return rows for which ``predicate(row_dict)`` is truthy."""
        keep = [i for i, row in enumerate(self.iter_records()) if predicate(row)]
        return self.take(np.asarray(keep, dtype=np.int64))

    def sample(self, n: int, seed: int | None = None, replace: bool = False) -> "DataTable":
        """Return a uniform random sample of ``n`` rows."""
        rng = np.random.default_rng(seed)
        if not replace:
            n = min(n, self._n_rows)
        indices = rng.choice(self._n_rows, size=n, replace=replace)
        return self.take(indices)

    def split(self, fraction: float, seed: int | None = None) -> tuple["DataTable", "DataTable"]:
        """Randomly split rows into two tables (``fraction``, ``1 - fraction``)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        rng = np.random.default_rng(seed)
        permutation = rng.permutation(self._n_rows)
        cut = int(round(fraction * self._n_rows))
        return self.take(permutation[:cut]), self.take(permutation[cut:])

    def concat(self, other: "DataTable", name: str | None = None) -> "DataTable":
        """Return a new table with ``other``'s rows appended after this one's.

        ``other`` must carry exactly this table's columns (same names and
        kinds; order may differ — columns are matched by name).  New
        categorical levels appearing only in ``other`` extend the
        category lists.  This is the row-append primitive behind the
        live-ingestion path.
        """
        if self.n_columns == 0:
            raise SchemaError("cannot concat onto a table with no columns")
        missing = [n for n in self.column_names() if n not in other]
        extra = [n for n in other.column_names() if n not in self._index]
        if missing or extra:
            raise SchemaError(
                f"cannot concat tables with different columns "
                f"(missing: {missing}, unexpected: {extra})"
            )
        return DataTable(
            [column.concat(other.column(column.name)) for column in self._columns],
            name=name or self._name,
        )

    def with_column(self, column: Column) -> "DataTable":
        """Return a new table with ``column`` appended (or replaced)."""
        if len(column) != self._n_rows and self._columns:
            raise SchemaError(
                f"column length {len(column)} does not match table length {self._n_rows}"
            )
        if column.name in self._index:
            replaced = [
                column if c.name == column.name else c for c in self._columns
            ]
            return DataTable(replaced, name=self._name)
        return DataTable(self._columns + [column], name=self._name)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def numeric_matrix(self, names: Sequence[str] | None = None) -> tuple[np.ndarray, list[str]]:
        """Return the numeric block as an ``(n, |B|)`` float matrix.

        Missing values are returned as NaN; callers decide the policy.
        Returns the matrix and the column names in matrix order.
        """
        if names is None:
            names = self.numeric_names()
        arrays = []
        for name in names:
            column = self.numeric_column(name)
            values = column.values.copy()
            values[column.mask] = np.nan
            arrays.append(values)
        if not arrays:
            return np.empty((self._n_rows, 0), dtype=np.float64), []
        return np.column_stack(arrays), list(names)

    def iter_records(self) -> Iterator[dict[str, object]]:
        """Iterate over rows as dictionaries (None marks missing values)."""
        materialised = [column.to_list() for column in self._columns]
        names = self.column_names()
        for i in range(self._n_rows):
            yield {name: materialised[j][i] for j, name in enumerate(names)}

    def to_records(self) -> list[dict[str, object]]:
        """Return all rows as a list of dictionaries."""
        return list(self.iter_records())

    def to_columns(self) -> dict[str, list[object]]:
        """Return the table as a mapping of column name -> list of values."""
        return {column.name: column.to_list() for column in self._columns}

    def summary(self) -> dict[str, object]:
        """A small structural summary used by examples and the engine."""
        return {
            "name": self._name,
            "n_rows": self._n_rows,
            "n_columns": self.n_columns,
            "numeric_columns": self.numeric_names(),
            "categorical_columns": self.categorical_names(),
            "missing_cells": int(sum(c.missing_count() for c in self._columns)),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataTable(name={self._name!r}, n_rows={self._n_rows}, "
            f"n_columns={self.n_columns})"
        )
