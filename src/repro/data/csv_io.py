"""CSV reading and writing for :class:`repro.data.table.DataTable`.

The reader is dependency-free (built on the standard library ``csv``
module), infers a schema from the parsed rows and returns a fully typed
``DataTable``.  The writer emits plain CSV with empty cells for missing
values, so a table survives a round trip.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Mapping, Sequence

from repro.errors import SchemaError
from repro.data.schema import ColumnKind, infer_schema
from repro.data.column import column_from_raw
from repro.data.table import DataTable


def read_csv(
    path: str | Path,
    name: str | None = None,
    kinds: Mapping[str, ColumnKind] | None = None,
    delimiter: str = ",",
    encoding: str = "utf-8",
) -> DataTable:
    """Read a CSV file into a :class:`DataTable`.

    Parameters
    ----------
    path:
        Path to the CSV file; the first row must contain column names.
    name:
        Dataset name; defaults to the file stem.
    kinds:
        Optional explicit column kinds overriding schema inference.
    delimiter:
        Field delimiter.
    encoding:
        Text encoding of the file.
    """
    path = Path(path)
    with path.open("r", newline="", encoding=encoding) as handle:
        table = read_csv_text(handle.read(), name=name or path.stem, kinds=kinds,
                              delimiter=delimiter)
    return table


def read_csv_text(
    text: str,
    name: str = "dataset",
    kinds: Mapping[str, ColumnKind] | None = None,
    delimiter: str = ",",
) -> DataTable:
    """Parse CSV text (header + rows) into a :class:`DataTable`."""
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = [row for row in reader if row]
    if not rows:
        raise SchemaError("CSV input is empty")
    header = [h.strip() for h in rows[0]]
    if len(set(header)) != len(header):
        raise SchemaError("CSV header contains duplicate column names")
    body: list[list[str]] = []
    for line_number, row in enumerate(rows[1:], start=2):
        if len(row) != len(header):
            raise SchemaError(
                f"row {line_number} has {len(row)} fields; expected {len(header)}"
            )
        body.append([cell.strip() for cell in row])
    schema = infer_schema(header, body, overrides=kinds)
    columns = []
    for j, field in enumerate(schema):
        raw_values = [row[j] for row in body]
        columns.append(column_from_raw(field.name, raw_values, field.kind))
    return DataTable(columns, name=name)


def write_csv(table: DataTable, path: str | Path, delimiter: str = ",",
              encoding: str = "utf-8") -> None:
    """Write a :class:`DataTable` to a CSV file (empty cell = missing)."""
    path = Path(path)
    with path.open("w", newline="", encoding=encoding) as handle:
        handle.write(to_csv_text(table, delimiter=delimiter))


def to_csv_text(table: DataTable, delimiter: str = ",") -> str:
    """Serialise a :class:`DataTable` to CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    writer.writerow(table.column_names())
    columns = [column.to_list() for column in table.columns()]
    for i in range(table.n_rows):
        row = []
        for values in columns:
            value = values[i]
            if value is None:
                row.append("")
            elif isinstance(value, float) and value.is_integer():
                row.append(str(int(value)))
            else:
                row.append(str(value))
        writer.writerow(row)
    return buffer.getvalue()


def column_kinds_from_strings(kinds: Mapping[str, str]) -> dict[str, ColumnKind]:
    """Convert a mapping of column name -> kind string to ColumnKind values.

    Convenience for callers configuring CSV ingestion from JSON/YAML-style
    configuration where kinds arrive as plain strings.
    """
    converted: dict[str, ColumnKind] = {}
    for column_name, kind_text in kinds.items():
        try:
            converted[column_name] = ColumnKind(kind_text)
        except ValueError as exc:
            valid = ", ".join(k.value for k in ColumnKind)
            raise SchemaError(
                f"invalid column kind {kind_text!r} for {column_name!r}; "
                f"valid kinds: {valid}"
            ) from exc
    return converted
