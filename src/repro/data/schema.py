"""Column kinds, field descriptors and schema inference.

The paper models the input as a matrix ``A(n x d)`` whose columns are either
numeric (set ``B``) or categorical (set ``C``).  This module provides the
typed schema layer on top of which :class:`repro.data.table.DataTable` is
built: a :class:`ColumnKind` enumeration, a :class:`Field` descriptor
(name, kind, metadata) and :class:`Schema`, an ordered collection of fields.

Schema inference (:func:`infer_kind`, :func:`infer_schema`) converts raw
string/object values (e.g. read from CSV) into the most specific kind that
represents them: boolean, numeric, or categorical.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError, UnknownColumnError

#: Values treated as missing during inference and parsing.
MISSING_TOKENS = frozenset({"", "na", "n/a", "nan", "null", "none", "missing", "?"})

#: Values treated as boolean true / false during inference.
TRUE_TOKENS = frozenset({"true", "t", "yes", "y", "1"})
FALSE_TOKENS = frozenset({"false", "f", "no", "n", "0"})


class ColumnKind(enum.Enum):
    """The kind of a column, which decides which insights apply to it.

    ``NUMERIC`` columns belong to the paper's set ``B`` and participate in
    dispersion, skew, heavy-tails, outlier, correlation and related
    insights.  ``CATEGORICAL`` columns belong to the set ``C`` and
    participate in heterogeneous-frequency, dependence and segmentation
    insights.  ``BOOLEAN`` columns are treated as categorical with two
    levels but keep their own kind so visualizations can special-case them.
    """

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    BOOLEAN = "boolean"

    @property
    def is_numeric(self) -> bool:
        return self is ColumnKind.NUMERIC

    @property
    def is_categorical(self) -> bool:
        return self in (ColumnKind.CATEGORICAL, ColumnKind.BOOLEAN)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Field:
    """A named, typed column descriptor.

    Parameters
    ----------
    name:
        Column name, unique within a schema.
    kind:
        The :class:`ColumnKind` of the column.
    description:
        Optional human readable description (surfaced in visualizations).
    unit:
        Optional unit of measure (e.g. ``"hours"``, ``"USD"``).
    tags:
        Optional free-form metadata tags; reserved for the future-work
        metadata constraints mentioned in the paper (currency, dates, ...).
    """

    name: str
    kind: ColumnKind
    description: str = ""
    unit: str = ""
    tags: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("field name must be a non-empty string")
        if not isinstance(self.kind, ColumnKind):
            raise SchemaError(f"field kind must be a ColumnKind, got {self.kind!r}")

    def with_description(self, description: str) -> "Field":
        """Return a copy of this field with a new description."""
        return replace(self, description=description)

    def with_tags(self, *tags: str) -> "Field":
        """Return a copy of this field with the given tags appended."""
        return replace(self, tags=self.tags + tuple(tags))


class Schema:
    """An ordered, name-indexed collection of :class:`Field` objects."""

    def __init__(self, fields: Iterable[Field] = ()):
        self._fields: list[Field] = []
        self._index: dict[str, int] = {}
        for f in fields:
            self.add(f)

    # -- construction -----------------------------------------------------
    def add(self, field_: Field) -> None:
        """Append a field; names must be unique."""
        if field_.name in self._index:
            raise SchemaError(f"duplicate column name {field_.name!r}")
        self._index[field_.name] = len(self._fields)
        self._fields.append(field_)

    def replace(self, field_: Field) -> None:
        """Replace the field with the same name as ``field_``."""
        if field_.name not in self._index:
            raise UnknownColumnError(field_.name, self.names())
        self._fields[self._index[field_.name]] = field_

    def drop(self, name: str) -> None:
        """Remove a field by name."""
        if name not in self._index:
            raise UnknownColumnError(name, self.names())
        position = self._index.pop(name)
        del self._fields[position]
        for other, idx in list(self._index.items()):
            if idx > position:
                self._index[other] = idx - 1

    # -- lookup -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Field:
        if name not in self._index:
            raise UnknownColumnError(name, self.names())
        return self._fields[self._index[name]]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def index_of(self, name: str) -> int:
        """Return the ordinal position of a column."""
        if name not in self._index:
            raise UnknownColumnError(name, self.names())
        return self._index[name]

    def names(self) -> list[str]:
        """Return all column names in order."""
        return [f.name for f in self._fields]

    def numeric_names(self) -> list[str]:
        """Names of columns in the paper's numeric set ``B``."""
        return [f.name for f in self._fields if f.kind.is_numeric]

    def categorical_names(self) -> list[str]:
        """Names of columns in the paper's categorical set ``C``."""
        return [f.name for f in self._fields if f.kind.is_categorical]

    def select(self, names: Sequence[str]) -> "Schema":
        """Return a new schema restricted to ``names`` (in the given order)."""
        return Schema(self[name] for name in names)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{f.name}:{f.kind.value}" for f in self._fields)
        return f"Schema({parts})"


# ---------------------------------------------------------------------------
# Inference
# ---------------------------------------------------------------------------

def is_missing_token(value: object) -> bool:
    """Return True if a raw value should be treated as missing."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, str):
        return value.strip().lower() in MISSING_TOKENS
    return False


def parse_number(value: object) -> float | None:
    """Parse a raw value as a float, returning None if it is not numeric."""
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        value_f = float(value)
        return None if math.isnan(value_f) else value_f
    if isinstance(value, str):
        text = value.strip().replace(",", "")
        if not text:
            return None
        try:
            return float(text)
        except ValueError:
            return None
    return None


def parse_boolean(value: object) -> bool | None:
    """Parse a raw value as a boolean, returning None if it is not boolean."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        text = value.strip().lower()
        if text in TRUE_TOKENS:
            return True
        if text in FALSE_TOKENS:
            return False
    return None


def infer_kind(values: Iterable[object], categorical_threshold: int = 20) -> ColumnKind:
    """Infer the :class:`ColumnKind` of a sequence of raw values.

    The inference rules follow common EDA-tool behaviour:

    * if every non-missing value parses as boolean -> ``BOOLEAN``;
    * else if every non-missing value parses as a number -> ``NUMERIC``,
      unless the column is integer-valued with at most
      ``categorical_threshold`` distinct values *and* the values look like
      codes (small non-negative integers), in which case it stays NUMERIC —
      the insight classes themselves decide whether to treat low-cardinality
      numeric columns as discrete;
    * otherwise -> ``CATEGORICAL``.
    """
    saw_value = False
    all_boolean = True
    all_numeric = True
    for value in values:
        if is_missing_token(value):
            continue
        saw_value = True
        if all_boolean and parse_boolean(value) is None:
            all_boolean = False
        if all_numeric and parse_number(value) is None:
            all_numeric = False
        if not all_boolean and not all_numeric:
            return ColumnKind.CATEGORICAL
    if not saw_value:
        # An all-missing column defaults to categorical; it carries no
        # numeric information and categorical handling is the safest.
        return ColumnKind.CATEGORICAL
    if all_boolean:
        return ColumnKind.BOOLEAN
    if all_numeric:
        return ColumnKind.NUMERIC
    return ColumnKind.CATEGORICAL


def infer_schema(
    names: Sequence[str],
    rows: Sequence[Sequence[object]],
    overrides: Mapping[str, ColumnKind] | None = None,
) -> Schema:
    """Infer a :class:`Schema` for tabular raw data.

    Parameters
    ----------
    names:
        Column names, in order.
    rows:
        Row-major raw values (each row a sequence aligned with ``names``).
    overrides:
        Optional explicit kinds that bypass inference for specific columns.
    """
    overrides = dict(overrides or {})
    schema = Schema()
    for j, name in enumerate(names):
        if name in overrides:
            kind = overrides[name]
        else:
            kind = infer_kind(row[j] for row in rows)
        schema.add(Field(name=name, kind=kind))
    return schema
