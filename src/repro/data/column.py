"""Typed column containers backed by NumPy arrays.

A column couples a :class:`repro.data.schema.Field` with a value array and a
missing-value mask.  Three concrete column types exist:

* :class:`NumericColumn` — float64 values (the paper's set ``B``);
* :class:`CategoricalColumn` — string labels stored as integer codes plus a
  category list (the paper's set ``C``);
* :class:`BooleanColumn` — a two-level categorical column specialised for
  booleans.

Columns are immutable from the caller's perspective: all transforming
operations return new column objects, and ``values``/``mask`` accessors
return read-only views.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ColumnTypeError, EmptyColumnError, SchemaError
from repro.obs.resources import record_rows
from repro.data.schema import (
    ColumnKind,
    Field,
    is_missing_token,
    parse_boolean,
    parse_number,
)


def _readonly(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.flags.writeable = False
    return view


class Column:
    """Abstract base class for typed columns."""

    def __init__(self, field: Field, mask: np.ndarray):
        self._field = field
        self._mask = np.asarray(mask, dtype=bool)

    # -- schema ----------------------------------------------------------
    @property
    def field(self) -> Field:
        """The schema field describing this column."""
        return self._field

    @property
    def name(self) -> str:
        return self._field.name

    @property
    def kind(self) -> ColumnKind:
        return self._field.kind

    # -- missing values ----------------------------------------------------
    @property
    def mask(self) -> np.ndarray:
        """Boolean array; True where the value is missing."""
        return _readonly(self._mask)

    def missing_count(self) -> int:
        """Number of missing values."""
        return int(self._mask.sum())

    def missing_fraction(self) -> float:
        """Fraction of missing values (0.0 for an empty column)."""
        if len(self) == 0:
            return 0.0
        return self.missing_count() / len(self)

    def valid_count(self) -> int:
        """Number of non-missing values."""
        return len(self) - self.missing_count()

    # -- container protocol ------------------------------------------------
    def __len__(self) -> int:
        return int(self._mask.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(name={self.name!r}, n={len(self)}, "
            f"missing={self.missing_count()})"
        )

    # -- to be provided by subclasses ---------------------------------------
    def take(self, indices: np.ndarray) -> "Column":
        """Return a new column containing the rows at ``indices``."""
        raise NotImplementedError

    def rename(self, name: str) -> "Column":
        """Return a copy of this column with a new name."""
        raise NotImplementedError

    def to_list(self) -> list[object]:
        """Return the column as a Python list with None for missing values."""
        raise NotImplementedError

    def concat(self, other: "Column") -> "Column":
        """Return a new column with ``other``'s rows appended after this one's.

        Both columns must have the same name and kind; the result keeps
        this column's field metadata.  Used by the live-ingestion path to
        extend a dataset with a validated delta batch.
        """
        raise NotImplementedError

    def _require_concat_compatible(self, other: "Column") -> None:
        if type(self) is not type(other):
            raise ColumnTypeError(
                f"cannot concat {type(other).__name__} onto {type(self).__name__} "
                f"(column {self.name!r})"
            )
        if self.name != other.name:
            raise SchemaError(
                f"cannot concat column {other.name!r} onto column {self.name!r}"
            )
        if self.kind is not other.kind:
            raise SchemaError(
                f"cannot concat column {self.name!r}: kind {other.kind} != {self.kind}"
            )


class NumericColumn(Column):
    """A numeric column stored as float64 with an explicit missing mask."""

    def __init__(self, field: Field, values: np.ndarray, mask: np.ndarray | None = None):
        if not field.kind.is_numeric:
            raise ColumnTypeError(
                f"NumericColumn requires a NUMERIC field, got {field.kind}"
            )
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise SchemaError("column values must be one-dimensional")
        if mask is None:
            mask = np.isnan(values)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != values.shape:
            raise SchemaError("mask shape must match values shape")
        # Normalise: every NaN is missing even if the caller's mask says not.
        mask = mask | np.isnan(values)
        super().__init__(field, mask)
        self._values = values

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_raw(cls, name: str, raw_values: Sequence[object], **field_kwargs) -> "NumericColumn":
        """Build a numeric column from raw (possibly string) values."""
        parsed = np.empty(len(raw_values), dtype=np.float64)
        mask = np.zeros(len(raw_values), dtype=bool)
        for i, value in enumerate(raw_values):
            if is_missing_token(value):
                parsed[i] = np.nan
                mask[i] = True
                continue
            number = parse_number(value)
            if number is None:
                parsed[i] = np.nan
                mask[i] = True
            else:
                parsed[i] = number
        field = Field(name=name, kind=ColumnKind.NUMERIC, **field_kwargs)
        return cls(field, parsed, mask)

    # -- accessors ----------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """All values as float64 (missing entries hold NaN)."""
        return _readonly(self._values)

    def valid_values(self) -> np.ndarray:
        """Only the non-missing values, as a new float64 array.

        Every exact (non-sketch) metric evaluation funnels through here,
        so this is where scanned rows bill to the ambient cost recorder.
        """
        record_rows(len(self))
        return self._values[~self._mask].copy()

    def require_valid_values(self, minimum: int = 1) -> np.ndarray:
        """Return non-missing values, raising if fewer than ``minimum`` exist."""
        values = self.valid_values()
        if values.size < minimum:
            raise EmptyColumnError(
                f"column {self.name!r} has {values.size} usable values; "
                f"{minimum} required"
            )
        return values

    def is_discrete(self, max_distinct: int = 20) -> bool:
        """True if the column is integer-valued with few distinct values.

        The heterogeneous-frequencies insight applies to categorical columns
        *and* discrete numeric columns (paper section 2.2, insight 5); this
        predicate is how the engine decides that a numeric column qualifies.
        """
        values = self.valid_values()
        if values.size == 0:
            return False
        if not np.all(np.isclose(values, np.round(values))):
            return False
        return np.unique(values).size <= max_distinct

    # -- transformations ------------------------------------------------------
    def take(self, indices: np.ndarray) -> "NumericColumn":
        indices = np.asarray(indices)
        return NumericColumn(self._field, self._values[indices], self._mask[indices])

    def rename(self, name: str) -> "NumericColumn":
        field = Field(
            name=name,
            kind=self._field.kind,
            description=self._field.description,
            unit=self._field.unit,
            tags=self._field.tags,
        )
        return NumericColumn(field, self._values.copy(), self._mask.copy())

    def to_list(self) -> list[object]:
        return [
            None if missing else float(value)
            for value, missing in zip(self._values, self._mask)
        ]

    def concat(self, other: "Column") -> "NumericColumn":
        self._require_concat_compatible(other)
        assert isinstance(other, NumericColumn)
        return NumericColumn(
            self._field,
            np.concatenate([self._values, other._values]),
            np.concatenate([self._mask, other._mask]),
        )


class CategoricalColumn(Column):
    """A categorical column stored as integer codes plus category labels."""

    #: Code used for missing entries.
    MISSING_CODE = -1

    def __init__(self, field: Field, codes: np.ndarray, categories: Sequence[str]):
        if not field.kind.is_categorical:
            raise ColumnTypeError(
                f"CategoricalColumn requires a categorical field, got {field.kind}"
            )
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 1:
            raise SchemaError("column codes must be one-dimensional")
        categories = [str(c) for c in categories]
        if len(set(categories)) != len(categories):
            raise SchemaError("categories must be unique")
        if codes.size and codes.max(initial=self.MISSING_CODE) >= len(categories):
            raise SchemaError("code out of range for category list")
        if codes.size and codes.min(initial=0) < self.MISSING_CODE:
            raise SchemaError("negative code other than the missing code")
        mask = codes == self.MISSING_CODE
        super().__init__(field, mask)
        self._codes = codes
        self._categories = list(categories)

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_raw(
        cls,
        name: str,
        raw_values: Sequence[object],
        kind: ColumnKind = ColumnKind.CATEGORICAL,
        **field_kwargs,
    ) -> "CategoricalColumn":
        """Build a categorical column from raw values (labels)."""
        labels: list[str] = []
        label_index: dict[str, int] = {}
        codes = np.empty(len(raw_values), dtype=np.int64)
        for i, value in enumerate(raw_values):
            if is_missing_token(value):
                codes[i] = cls.MISSING_CODE
                continue
            label = str(value).strip()
            if label not in label_index:
                label_index[label] = len(labels)
                labels.append(label)
            codes[i] = label_index[label]
        field = Field(name=name, kind=kind, **field_kwargs)
        return cls(field, codes, labels)

    # -- accessors ----------------------------------------------------------
    @property
    def codes(self) -> np.ndarray:
        """Integer codes; ``MISSING_CODE`` marks missing entries."""
        return _readonly(self._codes)

    @property
    def categories(self) -> list[str]:
        """The category labels, indexed by code."""
        return list(self._categories)

    def n_categories(self) -> int:
        return len(self._categories)

    def labels(self) -> list[str | None]:
        """All values as labels, with None for missing entries."""
        return [
            None if code == self.MISSING_CODE else self._categories[code]
            for code in self._codes
        ]

    def valid_labels(self) -> list[str]:
        """Only the non-missing labels."""
        return [self._categories[code] for code in self._codes if code != self.MISSING_CODE]

    def valid_codes(self) -> np.ndarray:
        """Only the non-missing codes, as a new int64 array."""
        record_rows(len(self))
        return self._codes[~self._mask].copy()

    def value_counts(self) -> dict[str, int]:
        """Frequency of each category among non-missing values, descending."""
        record_rows(len(self))
        counts = np.bincount(
            self._codes[~self._mask], minlength=len(self._categories)
        )
        pairs = sorted(
            zip(self._categories, counts.tolist()), key=lambda p: (-p[1], p[0])
        )
        return {label: count for label, count in pairs if count > 0}

    # -- transformations ------------------------------------------------------
    def take(self, indices: np.ndarray) -> "CategoricalColumn":
        indices = np.asarray(indices)
        return CategoricalColumn(self._field, self._codes[indices], self._categories)

    def rename(self, name: str) -> "CategoricalColumn":
        field = Field(
            name=name,
            kind=self._field.kind,
            description=self._field.description,
            unit=self._field.unit,
            tags=self._field.tags,
        )
        return CategoricalColumn(field, self._codes.copy(), self._categories)

    def to_list(self) -> list[object]:
        return self.labels()

    def concat(self, other: "Column") -> "CategoricalColumn":
        self._require_concat_compatible(other)
        assert isinstance(other, CategoricalColumn)
        categories = list(self._categories)
        category_index = {label: code for code, label in enumerate(categories)}
        remap = np.empty(len(other._categories) + 1, dtype=np.int64)
        remap[-1] = self.MISSING_CODE
        for code, label in enumerate(other._categories):
            if label not in category_index:
                category_index[label] = len(categories)
                categories.append(label)
            remap[code] = category_index[label]
        remapped = remap[other._codes]
        return CategoricalColumn(
            self._field, np.concatenate([self._codes, remapped]), categories
        )


class BooleanColumn(CategoricalColumn):
    """A boolean column, represented as a two-level categorical column."""

    TRUE_LABEL = "true"
    FALSE_LABEL = "false"

    def __init__(self, field: Field, codes: np.ndarray):
        if field.kind is not ColumnKind.BOOLEAN:
            raise ColumnTypeError(
                f"BooleanColumn requires a BOOLEAN field, got {field.kind}"
            )
        super().__init__(field, codes, [self.FALSE_LABEL, self.TRUE_LABEL])

    @classmethod
    def from_raw(cls, name: str, raw_values: Sequence[object], **field_kwargs) -> "BooleanColumn":
        codes = np.empty(len(raw_values), dtype=np.int64)
        for i, value in enumerate(raw_values):
            if is_missing_token(value):
                codes[i] = cls.MISSING_CODE
                continue
            parsed = parse_boolean(value)
            codes[i] = cls.MISSING_CODE if parsed is None else int(parsed)
        field = Field(name=name, kind=ColumnKind.BOOLEAN, **field_kwargs)
        return cls(field, codes)

    def take(self, indices: np.ndarray) -> "BooleanColumn":
        indices = np.asarray(indices)
        return BooleanColumn(self._field, self._codes[indices])

    def rename(self, name: str) -> "BooleanColumn":
        field = Field(
            name=name,
            kind=self._field.kind,
            description=self._field.description,
            unit=self._field.unit,
            tags=self._field.tags,
        )
        return BooleanColumn(field, self._codes.copy())

    def to_bool_array(self) -> np.ndarray:
        """Return a boolean array over non-missing entries."""
        return self.valid_codes().astype(bool)

    def concat(self, other: "Column") -> "BooleanColumn":
        self._require_concat_compatible(other)
        assert isinstance(other, BooleanColumn)
        return BooleanColumn(
            self._field, np.concatenate([self._codes, other._codes])
        )


def column_from_raw(name: str, raw_values: Sequence[object], kind: ColumnKind) -> Column:
    """Build the appropriate column type for ``kind`` from raw values."""
    if kind is ColumnKind.NUMERIC:
        return NumericColumn.from_raw(name, raw_values)
    if kind is ColumnKind.BOOLEAN:
        return BooleanColumn.from_raw(name, raw_values)
    if kind is ColumnKind.CATEGORICAL:
        return CategoricalColumn.from_raw(name, raw_values)
    raise ColumnTypeError(f"unsupported column kind {kind!r}")


def numeric_column(name: str, values: Iterable[float], **field_kwargs) -> NumericColumn:
    """Convenience constructor for a numeric column from an iterable."""
    array = np.asarray(list(values), dtype=np.float64)
    field = Field(name=name, kind=ColumnKind.NUMERIC, **field_kwargs)
    return NumericColumn(field, array)


def categorical_column(name: str, labels: Iterable[object], **field_kwargs) -> CategoricalColumn:
    """Convenience constructor for a categorical column from labels."""
    return CategoricalColumn.from_raw(name, list(labels), **field_kwargs)
