"""Data substrate: typed columns, tables, CSV I/O and demo datasets."""

from repro.data.schema import ColumnKind, Field, Schema, infer_kind, infer_schema
from repro.data.column import (
    BooleanColumn,
    CategoricalColumn,
    Column,
    NumericColumn,
    categorical_column,
    numeric_column,
)
from repro.data.table import DataTable
from repro.data.csv_io import read_csv, read_csv_text, to_csv_text, write_csv
from repro.data.missing import (
    complete_rows_mask,
    dense_numeric_matrix,
    drop_missing,
    groupwise_values,
    impute_mean,
    impute_median,
    impute_mode,
    pairwise_values,
)

__all__ = [
    "BooleanColumn",
    "CategoricalColumn",
    "Column",
    "ColumnKind",
    "DataTable",
    "Field",
    "NumericColumn",
    "Schema",
    "categorical_column",
    "complete_rows_mask",
    "dense_numeric_matrix",
    "drop_missing",
    "groupwise_values",
    "impute_mean",
    "impute_median",
    "impute_mode",
    "infer_kind",
    "infer_schema",
    "numeric_column",
    "pairwise_values",
    "read_csv",
    "read_csv_text",
    "to_csv_text",
    "write_csv",
]
