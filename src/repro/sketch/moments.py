"""Moment sketch: single-pass running sums for dispersion / skew / kurtosis.

The paper notes (section 3) that "skewness and kurtosis can both be computed
for numeric columns in a single pass by maintaining and combining a few
running sums".  :class:`MomentSketch` is that object packaged as a
:class:`repro.sketch.base.Sketch`: it wraps the numerically stable
:class:`repro.stats.moments.RunningMoments` accumulator, adds mergeability
checks and memory accounting, and exposes the three insight metrics it
serves (variance, skewness, kurtosis) plus the mean / std used to
standardise other metrics.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.base import Sketch
from repro.stats.moments import MomentSummary, RunningMoments


class MomentSketch(Sketch):
    """Mergeable single-pass sketch of the first four moments of a column."""

    def __init__(self) -> None:
        self._moments = RunningMoments()

    # -- construction -----------------------------------------------------------
    def update(self, value) -> None:
        self._moments.update(float(value))

    def update_array(self, values: np.ndarray) -> None:
        self._moments.update_array(np.asarray(values, dtype=np.float64))

    def merge(self, other: "Sketch") -> None:
        self._require_same_type(other)
        assert isinstance(other, MomentSketch)
        self._moments.merge(other._moments)

    # -- estimates ---------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._moments.n

    def mean(self) -> float:
        return self._moments.mean

    def variance(self) -> float:
        """Dispersion insight metric σ²."""
        return self._moments.variance

    def std(self) -> float:
        return self._moments.std

    def skewness(self) -> float:
        """Skew insight metric γ₁."""
        return self._moments.skewness

    def kurtosis(self) -> float:
        """Heavy-Tails insight metric."""
        return self._moments.kurtosis

    def minimum(self) -> float:
        return self._moments.minimum

    def maximum(self) -> float:
        return self._moments.maximum

    def summary(self) -> MomentSummary:
        return self._moments.summary()

    def memory_bytes(self) -> int:
        # n, mean, M2, M3, M4, min, max — seven scalars.
        return 7 * 8
