"""The sketch store: Foresight's preprocessing step.

"The dataset is preprocessed to compute sketches, samples, and indexes that
will support fast approximate insight querying" (paper, section 1).  The
:class:`SketchStore` is that preprocessing product: for a given
:class:`~repro.data.table.DataTable` it builds, per column,

* a :class:`~repro.sketch.moments.MomentSketch` (numeric columns),
* a :class:`~repro.sketch.quantile.QuantileSketch` (numeric columns),
* a :class:`~repro.sketch.hyperplane.HyperplaneSketch` signature
  (numeric columns, shared hyperplane draw),
* a :class:`~repro.sketch.frequent.MisraGriesSketch` and an
  :class:`~repro.sketch.entropy.EntropySketch` (categorical and discrete
  numeric columns),
* plus a uniform row sample shared by all visualizations.

The store exposes approximate versions of the insight metrics; the engine
decides per query whether to use them (``mode="approximate"``) or to fall
back to the exact statistics (``mode="exact"``).
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import ClassVar, Mapping

import numpy as np

from repro.errors import SketchNotAvailableError
from repro.core.executor import Executor, SerialExecutor
from repro.obs.resources import record_sketch_probe
from repro.data.column import CategoricalColumn, NumericColumn
from repro.data.table import DataTable
from repro.sketch.countmin import CountMinSketch
from repro.sketch.entropy import EntropySketch
from repro.sketch.frequent import MisraGriesSketch
from repro.sketch.hyperplane import HyperplaneSketch, HyperplaneSketcher, suggest_width
from repro.sketch.moments import MomentSketch
from repro.sketch.quantile import QuantileSketch
from repro.sketch.reservoir import reservoir_row_indices


@dataclass
class SketchStoreConfig:
    """Tuning knobs for preprocessing."""

    hyperplane_width: int | None = None   # None -> suggest_width(n)
    quantile_epsilon: float = 0.01
    #: The Greenwald-Khanna update is per-item; above this many rows the
    #: quantile sketch is built over a uniform row sample instead (the
    #: resulting rank error is O(1/sqrt(cap)), far below what the Outlier
    #: insight needs).
    quantile_sample_cap: int = 20_000
    frequent_capacity: int = 128
    entropy_capacity: int = 256
    #: Count-Min point-frequency backend for categorical / discrete
    #: columns; width 0 disables it (no per-value count queries).
    countmin_width: int = 256
    countmin_depth: int = 4
    sample_capacity: int = 2000
    seed: int = 0

    def resolved_width(self, n_rows: int) -> int:
        if self.hyperplane_width is not None:
            return int(self.hyperplane_width)
        return suggest_width(n_rows)


@dataclass
class ColumnSketches:
    """The bundle of sketches built for one column."""

    name: str
    moments: MomentSketch | None = None
    quantiles: QuantileSketch | None = None
    hyperplane: HyperplaneSketch | None = None
    frequent: MisraGriesSketch | None = None
    entropy: EntropySketch | None = None
    countmin: CountMinSketch | None = None

    #: The sketch attributes that compose under row-partition merges.
    #: Hyperplane signatures are deliberately absent: they are built from
    #: a shared hyperplane draw over a fixed row count and cannot absorb
    #: appended rows (the ingest layer keeps them until the accuracy
    #: budget forces a full rebuild).
    MERGEABLE: ClassVar[tuple[str, ...]] = (
        "moments", "quantiles", "frequent", "entropy", "countmin"
    )

    def memory_bytes(self) -> int:
        total = 0
        for sketch in (self.moments, self.quantiles, self.hyperplane,
                       self.frequent, self.entropy, self.countmin):
            if sketch is not None:
                total += sketch.memory_bytes()
        return total


@dataclass
class PreprocessStats:
    """Timings and sizes recorded while building the store (benchmarked)."""

    seconds: float = 0.0
    n_rows: int = 0
    n_numeric: int = 0
    n_categorical: int = 0
    hyperplane_width: int = 0
    total_sketch_bytes: int = 0
    per_stage_seconds: dict[str, float] = field(default_factory=dict)
    #: Rows absorbed via incremental delta merges since the last full
    #: build (the ingest layer's accuracy-budget input): hyperplane
    #: signatures ignore these rows until a rebuild refreshes them.
    delta_rows: int = 0
    delta_batches: int = 0


class SketchStore:
    """Per-column sketches for a table, plus approximate metric queries.

    Preprocessing is embarrassingly parallel across columns, so the
    per-column builds fan out over ``executor`` when one with workers is
    supplied.  Each column derives its own RNG stream from
    ``(seed, column index)``, making the built store independent of both
    column build order and worker count — a parallel build is identical
    to a serial one.
    """

    def __init__(
        self,
        table: DataTable,
        config: SketchStoreConfig | None = None,
        executor: Executor | None = None,
    ):
        self._table = table
        self._config = config or SketchStoreConfig()
        self._executor = executor or SerialExecutor()
        self._columns: dict[str, ColumnSketches] = {}
        self._sketcher: HyperplaneSketcher | None = None
        self._sample_indices: np.ndarray = np.empty(0, dtype=np.int64)
        self._stats = PreprocessStats()
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        start = time.perf_counter()
        config = self._config
        table = self._table
        numeric_names = table.numeric_names()
        categorical_names = table.categorical_names()

        stage_start = time.perf_counter()
        width = config.resolved_width(max(table.n_rows, 2))
        if numeric_names and table.n_rows:
            self._sketcher = HyperplaneSketcher(
                n_rows=table.n_rows, width=width, seed=config.seed
            )
            matrix, _ = table.numeric_matrix(numeric_names)
            signatures = self._sketcher.sketch_matrix(matrix)
        else:
            signatures = []
        self._stats.per_stage_seconds["hyperplane"] = time.perf_counter() - stage_start

        stage_start = time.perf_counter()
        numeric_bundles = self._executor.map(
            lambda item: self._build_numeric_column(
                item[1], signatures[item[0]] if signatures else None, item[0]
            ),
            list(enumerate(numeric_names)),
        )
        for name, bundle in zip(numeric_names, numeric_bundles):
            self._columns[name] = bundle
        self._stats.per_stage_seconds["numeric"] = time.perf_counter() - stage_start

        stage_start = time.perf_counter()
        categorical_bundles = self._executor.map(
            self._build_categorical_column, categorical_names
        )
        for name, bundle in zip(categorical_names, categorical_bundles):
            self._columns[name] = bundle
        self._stats.per_stage_seconds["categorical"] = time.perf_counter() - stage_start

        self._sample_indices = reservoir_row_indices(
            table.n_rows, config.sample_capacity, seed=config.seed
        )

        self._stats.seconds = time.perf_counter() - start
        self._stats.n_rows = table.n_rows
        self._stats.n_numeric = len(numeric_names)
        self._stats.n_categorical = len(categorical_names)
        self._stats.hyperplane_width = width
        self._stats.total_sketch_bytes = sum(
            bundle.memory_bytes() for bundle in self._columns.values()
        )

    def _build_numeric_column(
        self, name: str, signature: HyperplaneSketch | None, index: int
    ) -> ColumnSketches:
        """Build one numeric column's sketch bundle (runs on a worker).

        The quantile sampling RNG is seeded from ``(seed, column index)``
        rather than drawn from one sequential stream, so the sampled rows
        — and therefore the built store — do not depend on the order in
        which workers finish.
        """
        config = self._config
        column = self._table.numeric_column(name)
        values = column.valid_values()
        moments = MomentSketch()
        moments.update_array(values)
        quantiles = QuantileSketch(epsilon=config.quantile_epsilon)
        if values.size > config.quantile_sample_cap:
            rng = np.random.default_rng([config.seed, index])
            sampled = rng.choice(
                values, size=config.quantile_sample_cap, replace=False
            )
            quantiles.update_array(sampled)
        else:
            quantiles.update_array(values)
        bundle = ColumnSketches(
            name=name,
            moments=moments,
            quantiles=quantiles,
            hyperplane=signature,
        )
        if column.is_discrete():
            labels = column.to_list()
            bundle.frequent = self._build_frequent(labels)
            bundle.entropy = self._build_entropy(labels)
            bundle.countmin = self._build_countmin(labels)
        return bundle

    def _build_categorical_column(self, name: str) -> ColumnSketches:
        """Build one categorical column's sketch bundle (runs on a worker)."""
        column = self._table.categorical_column(name)
        labels = column.labels()
        return ColumnSketches(
            name=name,
            frequent=self._build_frequent(labels),
            entropy=self._build_entropy(labels),
            countmin=self._build_countmin(labels),
        )

    def _build_frequent(self, labels: list[object]) -> MisraGriesSketch:
        sketch = MisraGriesSketch(capacity=self._config.frequent_capacity)
        sketch.update_many(label for label in labels if label is not None)
        return sketch

    def _build_entropy(self, labels: list[object]) -> EntropySketch:
        sketch = EntropySketch(capacity=self._config.entropy_capacity,
                               seed=self._config.seed)
        sketch.update_many(label for label in labels if label is not None)
        return sketch

    def _build_countmin(self, labels: list[object]) -> CountMinSketch | None:
        if self._config.countmin_width < 1:
            return None
        sketch = CountMinSketch(width=self._config.countmin_width,
                                depth=self._config.countmin_depth,
                                seed=self._config.seed)
        sketch.update_many(label for label in labels if label is not None)
        return sketch

    # ------------------------------------------------------------------
    # Alternative construction (live ingestion)
    # ------------------------------------------------------------------
    @classmethod
    def from_parts(
        cls,
        table: DataTable,
        config: SketchStoreConfig,
        executor: Executor,
        columns: Mapping[str, ColumnSketches],
        sketcher: HyperplaneSketcher | None,
        sample_indices: np.ndarray,
        stats: PreprocessStats,
    ) -> "SketchStore":
        """Assemble a store from already-built parts, skipping ``_build``.

        This is the constructor behind incremental maintenance: the
        ingest layer merges delta partials into *copies* of a live
        store's sketches and packages the result as a new store object,
        so in-flight readers of the old store never observe a mutation.
        """
        store = cls.__new__(cls)
        store._table = table
        store._config = config
        store._executor = executor
        store._columns = dict(columns)
        store._sketcher = sketcher
        store._sample_indices = np.asarray(sample_indices, dtype=np.int64)
        store._stats = stats
        return store

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def table(self) -> DataTable:
        return self._table

    @property
    def sketcher(self) -> HyperplaneSketcher | None:
        """The shared hyperplane draw (None when no numeric columns)."""
        return self._sketcher

    @property
    def executor(self) -> Executor:
        """The execution layer the store was built with."""
        return self._executor

    @property
    def sample_indices(self) -> np.ndarray:
        """Row indices of the uniform sample (read-only view for ingest)."""
        return self._sample_indices

    def column_map(self) -> dict[str, ColumnSketches]:
        """A shallow copy of the per-column bundle mapping."""
        return dict(self._columns)

    @property
    def config(self) -> SketchStoreConfig:
        return self._config

    @property
    def stats(self) -> PreprocessStats:
        return self._stats

    def column_sketches(self, name: str) -> ColumnSketches:
        if name not in self._columns:
            raise SketchNotAvailableError(
                f"no sketches were built for column {name!r}"
            )
        return self._columns[name]

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def sample_table(self) -> DataTable:
        """The uniform row sample used by visualizations."""
        return self._table.take(self._sample_indices, name=f"{self._table.name}-sample")

    def memory_bytes(self) -> int:
        return self._stats.total_sketch_bytes

    # ------------------------------------------------------------------
    # Approximate metric queries
    # ------------------------------------------------------------------
    def _require(self, name: str, attribute: str):
        bundle = self.column_sketches(name)
        sketch = getattr(bundle, attribute)
        if sketch is None:
            raise SketchNotAvailableError(
                f"column {name!r} has no {attribute} sketch"
            )
        # Every approx_* query funnels through here: one probe billed to
        # the ambient request's cost recorder (no-op outside a request).
        record_sketch_probe()
        return sketch

    def approx_mean(self, name: str) -> float:
        return self._require(name, "moments").mean()

    def approx_variance(self, name: str) -> float:
        return self._require(name, "moments").variance()

    def approx_std(self, name: str) -> float:
        return self._require(name, "moments").std()

    def approx_skewness(self, name: str) -> float:
        return self._require(name, "moments").skewness()

    def approx_kurtosis(self, name: str) -> float:
        return self._require(name, "moments").kurtosis()

    def approx_quantile(self, name: str, q: float) -> float:
        return self._require(name, "quantiles").quantile(q)

    def approx_iqr(self, name: str) -> float:
        return self._require(name, "quantiles").iqr()

    def approx_five_number_summary(self, name: str) -> dict[str, float]:
        return self._require(name, "quantiles").five_number_summary()

    def approx_correlation(self, x: str, y: str) -> float:
        sketch_x: HyperplaneSketch = self._require(x, "hyperplane")
        sketch_y: HyperplaneSketch = self._require(y, "hyperplane")
        return sketch_x.estimate_correlation(sketch_y)

    def approx_correlation_matrix(self, names: list[str] | None = None) -> tuple[np.ndarray, list[str]]:
        """Estimated all-pairs correlation matrix over ``names``."""
        if self._sketcher is None:
            raise SketchNotAvailableError("no hyperplane sketches were built")
        if names is None:
            names = [
                name for name in self._table.numeric_names() if self.has_column(name)
            ]
        signatures = [self._require(name, "hyperplane") for name in names]
        return self._sketcher.correlation_matrix(signatures), list(names)

    def approx_relative_frequency_topk(self, name: str, k: int) -> float:
        return self._require(name, "frequent").relative_frequency_topk(k)

    def approx_top_values(self, name: str, k: int) -> list[tuple[object, int]]:
        return self._require(name, "frequent").top_k(k)

    def approx_count(self, name: str, value: object) -> int:
        """Approximate count of one value via the Count-Min backend."""
        return self._require(name, "countmin").estimate(value)

    def approx_relative_frequency(self, name: str, value: object) -> float:
        """Approximate relative frequency of one value (Count-Min)."""
        return self._require(name, "countmin").relative_frequency(value)

    def approx_entropy(self, name: str) -> float:
        return self._require(name, "entropy").estimate_entropy()

    def approx_normalized_entropy(self, name: str) -> float:
        return self._require(name, "entropy").estimate_normalized_entropy()

    def approx_outlier_strength(self, name: str, whisker_k: float = 1.5) -> float:
        """Approximate the Outlier insight metric from sketches only.

        Outliers are taken to be points beyond the Tukey fences estimated
        from the quantile sketch; their average standardized distance is
        estimated from the row sample (sketch-backed, no full-data pass).
        """
        quantiles: QuantileSketch = self._require(name, "quantiles")
        moments: MomentSketch = self._require(name, "moments")
        q1 = quantiles.quantile(0.25)
        q3 = quantiles.quantile(0.75)
        iqr = q3 - q1
        std = moments.std()
        if std == 0.0 or np.isnan(std):
            return 0.0
        low, high = q1 - whisker_k * iqr, q3 + whisker_k * iqr
        sample_column = self.sample_table().numeric_column(name)
        sample = sample_column.valid_values()
        if sample.size == 0:
            return 0.0
        outliers = sample[(sample < low) | (sample > high)]
        if outliers.size == 0:
            return 0.0
        return float(np.mean(np.abs(outliers - moments.mean()) / std))


def preprocess(table: DataTable, config: SketchStoreConfig | None = None) -> SketchStore:
    """Convenience wrapper mirroring the paper's 'preprocess the dataset' step."""
    return SketchStore(table, config=config)


def merge_column_sketches(left: Mapping[str, ColumnSketches],
                          right: Mapping[str, ColumnSketches]) -> dict[str, ColumnSketches]:
    """Merge two per-column sketch bundles built over disjoint row partitions.

    Only the mergeable sketches (``ColumnSketches.MERGEABLE``: moments,
    quantiles, frequent, entropy, count-min) are combined; hyperplane
    signatures require a shared hyperplane draw over the union of rows and
    are left to the batch sketcher.

    Both inputs are treated as published snapshots: the combined sketch is
    built on a deep copy, never by merging into an input in place, and the
    result dictionary is populated in sorted column order so the merged
    bundle is byte-identical regardless of set hash order.
    """
    merged: dict[str, ColumnSketches] = {}
    for name in sorted(set(left) | set(right)):
        a, b = left.get(name), right.get(name)
        if a is None or b is None:
            merged[name] = a or b  # type: ignore[assignment]
            continue
        bundle = ColumnSketches(name=name)
        for attribute in ColumnSketches.MERGEABLE:
            sketch_a = getattr(a, attribute)
            sketch_b = getattr(b, attribute)
            if sketch_a is not None and sketch_b is not None:
                combined = copy.deepcopy(sketch_a)
                combined.merge(sketch_b)
                setattr(bundle, attribute, combined)
            else:
                setattr(bundle, attribute, sketch_a or sketch_b)
        merged[name] = bundle
    return merged
