"""Greenwald–Khanna quantile sketch.

One of the sketch types the paper integrates ("quantile sketch", section 3).
The Greenwald–Khanna (GK) summary maintains a small set of tuples
(value, g, Δ) such that any rank query can be answered within ε·n of the
true rank using O((1/ε)·log(ε·n)) space.  Foresight uses it to derive
approximate medians, IQRs and box-plot statistics for the Outlier insight
and histogram-oriented visualizations without re-reading the data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import EmptyColumnError, SketchError
from repro.sketch.base import Sketch


@dataclass
class _Tuple:
    """A GK summary tuple: a stored value with rank uncertainty bounds."""

    value: float
    g: int      # difference between the min rank of this and the previous tuple
    delta: int  # uncertainty in the rank of this tuple


class QuantileSketch(Sketch):
    """ε-approximate quantile summary (Greenwald–Khanna 2001)."""

    def __init__(self, epsilon: float = 0.01):
        if not 0.0 < epsilon < 0.5:
            raise SketchError("epsilon must be in (0, 0.5)")
        self.epsilon = float(epsilon)
        self._tuples: list[_Tuple] = []
        self._count = 0
        self._since_compress = 0

    # -- construction -------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    def update(self, value) -> None:
        value = float(value)
        if math.isnan(value):
            return
        self._insert(value)
        self._count += 1
        self._since_compress += 1
        if self._since_compress >= max(1, int(1.0 / (2.0 * self.epsilon))):
            self._compress()
            self._since_compress = 0

    def update_array(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        values = values[~np.isnan(values)]
        if values.size == 0:
            return
        if self._count == 0:
            # Batch fast path: for a sorted batch the compressed summary can
            # be built directly by keeping every floor(2*epsilon*n)-th value
            # with g = gap to the previous kept value and delta = 0.  Every
            # tuple then satisfies the GK invariant g + delta <= 2*epsilon*n,
            # so the epsilon*n rank-error bound is unchanged.
            ordered = np.sort(values)
            n = int(ordered.size)
            step = max(int(2.0 * self.epsilon * n), 1)
            keep = list(range(0, n, step))
            if keep[-1] != n - 1:
                keep.append(n - 1)
            tuples = []
            previous = -1
            for index in keep:
                tuples.append(_Tuple(float(ordered[index]), index - previous, 0))
                previous = index
            self._tuples = tuples
            self._count = n
            self._since_compress = 0
            return
        for value in values:
            self.update(float(value))

    def _insert(self, value: float) -> None:
        tuples = self._tuples
        if not tuples or value < tuples[0].value:
            tuples.insert(0, _Tuple(value, 1, 0))
            return
        if value >= tuples[-1].value:
            tuples.append(_Tuple(value, 1, 0))
            return
        # Binary search for the first tuple with value > inserted value.
        lo, hi = 0, len(tuples)
        while lo < hi:
            mid = (lo + hi) // 2
            if tuples[mid].value <= value:
                lo = mid + 1
            else:
                hi = mid
        delta = max(int(math.floor(2.0 * self.epsilon * self._count)) - 1, 0)
        tuples.insert(lo, _Tuple(value, 1, delta))

    def _compress(self) -> None:
        if len(self._tuples) < 3:
            return
        threshold = 2.0 * self.epsilon * self._count
        tuples = self._tuples
        merged: list[_Tuple] = [tuples[0]]
        for current in tuples[1:-1]:
            candidate = merged[-1]
            if (
                len(merged) > 1
                and candidate.g + current.g + current.delta <= threshold
            ):
                current = _Tuple(current.value, candidate.g + current.g, current.delta)
                merged[-1] = current
            else:
                merged.append(current)
        merged.append(tuples[-1])
        self._tuples = merged

    # -- merging ---------------------------------------------------------------------
    def merge(self, other: "Sketch") -> None:
        self._require_same_type(other)
        assert isinstance(other, QuantileSketch)
        self._require(
            math.isclose(self.epsilon, other.epsilon),
            "cannot merge quantile sketches with different epsilon",
        )
        # Standard GK merge: interleave tuples by value; the error bound of
        # the merged sketch is bounded by the max of the two errors.
        combined = sorted(
            self._tuples + [ _Tuple(t.value, t.g, t.delta) for t in other._tuples ],
            key=lambda t: t.value,
        )
        self._tuples = combined
        self._count += other._count
        self._compress()

    # -- queries -----------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Approximate q-th quantile (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self._count == 0 or not self._tuples:
            raise EmptyColumnError("quantile sketch is empty")
        target = q * (self._count - 1) + 1
        margin = self.epsilon * self._count
        min_rank = 0
        for t in self._tuples:
            min_rank += t.g
            max_rank = min_rank + t.delta
            if max_rank >= target - margin and min_rank <= target + margin:
                return t.value
        return self._tuples[-1].value

    def median(self) -> float:
        return self.quantile(0.5)

    def iqr(self) -> float:
        return self.quantile(0.75) - self.quantile(0.25)

    def rank(self, value: float) -> int:
        """Approximate number of inserted values <= ``value``."""
        if self._count == 0:
            return 0
        min_rank = 0
        estimate = 0
        for t in self._tuples:
            min_rank += t.g
            if t.value <= value:
                estimate = min_rank
            else:
                break
        return int(estimate)

    def cdf(self, value: float) -> float:
        """Approximate empirical CDF at ``value``."""
        if self._count == 0:
            raise EmptyColumnError("quantile sketch is empty")
        return self.rank(value) / self._count

    def five_number_summary(self) -> dict[str, float]:
        """Approximate min, Q1, median, Q3, max (box-plot statistics)."""
        return {
            "min": self.quantile(0.0),
            "q1": self.quantile(0.25),
            "median": self.quantile(0.5),
            "q3": self.quantile(0.75),
            "max": self.quantile(1.0),
        }

    # -- accounting --------------------------------------------------------------------
    @property
    def n_tuples(self) -> int:
        return len(self._tuples)

    def memory_bytes(self) -> int:
        # value (8 bytes) + two ints (8 bytes each, conservatively).
        return len(self._tuples) * 24
