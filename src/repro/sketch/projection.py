"""Random projection sketch (Johnson–Lindenstrauss / AMS style).

The last sketch type the paper names in section 3.  Each column (viewed as
an n-dimensional vector) is projected onto ``k`` random Gaussian directions
scaled by 1/sqrt(k); inner products, Euclidean norms and distances between
the projected vectors are unbiased estimates of the originals.  Foresight
uses it to approximate covariances between centred columns (an alternative
route to correlation) and column norms used by the dispersion insight.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SketchError, SketchMergeError
from repro.sketch.base import Sketch


class RandomProjectionSketch:
    """The projected representation of one column."""

    def __init__(self, projection: np.ndarray, seed: int, n_rows: int):
        self.projection = np.asarray(projection, dtype=np.float64)
        self.seed = int(seed)
        self.n_rows = int(n_rows)

    @property
    def width(self) -> int:
        return int(self.projection.size)

    def _check(self, other: "RandomProjectionSketch") -> None:
        if (
            self.width != other.width
            or self.seed != other.seed
            or self.n_rows != other.n_rows
        ):
            raise SketchMergeError(
                "random-projection sketches are comparable only with the same "
                "width, seed and row count"
            )

    def estimate_dot(self, other: "RandomProjectionSketch") -> float:
        """Unbiased estimate of the inner product of the original columns."""
        self._check(other)
        return float(np.dot(self.projection, other.projection))

    def estimate_norm_squared(self) -> float:
        """Unbiased estimate of the squared Euclidean norm of the column."""
        return float(np.dot(self.projection, self.projection))

    def estimate_distance(self, other: "RandomProjectionSketch") -> float:
        """Estimate of the Euclidean distance between two columns."""
        self._check(other)
        return float(np.linalg.norm(self.projection - other.projection))

    def estimate_correlation(self, other: "RandomProjectionSketch") -> float:
        """Correlation estimate assuming both columns were centred before sketching."""
        self._check(other)
        denom = math.sqrt(self.estimate_norm_squared() * other.estimate_norm_squared())
        if denom == 0.0:
            return 0.0
        return float(np.clip(self.estimate_dot(other) / denom, -1.0, 1.0))

    def memory_bytes(self) -> int:
        return int(self.projection.nbytes)


class RandomProjectionSketcher:
    """Builds :class:`RandomProjectionSketch` objects for numeric columns."""

    def __init__(self, n_rows: int, width: int = 128, seed: int = 0,
                 block_size: int = 128):
        if n_rows < 1:
            raise SketchError("n_rows must be >= 1")
        if width < 1:
            raise SketchError("width must be >= 1")
        self.n_rows = int(n_rows)
        self.width = int(width)
        self.seed = int(seed)
        self._block_size = max(1, int(block_size))

    def _projection_block(self, start: int, stop: int) -> np.ndarray:
        rng = np.random.default_rng((self.seed, start, 7))
        return rng.standard_normal((stop - start, self.n_rows)) / math.sqrt(self.width)

    def sketch_matrix(self, matrix: np.ndarray, center: bool = True) -> list[RandomProjectionSketch]:
        """Sketch every column of an (n, d) matrix.

        Missing values are imputed to the column mean; when ``center`` is
        True the columns are mean-centred first so that dot products estimate
        covariances (and normalised dot products estimate correlations).
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise SketchError("matrix must be two-dimensional")
        if matrix.shape[0] != self.n_rows:
            raise SketchError(
                f"matrix has {matrix.shape[0]} rows; sketcher was built for {self.n_rows}"
            )
        prepared = matrix.copy()
        for j in range(prepared.shape[1]):
            column = prepared[:, j]
            missing = np.isnan(column)
            if missing.any():
                valid = column[~missing]
                column[missing] = float(valid.mean()) if valid.size else 0.0
            if center:
                column = column - column.mean()
            prepared[:, j] = column
        projections = np.zeros((self.width, matrix.shape[1]))
        for start in range(0, self.width, self._block_size):
            stop = min(start + self._block_size, self.width)
            block = self._projection_block(start, stop)
            projections[start:stop, :] = block @ prepared
        return [
            RandomProjectionSketch(projections[:, j], seed=self.seed, n_rows=self.n_rows)
            for j in range(matrix.shape[1])
        ]

    def sketch_column(self, values: np.ndarray, center: bool = True) -> RandomProjectionSketch:
        return self.sketch_matrix(
            np.asarray(values, dtype=np.float64).reshape(-1, 1), center=center
        )[0]
