"""Sketching substrate: single-pass, mergeable summaries for fast insight metrics."""

from repro.sketch.base import Sketch
from repro.sketch.countmin import CountMinSketch
from repro.sketch.entropy import EntropySketch
from repro.sketch.frequent import MisraGriesSketch, SpaceSavingSketch, exact_counts
from repro.sketch.hyperplane import (
    DEFAULT_WIDTH,
    HyperplaneSketch,
    HyperplaneSketcher,
    StreamingHyperplaneSketch,
    suggest_width,
)
from repro.sketch.moments import MomentSketch
from repro.sketch.projection import RandomProjectionSketch, RandomProjectionSketcher
from repro.sketch.quantile import QuantileSketch
from repro.sketch.reservoir import ReservoirSample, reservoir_row_indices, sample_pairs
from repro.sketch.store import (
    ColumnSketches,
    PreprocessStats,
    SketchStore,
    SketchStoreConfig,
    merge_column_sketches,
    preprocess,
)

__all__ = [
    "DEFAULT_WIDTH",
    "ColumnSketches",
    "CountMinSketch",
    "EntropySketch",
    "HyperplaneSketch",
    "HyperplaneSketcher",
    "MisraGriesSketch",
    "MomentSketch",
    "PreprocessStats",
    "QuantileSketch",
    "RandomProjectionSketch",
    "RandomProjectionSketcher",
    "ReservoirSample",
    "Sketch",
    "SketchStore",
    "SketchStoreConfig",
    "SpaceSavingSketch",
    "StreamingHyperplaneSketch",
    "exact_counts",
    "merge_column_sketches",
    "preprocess",
    "reservoir_row_indices",
    "sample_pairs",
    "suggest_width",
]
