"""Reservoir sampling.

The paper's preprocessing step computes "sketches, samples, and indexes";
the sample is a uniform reservoir sample of the rows, used to render
scatter plots and histograms at interactive speed without touching the full
table, and to estimate metrics that have no dedicated sketch.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import SketchError
from repro.sketch.base import Sketch


class ReservoirSample(Sketch):
    """Uniform fixed-size sample of a stream (Vitter's algorithm R)."""

    def __init__(self, capacity: int = 1000, seed: int = 0):
        if capacity < 1:
            raise SketchError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._items: list[object] = []
        self._count = 0

    @property
    def count(self) -> int:
        """Number of items seen (not the sample size)."""
        return self._count

    @property
    def sample(self) -> list[object]:
        """The current sample (at most ``capacity`` items)."""
        return list(self._items)

    def update(self, value) -> None:
        self._count += 1
        if len(self._items) < self.capacity:
            self._items.append(value)
            return
        j = int(self._rng.integers(0, self._count))
        if j < self.capacity:
            self._items[j] = value

    def update_many(self, values: Iterable) -> None:
        for value in values:
            self.update(value)

    def merge(self, other: "Sketch") -> None:
        self._require_same_type(other)
        assert isinstance(other, ReservoirSample)
        self._require(
            self.capacity == other.capacity,
            "cannot merge reservoir samples with different capacities",
        )
        # Weighted subsampling of the union: keep each side's items with
        # probability proportional to its stream size.
        total = self._count + other._count
        if total == 0:
            return
        merged: list[object] = []
        pool = [(item, self._count) for item in self._items] + [
            (item, other._count) for item in other._items
        ]
        weights = np.asarray([w for _, w in pool], dtype=np.float64)
        if weights.sum() == 0:
            self._count = total
            return
        probabilities = weights / weights.sum()
        take = min(self.capacity, len(pool))
        chosen = self._rng.choice(len(pool), size=take, replace=False, p=probabilities)
        merged = [pool[i][0] for i in chosen]
        self._items = merged
        self._count = total

    def sample_array(self) -> np.ndarray:
        """The sample as a float array (for numeric streams)."""
        return np.asarray(self._items, dtype=np.float64)

    def memory_bytes(self) -> int:
        return len(self._items) * 16


def reservoir_row_indices(n_rows: int, capacity: int, seed: int = 0) -> np.ndarray:
    """Uniformly sample up to ``capacity`` row indices from ``range(n_rows)``.

    Convenience used by the sketch store to materialise a row sample of a
    table without streaming row objects through a reservoir.
    """
    if capacity < 1:
        raise SketchError("capacity must be >= 1")
    rng = np.random.default_rng(seed)
    if n_rows <= capacity:
        return np.arange(n_rows)
    return np.sort(rng.choice(n_rows, size=capacity, replace=False))


def sample_pairs(
    x: Sequence[float], y: Sequence[float], capacity: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Sample aligned (x, y) pairs — used to draw scatter plots cheaply."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ValueError("x and y must have equal length")
    indices = reservoir_row_indices(x.size, capacity, seed=seed)
    return x[indices], y[indices]
