"""Reservoir sampling.

The paper's preprocessing step computes "sketches, samples, and indexes";
the sample is a uniform reservoir sample of the rows, used to render
scatter plots and histograms at interactive speed without touching the full
table, and to estimate metrics that have no dedicated sketch.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import SketchError
from repro.sketch.base import Sketch


class ReservoirSample(Sketch):
    """Uniform fixed-size sample of a stream (Vitter's algorithm R)."""

    def __init__(self, capacity: int = 1000, seed: int = 0):
        if capacity < 1:
            raise SketchError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._items: list[object] = []
        self._count = 0

    @property
    def count(self) -> int:
        """Number of items seen (not the sample size)."""
        return self._count

    @property
    def sample(self) -> list[object]:
        """The current sample (at most ``capacity`` items)."""
        return list(self._items)

    def update(self, value) -> None:
        self._count += 1
        if len(self._items) < self.capacity:
            self._items.append(value)
            return
        j = int(self._rng.integers(0, self._count))
        if j < self.capacity:
            self._items[j] = value

    def update_many(self, values: Iterable) -> None:
        for value in values:
            self.update(value)

    def merge(self, other: "Sketch") -> None:
        """Merge another reservoir with correct per-stream weighting.

        The standard mergeable-summaries reservoir merge: each output
        slot draws from this side's (shuffled) sample with probability
        ``n_self / (n_self + n_other)`` and from the other side's
        otherwise, falling through when a side's sample is exhausted.
        Every element of the union then lands in the merged sample with
        probability ``capacity / (n_self + n_other)``, i.e. the merged
        reservoir is a uniform sample of the union — a plain pooled
        subsample would over-represent the smaller stream, whose
        reservoir holds a denser sample of its rows.
        """
        self._require_same_type(other)
        assert isinstance(other, ReservoirSample)
        self._require(
            self.capacity == other.capacity,
            "cannot merge reservoir samples with different capacities",
        )
        total = self._count + other._count
        if total == 0:
            return
        mine, theirs = list(self._items), list(other._items)
        order_mine = self._rng.permutation(len(mine))
        order_theirs = self._rng.permutation(len(theirs))
        probability_mine = self._count / total
        take = min(self.capacity, len(mine) + len(theirs))
        merged: list[object] = []
        i, j = 0, 0
        while len(merged) < take:
            from_mine = i < len(mine) and (
                j >= len(theirs) or self._rng.random() < probability_mine
            )
            if from_mine:
                merged.append(mine[order_mine[i]])
                i += 1
            else:
                merged.append(theirs[order_theirs[j]])
                j += 1
        self._items = merged
        self._count = total

    def sample_array(self) -> np.ndarray:
        """The sample as a float array (for numeric streams)."""
        return np.asarray(self._items, dtype=np.float64)

    def memory_bytes(self) -> int:
        return len(self._items) * 16


def reservoir_row_indices(n_rows: int, capacity: int, seed: int = 0) -> np.ndarray:
    """Uniformly sample up to ``capacity`` row indices from ``range(n_rows)``.

    Convenience used by the sketch store to materialise a row sample of a
    table without streaming row objects through a reservoir.
    """
    if capacity < 1:
        raise SketchError("capacity must be >= 1")
    rng = np.random.default_rng(seed)
    if n_rows <= capacity:
        return np.arange(n_rows)
    return np.sort(rng.choice(n_rows, size=capacity, replace=False))


def advance_row_indices(
    indices: np.ndarray,
    n_seen: int,
    n_new: int,
    capacity: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Advance a uniform row-index sample past ``n_new`` appended rows.

    ``indices`` is a uniform sample (without replacement) of
    ``range(n_seen)``; the returned array is a uniform sample of
    ``range(n_seen + n_new)`` obtained by running Vitter's algorithm R
    over the new row indices — each appended row ``i`` enters the sample
    with probability ``capacity / (i + 1)``, which is exactly the
    weighting that keeps the maintained sample uniform over the grown
    dataset.  The input array is not mutated.
    """
    if capacity < 1:
        raise SketchError("capacity must be >= 1")
    sample = list(np.asarray(indices, dtype=np.int64))
    for offset in range(n_new):
        global_index = n_seen + offset
        if len(sample) < capacity:
            sample.append(global_index)
            continue
        j = int(rng.integers(0, global_index + 1))
        if j < capacity:
            sample[j] = global_index
    return np.sort(np.asarray(sample, dtype=np.int64))


def sample_pairs(
    x: Sequence[float], y: Sequence[float], capacity: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Sample aligned (x, y) pairs — used to draw scatter plots cheaply."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ValueError("x and y must have equal length")
    indices = reservoir_row_indices(x.size, capacity, seed=seed)
    return x[indices], y[indices]
