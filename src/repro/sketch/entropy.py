"""Entropy sketch.

One of the sketch types named in section 3.  The entropy of a categorical
column measures how evenly its values are distributed; Foresight uses it as
an auxiliary signal for the Heterogeneous-Frequencies insight (low entropy
relative to the number of distinct values means a few heavy hitters
dominate).

The estimator splits the distribution into a *head* tracked exactly by a
Space-Saving sketch and a *tail* whose total mass is known (total count
minus head count); the tail's contribution to the entropy is bounded by
assuming it is spread uniformly over the remaining distinct values, which a
small distinct-count estimate from the same sketch provides.  This mirrors
the standard "heavy hitters + uniform tail" entropy estimation recipe and is
mergeable because its two components are.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable

from repro.errors import SketchError
from repro.sketch.base import Sketch
from repro.sketch.frequent import SpaceSavingSketch


class EntropySketch(Sketch):
    """Mergeable estimator of the Shannon entropy of a categorical stream."""

    def __init__(self, capacity: int = 256, seed: int = 0):
        if capacity < 2:
            raise SketchError("capacity must be >= 2")
        self.capacity = int(capacity)
        self.seed = int(seed)
        self._head = SpaceSavingSketch(capacity=capacity)
        self._count = 0
        self._distinct_tracker: set[int] = set()
        self._distinct_bits = 12  # track distinct values modulo 2^12 buckets

    @property
    def count(self) -> int:
        return self._count

    def update(self, value) -> None:
        if value is None:
            return
        self._count += 1
        self._head.update(value)
        bucket = hash((self.seed, value)) & ((1 << self._distinct_bits) - 1)
        self._distinct_tracker.add(bucket)

    def update_many(self, values: Iterable) -> None:
        for value in values:
            self.update(value)

    def merge(self, other: "Sketch") -> None:
        self._require_same_type(other)
        assert isinstance(other, EntropySketch)
        self._require(
            self.capacity == other.capacity and self.seed == other.seed,
            "cannot merge entropy sketches with different parameters",
        )
        self._head.merge(other._head)
        self._count += other._count
        self._distinct_tracker |= other._distinct_tracker

    # -- estimates ----------------------------------------------------------------
    def distinct_estimate(self) -> int:
        """Rough distinct-count estimate (linear counting over hash buckets)."""
        buckets = 1 << self._distinct_bits
        occupied = len(self._distinct_tracker)
        if occupied >= buckets:
            return occupied
        if occupied == 0:
            return 0
        return max(occupied, int(round(-buckets * math.log(1.0 - occupied / buckets))))

    def estimate_entropy(self, base: float = 2.0) -> float:
        """Estimate the Shannon entropy of the absorbed stream."""
        if self._count == 0:
            return 0.0
        head_items = self._head.top_k(self.capacity)
        head_total = sum(count for _, count in head_items)
        head_total = min(head_total, self._count)
        entropy = 0.0
        for _, count in head_items:
            p = min(count, self._count) / self._count
            if p > 0:
                entropy -= p * math.log(p, base)
        tail_mass = max(self._count - head_total, 0)
        if tail_mass > 0:
            tail_distinct = max(self.distinct_estimate() - len(head_items), 1)
            tail_p = tail_mass / self._count / tail_distinct
            if tail_p > 0:
                entropy -= tail_distinct * tail_p * math.log(tail_p, base)
        return max(entropy, 0.0)

    def estimate_normalized_entropy(self) -> float:
        """Entropy / log2(distinct estimate), clipped to [0, 1]."""
        distinct = self.distinct_estimate()
        if distinct <= 1:
            return 1.0 if self._count else 0.0
        return float(min(1.0, self.estimate_entropy() / math.log2(distinct)))

    def memory_bytes(self) -> int:
        return self._head.memory_bytes() + len(self._distinct_tracker) * 8
