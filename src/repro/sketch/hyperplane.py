"""Random hyperplane (SimHash) sketch for Pearson correlation.

This is the sketch the paper describes in detail (section 3), following
Charikar's similarity-estimation rounding scheme:

1. Draw ``k`` random vectors r_1..r_k with i.i.d. standard-normal components
   (one component per data row).
2. For a centred column b̃ (column b minus its mean), the sketch is the bit
   vector φ(b) = (sign(b̃·r_1), ..., sign(b̃·r_k)).
3. For two columns x, y with Hamming distance H between their sketches,
   ``cos(π H / k)`` is an unbiased estimator of the angle-based similarity,
   which for centred columns equals the Pearson correlation ρ(x, y).

Cost accounting (matching the paper's claims):
* memory — ``k`` bits per column, ``|B|·k`` bits for the whole numeric block;
* construction — one pass over the data, O(|B|·n·k) arithmetic;
* all-pairs estimation — O(|B|²·k) instead of O(|B|²·n).

The implementation sketches an entire numeric matrix at once with a single
matrix product, keeps the bits packed (``np.packbits``) so the memory claim
holds literally, and estimates all pairwise correlations with XOR + popcount.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SketchError, SketchMergeError
from repro.sketch.base import Sketch

#: Default number of hyperplanes; ``suggest_width`` overrides this per dataset.
DEFAULT_WIDTH = 256


def suggest_width(n_rows: int, multiplier: float = 2.0, minimum: int = 64,
                  maximum: int = 4096) -> int:
    """The paper's guidance: k = O(log² n) keeps accuracy high.

    Returns ``multiplier * log2(n)²`` rounded up to a multiple of 8 (so the
    packed representation wastes no bits), clamped to [minimum, maximum].
    """
    if n_rows < 2:
        return minimum
    k = int(math.ceil(multiplier * math.log2(n_rows) ** 2))
    k = max(minimum, min(maximum, k))
    return int(math.ceil(k / 8) * 8)


@dataclass(frozen=True)
class HyperplaneSketch:
    """The packed bit signature of one column.

    Attributes
    ----------
    bits:
        ``uint8`` array of length ``ceil(width / 8)`` holding the packed sign
        bits.
    width:
        Number of hyperplanes ``k`` (number of valid bits).
    seed:
        Seed used to generate the hyperplanes; two sketches are only
        comparable when their seeds and widths match.
    """

    bits: np.ndarray
    width: int
    seed: int

    def hamming_distance(self, other: "HyperplaneSketch") -> int:
        """Number of positions where the two signatures differ."""
        self._check_compatible(other)
        xor = np.bitwise_xor(self.bits, other.bits)
        return int(np.unpackbits(xor, count=self.width).sum())

    def estimate_correlation(self, other: "HyperplaneSketch") -> float:
        """The paper's estimator cos(π·H/k) of the Pearson correlation."""
        h = self.hamming_distance(other)
        return float(np.cos(np.pi * h / self.width))

    def memory_bytes(self) -> int:
        return int(self.bits.nbytes)

    def _check_compatible(self, other: "HyperplaneSketch") -> None:
        if self.width != other.width or self.seed != other.seed:
            raise SketchMergeError(
                "hyperplane sketches are comparable only when built with the "
                f"same width and seed (got width {self.width} vs {other.width}, "
                f"seed {self.seed} vs {other.seed})"
            )


class HyperplaneSketcher:
    """Builds :class:`HyperplaneSketch` signatures for numeric columns.

    One sketcher instance corresponds to one draw of the ``k`` random
    hyperplanes (for a fixed number of rows ``n``), so every column sketched
    by the same sketcher is directly comparable.
    """

    def __init__(self, n_rows: int, width: int | None = None, seed: int = 0,
                 block_size: int = 64):
        if n_rows < 1:
            raise SketchError("n_rows must be >= 1")
        self.n_rows = int(n_rows)
        self.width = int(width) if width is not None else suggest_width(n_rows)
        if self.width < 1:
            raise SketchError("width must be >= 1")
        self.seed = int(seed)
        self._block_size = max(1, int(block_size))

    # -- hyperplane generation -------------------------------------------------
    def _hyperplane_block(self, start: int, stop: int) -> np.ndarray:
        """Rows ``start:stop`` of the (width, n_rows) hyperplane matrix.

        Hyperplanes are generated lazily in blocks from a deterministic
        per-block seed, so the full (width x n_rows) matrix never needs to be
        materialised for very wide sketches.  float32 halves the generation
        and projection cost; only the signs of the projections are kept, so
        the reduced precision does not affect the estimator.
        """
        rng = np.random.default_rng((self.seed, start))
        return rng.standard_normal((stop - start, self.n_rows), dtype=np.float32)

    # -- sketching ---------------------------------------------------------------
    def sketch_column(self, values: np.ndarray) -> HyperplaneSketch:
        """Sketch a single numeric column (missing values imputed to the mean)."""
        matrix = np.asarray(values, dtype=np.float64).reshape(-1, 1)
        return self.sketch_matrix(matrix)[0]

    def sketch_matrix(self, matrix: np.ndarray) -> list[HyperplaneSketch]:
        """Sketch every column of an (n, d) matrix in one pass.

        Missing values (NaN) are replaced by the column mean, which leaves
        the centred column's direction unchanged in expectation.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise SketchError("matrix must be two-dimensional")
        if matrix.shape[0] != self.n_rows:
            raise SketchError(
                f"matrix has {matrix.shape[0]} rows; sketcher was built for {self.n_rows}"
            )
        centered = self._center(matrix).astype(np.float32)
        d = matrix.shape[1]
        signs = np.empty((self.width, d), dtype=bool)
        for start in range(0, self.width, self._block_size):
            stop = min(start + self._block_size, self.width)
            block = self._hyperplane_block(start, stop)
            projections = block @ centered  # (block, d)
            signs[start:stop, :] = projections >= 0.0
        sketches = []
        for j in range(d):
            bits = np.packbits(signs[:, j])
            sketches.append(HyperplaneSketch(bits=bits, width=self.width, seed=self.seed))
        return sketches

    @staticmethod
    def _center(matrix: np.ndarray) -> np.ndarray:
        centered = matrix.copy()
        for j in range(matrix.shape[1]):
            column = centered[:, j]
            missing = np.isnan(column)
            if missing.any():
                valid = column[~missing]
                fill = float(valid.mean()) if valid.size else 0.0
                column[missing] = fill
            centered[:, j] = column - column.mean()
        return centered

    # -- estimation ---------------------------------------------------------------
    def estimate_correlation(
        self, a: HyperplaneSketch, b: HyperplaneSketch
    ) -> float:
        """Estimate ρ between two sketched columns."""
        return a.estimate_correlation(b)

    def correlation_matrix(self, sketches: list[HyperplaneSketch]) -> np.ndarray:
        """Estimated all-pairs correlation matrix from sketches only.

        Runs in O(d²·k) bit operations — the speedup the paper claims over
        the exact O(d²·n) computation.
        """
        d = len(sketches)
        if d == 0:
            return np.empty((0, 0))
        unpacked = np.vstack(
            [np.unpackbits(s.bits, count=self.width) for s in sketches]
        ).astype(np.int16)
        # Hamming distance via matrix algebra: H = ones·k - agreements.
        agreements = unpacked @ unpacked.T + (1 - unpacked) @ (1 - unpacked).T
        hamming = self.width - agreements
        estimate = np.cos(np.pi * hamming / self.width)
        np.fill_diagonal(estimate, 1.0)
        return np.clip(estimate, -1.0, 1.0)

    def memory_bytes(self, n_columns: int) -> int:
        """Total sketch memory for ``n_columns`` columns (the |B|·k bits claim)."""
        return n_columns * int(math.ceil(self.width / 8))


class StreamingHyperplaneSketch(Sketch):
    """Row-streaming variant of the hyperplane sketch for a single column.

    The batch :class:`HyperplaneSketcher` centres columns exactly; this
    streaming variant instead accepts a pre-estimated column mean (e.g. from
    a first lightweight pass or a prior-day sketch) and accumulates the dot
    products r_i · (x - mean) incrementally, one row at a time.  It exists to
    demonstrate single-pass construction and mergeability over row
    partitions.
    """

    def __init__(self, width: int = DEFAULT_WIDTH, seed: int = 0, mean: float = 0.0,
                 row_offset: int = 0):
        if width < 1:
            raise SketchError("width must be >= 1")
        self.width = int(width)
        self.seed = int(seed)
        self.mean = float(mean)
        # ``row_offset`` is the global index of the first row this partition
        # will see; it keeps the per-row random components independent across
        # partitions so that merged sketches equal a single-partition sketch.
        self._dots = np.zeros(self.width, dtype=np.float64)
        self._row_index = int(row_offset)
        self._rows_seen = 0

    def update(self, value) -> None:
        value = float(value)
        if math.isnan(value):
            value = self.mean
        rng = np.random.default_rng((self.seed, self._row_index))
        components = rng.standard_normal(self.width)
        self._dots += components * (value - self.mean)
        self._row_index += 1
        self._rows_seen += 1

    def update_array(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        for value in values:
            self.update(float(value))

    def merge(self, other: "Sketch") -> None:
        self._require_same_type(other)
        assert isinstance(other, StreamingHyperplaneSketch)
        self._require(
            self.width == other.width and self.seed == other.seed,
            "cannot merge streaming hyperplane sketches with different parameters",
        )
        # Merging requires the partitions to cover disjoint row ranges (set up
        # via ``row_offset``); the dot products simply add.
        self._dots += other._dots
        self._row_index = max(self._row_index, other._row_index)
        self._rows_seen += other._rows_seen

    def signature(self) -> HyperplaneSketch:
        """Finalize into a packed signature comparable with batch sketches
        built from the same seed, width and row ordering."""
        bits = np.packbits(self._dots >= 0.0)
        return HyperplaneSketch(bits=bits, width=self.width, seed=self.seed)

    def memory_bytes(self) -> int:
        return int(self._dots.nbytes)
