"""Count-Min sketch.

An alternative heavy-hitter / point-frequency backend (the paper's sketch
toolbox is extensible; Count-Min is the standard choice when the domain is
too large for counter-based sketches).  Estimated counts overestimate the
truth by at most ``ε·n`` with probability ``1 − δ`` where ``ε = e/width``
and ``δ = exp(-depth)``.
"""

from __future__ import annotations

import hashlib
import math
from typing import Hashable, Iterable

import numpy as np

from repro.errors import SketchError
from repro.sketch.base import Sketch


def _stable_hash(value: Hashable, salt: int) -> int:
    """Deterministic 64-bit hash of (value, salt), stable across processes."""
    payload = f"{salt}:{value!r}".encode("utf-8")
    return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "big")


class CountMinSketch(Sketch):
    """Count-Min sketch with conservative point-query estimates."""

    def __init__(self, width: int = 256, depth: int = 4, seed: int = 0):
        if width < 1 or depth < 1:
            raise SketchError("width and depth must be >= 1")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self._table = np.zeros((self.depth, self.width), dtype=np.int64)
        self._count = 0

    @classmethod
    def from_error_bounds(cls, epsilon: float = 0.01, delta: float = 0.01,
                          seed: int = 0) -> "CountMinSketch":
        """Size the sketch from target error ε and failure probability δ."""
        if not 0 < epsilon < 1 or not 0 < delta < 1:
            raise SketchError("epsilon and delta must be in (0, 1)")
        width = int(math.ceil(math.e / epsilon))
        depth = int(math.ceil(math.log(1.0 / delta)))
        return cls(width=width, depth=depth, seed=seed)

    @property
    def count(self) -> int:
        return self._count

    # -- construction ------------------------------------------------------------
    def _indices(self, value: Hashable) -> list[int]:
        return [
            _stable_hash(value, self.seed * 1000 + row) % self.width
            for row in range(self.depth)
        ]

    def update(self, value, weight: int = 1) -> None:
        if value is None:
            return
        for row, col in enumerate(self._indices(value)):
            self._table[row, col] += weight
        self._count += weight

    def update_many(self, values: Iterable) -> None:
        for value in values:
            self.update(value)

    def merge(self, other: "Sketch") -> None:
        self._require_same_type(other)
        assert isinstance(other, CountMinSketch)
        self._require(
            self.width == other.width
            and self.depth == other.depth
            and self.seed == other.seed,
            "cannot merge Count-Min sketches with different parameters",
        )
        self._table += other._table
        self._count += other._count

    # -- queries -----------------------------------------------------------------
    def estimate(self, value) -> int:
        """Point estimate of the count of ``value`` (an overestimate)."""
        if value is None:
            return 0
        return int(
            min(self._table[row, col] for row, col in enumerate(self._indices(value)))
        )

    def relative_frequency(self, value) -> float:
        if self._count == 0:
            return 0.0
        return self.estimate(value) / self._count

    def error_bound(self) -> float:
        """With high probability, estimates exceed truth by at most this."""
        return math.e * self._count / self.width

    def memory_bytes(self) -> int:
        return int(self._table.nbytes)
