"""Common protocol for all sketches.

Section 3 of the paper stresses two properties of its sketches: they are
built in a **single pass** over the data, and they **compose** — sketches of
data partitions can be merged into a sketch of the union, so preprocessing
parallelises and incremental data can be absorbed.  Every sketch in
:mod:`repro.sketch` therefore implements the :class:`Sketch` interface:

* ``update(value)`` / ``update_array(values)`` — single-pass construction;
* ``merge(other)`` — composition, raising :class:`SketchMergeError` when the
  two sketches were built with incompatible parameters;
* ``memory_bytes()`` — the size accounting used by the complexity benchmark.
"""

from __future__ import annotations

import abc
from typing import Iterable

import numpy as np

from repro.errors import SketchMergeError


class Sketch(abc.ABC):
    """Abstract base class for single-pass, mergeable data summaries."""

    @abc.abstractmethod
    def update(self, value) -> None:
        """Absorb a single value."""

    def update_many(self, values: Iterable) -> None:
        """Absorb an iterable of values (default: loop over :meth:`update`)."""
        for value in values:
            self.update(value)

    def update_array(self, values: np.ndarray) -> None:
        """Absorb a NumPy array (default: loop; subclasses vectorise)."""
        self.update_many(np.asarray(values).tolist())

    @abc.abstractmethod
    def merge(self, other: "Sketch") -> None:
        """Merge another sketch of the same type and parameters into this one."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Approximate memory footprint of the sketch state in bytes."""

    # -- helpers for subclasses ------------------------------------------------
    def _require_same_type(self, other: "Sketch") -> None:
        if type(self) is not type(other):
            raise SketchMergeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )

    @staticmethod
    def _require(condition: bool, message: str) -> None:
        if not condition:
            raise SketchMergeError(message)
