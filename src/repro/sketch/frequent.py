"""Frequent-items sketches: Misra–Gries and Space-Saving.

The paper integrates a "frequent items sketch" (section 3) to serve the
Heterogeneous-Frequencies insight: the metric ``RelFreq(k, c)`` needs the
counts of the k most frequent values of a categorical column, which both of
these classic sketches approximate with bounded error using a fixed number
of counters.

Guarantees (for a sketch with ``capacity`` counters over ``n`` items):

* Misra–Gries: every estimated count ĉ(x) satisfies
  ``c(x) - n/capacity <= ĉ(x) <= c(x)`` (underestimates).
* Space-Saving: ``c(x) <= ĉ(x) <= c(x) + n/capacity`` (overestimates) and
  every item with true frequency above ``n/capacity`` is present.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import numpy as np

from repro.errors import SketchError
from repro.sketch.base import Sketch


class MisraGriesSketch(Sketch):
    """Misra–Gries heavy-hitters sketch (deterministic, underestimating)."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise SketchError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._counters: dict[Hashable, int] = {}
        self._count = 0

    @property
    def count(self) -> int:
        """Total number of items absorbed."""
        return self._count

    def update(self, value) -> None:
        if value is None:
            return
        self._count += 1
        counters = self._counters
        if value in counters:
            counters[value] += 1
        elif len(counters) < self.capacity:
            counters[value] = 1
        else:
            # Decrement every counter; drop the ones that reach zero.
            to_delete = []
            for key in counters:
                counters[key] -= 1
                if counters[key] == 0:
                    to_delete.append(key)
            for key in to_delete:
                del counters[key]

    def update_many(self, values: Iterable) -> None:
        for value in values:
            self.update(value)

    def merge(self, other: "Sketch") -> None:
        self._require_same_type(other)
        assert isinstance(other, MisraGriesSketch)
        self._require(
            self.capacity == other.capacity,
            "cannot merge Misra-Gries sketches with different capacities",
        )
        combined = dict(self._counters)
        for key, count in other._counters.items():
            combined[key] = combined.get(key, 0) + count
        if len(combined) > self.capacity:
            # Standard mergeable-summaries reduction: subtract the
            # (capacity+1)-th largest count from everything and drop
            # non-positive counters.
            threshold = sorted(combined.values(), reverse=True)[self.capacity]
            combined = {
                key: count - threshold
                for key, count in combined.items()
                if count - threshold > 0
            }
        self._counters = combined
        self._count += other._count

    # -- queries -------------------------------------------------------------
    def estimate(self, value) -> int:
        """Estimated count of ``value`` (never above the true count)."""
        return int(self._counters.get(value, 0))

    def error_bound(self) -> float:
        """Maximum undercount: n / capacity."""
        return self._count / self.capacity if self.capacity else float("inf")

    def heavy_hitters(self, threshold: float = 0.01) -> list[tuple[Hashable, int]]:
        """Items whose estimated relative frequency is at least ``threshold``."""
        if self._count == 0:
            return []
        floor = threshold * self._count
        items = [(k, c) for k, c in self._counters.items() if c >= floor]
        items.sort(key=lambda kv: (-kv[1], str(kv[0])))
        return items

    def top_k(self, k: int) -> list[tuple[Hashable, int]]:
        """The k items with the largest estimated counts."""
        items = sorted(self._counters.items(), key=lambda kv: (-kv[1], str(kv[0])))
        return items[:k]

    def relative_frequency_topk(self, k: int) -> float:
        """Approximate ``RelFreq(k, c)`` from the sketch counters."""
        if self._count == 0:
            return 0.0
        return float(sum(count for _, count in self.top_k(k)) / self._count)

    def memory_bytes(self) -> int:
        return len(self._counters) * 64  # key pointer + count, amortised


class SpaceSavingSketch(Sketch):
    """Space-Saving heavy-hitters sketch (overestimating, keeps top items)."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise SketchError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._counts: dict[Hashable, int] = {}
        self._errors: dict[Hashable, int] = {}
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def update(self, value) -> None:
        if value is None:
            return
        self._count += 1
        if value in self._counts:
            self._counts[value] += 1
            return
        if len(self._counts) < self.capacity:
            self._counts[value] = 1
            self._errors[value] = 0
            return
        # Replace the current minimum item.
        victim = min(self._counts, key=lambda key: self._counts[key])
        victim_count = self._counts.pop(victim)
        self._errors.pop(victim, None)
        self._counts[value] = victim_count + 1
        self._errors[value] = victim_count

    def merge(self, other: "Sketch") -> None:
        self._require_same_type(other)
        assert isinstance(other, SpaceSavingSketch)
        self._require(
            self.capacity == other.capacity,
            "cannot merge Space-Saving sketches with different capacities",
        )
        combined_counts = dict(self._counts)
        combined_errors = dict(self._errors)
        for key, count in other._counts.items():
            combined_counts[key] = combined_counts.get(key, 0) + count
            combined_errors[key] = combined_errors.get(key, 0) + other._errors.get(key, 0)
        if len(combined_counts) > self.capacity:
            keep = sorted(combined_counts, key=lambda k: -combined_counts[k])[: self.capacity]
            keep_set = set(keep)
            combined_counts = {k: combined_counts[k] for k in keep_set}
            combined_errors = {k: combined_errors.get(k, 0) for k in keep_set}
        self._counts = combined_counts
        self._errors = combined_errors
        self._count += other._count

    # -- queries ------------------------------------------------------------------
    def estimate(self, value) -> int:
        """Estimated count (never below the true count for tracked items)."""
        return int(self._counts.get(value, 0))

    def guaranteed_count(self, value) -> int:
        """Lower bound on the true count of a tracked item."""
        return int(self._counts.get(value, 0) - self._errors.get(value, 0))

    def top_k(self, k: int) -> list[tuple[Hashable, int]]:
        items = sorted(self._counts.items(), key=lambda kv: (-kv[1], str(kv[0])))
        return items[:k]

    def relative_frequency_topk(self, k: int) -> float:
        if self._count == 0:
            return 0.0
        return float(
            min(1.0, sum(count for _, count in self.top_k(k)) / self._count)
        )

    def heavy_hitters(self, threshold: float = 0.01) -> list[tuple[Hashable, int]]:
        if self._count == 0:
            return []
        floor = threshold * self._count
        items = [(k, c) for k, c in self._counts.items() if c >= floor]
        items.sort(key=lambda kv: (-kv[1], str(kv[0])))
        return items

    def memory_bytes(self) -> int:
        return len(self._counts) * 80


def exact_counts(values: Iterable) -> dict[Hashable, int]:
    """Exact counting helper used by tests and benchmarks as ground truth."""
    counts: dict[Hashable, int] = {}
    for value in values:
        if value is None:
            continue
        counts[value] = counts.get(value, 0) + 1
    return counts
