"""``repro-serve`` / ``python -m repro.server``: serve the bundled datasets.

Builds a :class:`~repro.service.Workspace` with lazily-loaded demo
datasets (the paper's three scenarios), wraps it in
:class:`~repro.server.ReproServer` and blocks until Ctrl-C, which drains
in-flight requests before exiting.  Every :class:`ServerConfig` knob is
available as a flag (``repro-serve --help``) or a ``REPRO_SERVER_*``
environment variable; ``--workers`` additionally sets the engines'
executor width (sharded scoring / parallel preprocessing).

``--replica-of http://host:port`` serves a read replica instead: the
workspace tails the primary's journal endpoint, refuses writes (403)
until promoted (``POST /v1/replica:promote``, or automatically after
``--promote-after`` seconds of an unreachable primary) and stays
byte-identical to a restarted primary at the same ``(version, seq)``.

Examples::

    repro-serve --port 8765
    repro-serve --port 0 --coalesce-window-ms 10 --dataset-quota 4
    REPRO_SERVER_PORT=9000 python -m repro.server --preload
    repro-serve --port 8766 --replica-of http://127.0.0.1:8765
"""

from __future__ import annotations

import argparse

from repro.core.executor import ExecutorConfig
from repro.data.datasets import load_imdb, load_oecd, load_parkinson
from repro.ingest.maintenance import IngestConfig
from repro.obs.config import ObsConfig
from repro.service.replica import ReplicaWorkspace
from repro.service.workspace import Workspace
from repro.server.app import ReproServer
from repro.server.config import ServerConfig

#: The datasets ``repro-serve`` offers out of the box.
BUNDLED_DATASETS = {
    "oecd": load_oecd,
    "imdb": load_imdb,
    "parkinson": load_parkinson,
}


def build_workspace(
    datasets: list[str] | None = None,
    max_workers: int | None = None,
    preload: bool = False,
    data_dir: str | None = None,
    group_commit: bool = False,
    max_group_delay: float = 0.0,
    obs: ObsConfig | None = None,
) -> Workspace:
    """A workspace with the requested bundled datasets registered lazily.

    With ``data_dir`` the workspace opens the durable ingestion journal
    first: datasets persisted by a previous process (snapshots, appended
    rows) are replayed to their exact ``(version, seq)`` state, and
    registering a bundled loader over restored state adopts it instead
    of resetting it.  ``group_commit``/``max_group_delay`` tune the
    journal's commit pipeline (one fsync acknowledging many concurrent
    appends); both are ignored without ``data_dir``.  ``obs`` configures
    the workspace tracer up front, so even startup work (restore,
    preload engine builds) is traced under the requested settings.
    """
    names = datasets or sorted(BUNDLED_DATASETS)
    executor = (
        ExecutorConfig(max_workers=max_workers)
        if max_workers is not None else None
    )
    ingest = IngestConfig(
        group_commit=group_commit, max_group_delay=max_group_delay
    )
    workspace = Workspace(executor=executor, data_dir=data_dir,
                          ingest=ingest, obs=obs)
    restored = set(workspace.datasets())
    if restored:
        print(f"restored from journal: {', '.join(sorted(restored))}")
    for name in names:
        try:
            loader = BUNDLED_DATASETS[name]
        except KeyError:
            raise SystemExit(
                f"unknown dataset {name!r}; bundled datasets: "
                f"{', '.join(sorted(BUNDLED_DATASETS))}"
            ) from None
        workspace.register(name, loader)
    if preload:
        for name in names:
            workspace.engine(name)
    return workspace


def build_replica_workspace(
    config: ServerConfig,
    max_workers: int | None = None,
) -> ReplicaWorkspace:
    """A read replica tailing the primary named by ``config.replica_of``.

    The feed source is constructed lazily-tolerant: an unreachable
    primary at startup is not fatal — the tailer keeps retrying every
    ``replica_poll_interval`` seconds (and, with ``promote_after`` > 0,
    eventually promotes).  No datasets are registered locally; the
    replica's catalogue is whatever the primary's journal carries.
    """
    # Imported here, not at module top: repro.replication imports the
    # client, which nothing else in the serve path needs.
    from repro.replication.feed import HttpFeedSource

    executor = (
        ExecutorConfig(max_workers=max_workers)
        if max_workers is not None else None
    )
    source = HttpFeedSource.from_url(config.replica_of)
    workspace = ReplicaWorkspace(source, executor=executor)
    workspace.start_tailing(
        interval=config.replica_poll_interval,
        promote_after=config.promote_after,
    )
    return workspace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve the Foresight reproduction over HTTP.",
    )
    ServerConfig.add_cli_arguments(parser)
    parser.add_argument(
        "--datasets", nargs="*", metavar="NAME",
        help="bundled datasets to register "
             f"(default: {' '.join(sorted(BUNDLED_DATASETS))})",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="engine executor width (sharded scoring, parallel "
             "preprocessing); default honors REPRO_MAX_WORKERS",
    )
    parser.add_argument(
        "--preload", action="store_true",
        help="build every engine at startup instead of on first request",
    )
    args = parser.parse_args(argv)
    config = ServerConfig.from_args(args)
    if config.replica_of is not None:
        workspace = build_replica_workspace(config, max_workers=args.workers)
        print(f"replicating from {config.replica_of}")
        ReproServer(workspace, config).run()
        return 0
    workspace = build_workspace(
        datasets=args.datasets, max_workers=args.workers,
        preload=args.preload, data_dir=config.data_dir,
        group_commit=config.group_commit,
        max_group_delay=config.max_group_delay,
        obs=config.obs,
    )
    # The bundled loaders double as the PUT /v1/datasets/{name} loader
    # registry, so clients can (re)register them by name over the wire.
    ReproServer(workspace, config, loaders=BUNDLED_DATASETS).run()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
