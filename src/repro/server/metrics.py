"""Operational counters for the HTTP transport.

:class:`ServerMetrics` is the single sink every transport component
reports into — request/response counts per endpoint and status, the
coalescer's batch accounting and per-request latency histograms — and
the producer of the ``/metrics`` JSON document, which merges in the
workspace-side state (result-cache counters, per-dataset engine builds,
lifetime pipeline stats) and the admission controller's gauges.

Histograms use fixed logarithmic bucket bounds (1 ms … 10 s) so
percentile estimates are stable across runs and cheap to compute: p50,
p95 and p99 are read off the cumulative bucket counts, reported as the
upper bound of the bucket containing the percentile — an upper-bound
estimate, exactly like Prometheus ``histogram_quantile``.  The exact
observed maximum is tracked alongside (a bucketed estimate alone
undercounts the tail: every outlier past the last bound would read as
"10 s"), and snapshots carry the bucket ``bounds`` so dashboards need
not hard-code them.

Everything is guarded by one internal lock: the event loop, the handler
worker threads and scraping clients may all touch it concurrently.
"""

from __future__ import annotations

import threading
from typing import Any

#: Upper bounds (seconds) of the latency histogram buckets.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimates."""

    def __init__(self, bounds: tuple[float, ...] = LATENCY_BUCKETS):
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 = overflow bucket
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        index = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if seconds <= bound:
                index = i
                break
        self._counts[index] += 1
        self._count += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds

    def quantile(self, q: float) -> float | None:
        """Upper-bound estimate of the q-quantile (None when empty)."""
        if self._count == 0:
            return None
        target = q * self._count
        cumulative = 0
        for i, bound in enumerate(self._bounds):
            cumulative += self._counts[i]
            if cumulative >= target:
                return bound
        return self._max

    def snapshot(self) -> dict[str, Any]:
        buckets = {
            f"le_{bound:g}": self._counts[i]
            for i, bound in enumerate(self._bounds)
        }
        buckets["le_inf"] = self._counts[-1]
        return {
            "count": self._count,
            "sum_seconds": self._sum,
            "max_seconds": self._max,
            "p50_seconds": self.quantile(0.50),
            "p95_seconds": self.quantile(0.95),
            "p99_seconds": self.quantile(0.99),
            "bounds": list(self._bounds),
            "buckets": buckets,
        }


class ServerMetrics:
    """Counter sink for the transport; renders the ``/metrics`` document."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests_by_endpoint: dict[str, int] = {}
        self._responses_by_status: dict[str, int] = {}
        self._rejected_quota = 0
        self._rejected_overload = 0
        self._coalesced_batches = 0
        self._coalesced_requests = 0
        self._coalesce_max_batch = 0
        self._direct_requests = 0
        self._rider_wait_total = 0.0
        self._latency = LatencyHistogram()
        self._coalesce_wait = LatencyHistogram()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, endpoint: str) -> None:
        with self._lock:
            self._requests_by_endpoint[endpoint] = (
                self._requests_by_endpoint.get(endpoint, 0) + 1
            )

    def record_response(self, status: int, seconds: float | None = None) -> None:
        with self._lock:
            key = str(status)
            self._responses_by_status[key] = (
                self._responses_by_status.get(key, 0) + 1
            )
            if seconds is not None:
                self._latency.observe(seconds)

    def record_rejection(self, status: int) -> None:
        """Count an admission rejection (429 = quota, 503 = overload)."""
        with self._lock:
            if status == 429:
                self._rejected_quota += 1
            else:
                self._rejected_overload += 1

    def record_batch(self, size: int, wait_seconds: float,
                     rider_waits: list[float] | None = None) -> None:
        """Count one coalesced dispatch of ``size`` requests.

        ``rider_waits`` (one entry per batched request, when the
        coalescer computes them) accumulates the total time requests
        spent parked in coalescing windows — the aggregate the per-rider
        trace spans must sum to.
        """
        with self._lock:
            self._coalesced_batches += 1
            self._coalesced_requests += size
            if size > self._coalesce_max_batch:
                self._coalesce_max_batch = size
            self._coalesce_wait.observe(wait_seconds)
            if rider_waits:
                self._rider_wait_total += sum(rider_waits)

    def record_direct(self) -> None:
        """Count one request dispatched without coalescing."""
        with self._lock:
            self._direct_requests += 1

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            requests_total = sum(self._requests_by_endpoint.values())
            return {
                "requests": {
                    "total": requests_total,
                    "by_endpoint": dict(self._requests_by_endpoint),
                },
                "responses": {
                    "by_status": dict(self._responses_by_status),
                    "rejected_quota": self._rejected_quota,
                    "rejected_overload": self._rejected_overload,
                },
                "coalesce": {
                    "batches": self._coalesced_batches,
                    "coalesced_requests": self._coalesced_requests,
                    "max_batch_size": self._coalesce_max_batch,
                    "direct_requests": self._direct_requests,
                    "rider_wait_seconds_total": self._rider_wait_total,
                    "wait": self._coalesce_wait.snapshot(),
                },
                "latency": self._latency.snapshot(),
            }


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
#: Content type advertised for the text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: object) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _sample(name: str, value: object, labels: dict[str, object] | None = None) -> str:
    if value is None:
        value = "NaN"
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(val)}"' for key, val in labels.items()
        )
        return f"{name}{{{rendered}}} {value}"
    return f"{name} {value}"


def _histogram_lines(name: str, snapshot: dict[str, Any],
                     labels: dict[str, object] | None = None,
                     declare: bool = True) -> list[str]:
    """Render a :meth:`LatencyHistogram.snapshot` as a Prometheus histogram.

    The snapshot's buckets hold per-bucket counts; Prometheus buckets are
    cumulative, so they are summed on the way out (with the mandatory
    ``+Inf`` bucket equal to the total count).  ``labels`` ride on every
    sample (used for the per-span-name duration histograms, which share
    one metric family); pass ``declare=False`` after the first family
    member so the ``# TYPE`` line appears exactly once.
    """
    lines = [] if not declare else [f"# TYPE {name} histogram"]
    cumulative = 0
    for key, count in snapshot.get("buckets", {}).items():
        if key == "le_inf":
            continue
        cumulative += count
        bound = key[len("le_"):]
        bucket_labels = dict(labels or {})
        bucket_labels["le"] = bound
        lines.append(_sample(f"{name}_bucket", cumulative, bucket_labels))
    inf_labels = dict(labels or {})
    inf_labels["le"] = "+Inf"
    lines.append(_sample(f"{name}_bucket", snapshot.get("count", 0),
                         inf_labels))
    lines.append(_sample(f"{name}_sum", snapshot.get("sum_seconds", 0.0),
                         labels))
    lines.append(_sample(f"{name}_count", snapshot.get("count", 0), labels))
    return lines


def render_prometheus(document: dict[str, Any]) -> str:
    """Render the ``/metrics`` JSON document in Prometheus text format.

    The JSON document stays the canonical surface (and the default
    content type); this renderer exists so a stock Prometheus scraper
    can consume the same counters via ``Accept: text/plain`` content
    negotiation.  Metric names are stable: ``repro_*`` counters/gauges,
    with per-dataset / per-endpoint breakdowns as labels.
    """
    lines: list[str] = []

    def counter(name: str, value: object,
                labels: dict[str, object] | None = None,
                declare: bool = True) -> None:
        if declare:
            lines.append(f"# TYPE {name} counter")
        lines.append(_sample(name, value, labels))

    def gauge(name: str, value: object,
              labels: dict[str, object] | None = None,
              declare: bool = True) -> None:
        if declare:
            lines.append(f"# TYPE {name} gauge")
        lines.append(_sample(name, value, labels))

    server = document.get("server", {})
    requests = server.get("requests", {})
    counter("repro_requests_total", requests.get("total", 0))
    by_endpoint = requests.get("by_endpoint", {})
    if by_endpoint:
        lines.append("# TYPE repro_endpoint_requests_total counter")
        for endpoint, count in sorted(by_endpoint.items()):
            counter("repro_endpoint_requests_total", count,
                    {"endpoint": endpoint}, declare=False)
    responses = server.get("responses", {})
    by_status = responses.get("by_status", {})
    if by_status:
        lines.append("# TYPE repro_responses_total counter")
        for status, count in sorted(by_status.items()):
            counter("repro_responses_total", count, {"status": status},
                    declare=False)
    lines.append("# TYPE repro_rejected_total counter")
    counter("repro_rejected_total", responses.get("rejected_quota", 0),
            {"reason": "quota"}, declare=False)
    counter("repro_rejected_total", responses.get("rejected_overload", 0),
            {"reason": "overload"}, declare=False)
    coalesce = server.get("coalesce", {})
    counter("repro_coalesce_batches_total", coalesce.get("batches", 0))
    counter("repro_coalesce_requests_total",
            coalesce.get("coalesced_requests", 0))
    counter("repro_direct_requests_total", coalesce.get("direct_requests", 0))
    counter("repro_coalesce_rider_wait_seconds_total",
            coalesce.get("rider_wait_seconds_total", 0.0))
    gauge("repro_coalesce_max_batch_size", coalesce.get("max_batch_size", 0))
    if "wait" in coalesce:
        lines.extend(_histogram_lines("repro_coalesce_wait_seconds",
                                      coalesce["wait"]))
    if "latency" in server:
        lines.extend(_histogram_lines("repro_request_latency_seconds",
                                      server["latency"]))

    admission = document.get("admission", {})
    for key in ("in_flight", "queued", "parked", "peak_in_flight",
                "peak_queued", "peak_parked"):
        if key in admission:
            gauge(f"repro_admission_{key}", admission[key])
    for key in ("admitted_total", "queued_total", "parked_total",
                "batches_dispatched_total", "rejected_quota_total",
                "rejected_overload_total"):
        if key in admission:
            counter(f"repro_admission_{key}", admission[key])
    for section, metric in (
        ("in_flight_by_dataset", "repro_admission_in_flight_by_dataset"),
        ("in_flight_by_class", "repro_admission_in_flight_by_class"),
        ("in_flight_writes_by_dataset",
         "repro_admission_in_flight_writes_by_dataset"),
    ):
        breakdown = admission.get(section, {})
        if breakdown:
            lines.append(f"# TYPE {metric} gauge")
            label = "class" if section == "in_flight_by_class" else "dataset"
            for name, count in sorted(breakdown.items()):
                gauge(metric, count, {label: name}, declare=False)

    workspace = document.get("workspace", {})
    cache = workspace.get("cache", {})
    for key in ("hits", "misses", "evictions", "invalidations"):
        if key in cache:
            counter(f"repro_cache_{key}_total", cache[key])
    for key in ("size", "capacity"):
        if key in cache:
            gauge(f"repro_cache_{key}", cache[key])
    pipeline = workspace.get("pipeline", {})
    for key in sorted(pipeline):
        value = pipeline[key]
        if isinstance(value, (int, float)):
            counter(f"repro_pipeline_{key}_total", value)
    if "engine_builds" in workspace:
        counter("repro_engine_builds_total", workspace["engine_builds"])
    datasets = workspace.get("datasets", [])
    if datasets:
        lines.append("# TYPE repro_dataset_version gauge")
        for entry in datasets:
            gauge("repro_dataset_version", entry.get("version", 0),
                  {"dataset": entry.get("name", "")}, declare=False)
        lines.append("# TYPE repro_dataset_seq gauge")
        for entry in datasets:
            gauge("repro_dataset_seq", entry.get("seq", 0),
                  {"dataset": entry.get("name", "")}, declare=False)

    ingest = workspace.get("ingest", {})
    totals = ingest.get("totals", {})
    for key in ("appends", "rows_appended", "delta_merges", "rebuilds",
                "bg_rebuilds"):
        if key in totals:
            counter(f"repro_ingest_{key}_total", totals[key])
    if "durable" in ingest:
        gauge("repro_ingest_durable", 1 if ingest["durable"] else 0)
    group = ingest.get("group_commit", {})
    if group:
        gauge("repro_ingest_group_commit_enabled",
              1 if group.get("enabled") else 0)
        for key in ("commits", "records", "fsyncs_saved"):
            if key in group:
                counter(f"repro_ingest_group_{key}_total", group[key])
        if "max_group_size" in group:
            gauge("repro_ingest_group_max_size", group["max_group_size"])
    per_dataset = ingest.get("datasets", {})
    if per_dataset:
        for key in ("rows_appended", "delta_merges", "rebuilds",
                    "bg_rebuilds"):
            metric = f"repro_dataset_ingest_{key}_total"
            lines.append(f"# TYPE {metric} counter")
            for name, counters in sorted(per_dataset.items()):
                counter(metric, counters.get(key, 0), {"dataset": name},
                        declare=False)
        lines.append("# TYPE repro_dataset_rebuild_running gauge")
        for name, counters in sorted(per_dataset.items()):
            gauge("repro_dataset_rebuild_running",
                  1 if counters.get("rebuild_running") else 0,
                  {"dataset": name}, declare=False)
    replica = ingest.get("replica", {})
    if replica:
        gauge("repro_replica_promoted", 1 if replica.get("promoted") else 0)
        gauge("repro_replica_tailing", 1 if replica.get("tailing") else 0)
        replica_datasets = replica.get("datasets", {})
        if replica_datasets:
            lines.append("# TYPE repro_replica_lag_seq gauge")
            for name, snap in sorted(replica_datasets.items()):
                gauge("repro_replica_lag_seq", snap.get("lag_seq", 0),
                      {"dataset": name}, declare=False)
            lines.append("# TYPE repro_replica_applied_records_total counter")
            for name, snap in sorted(replica_datasets.items()):
                counter("repro_replica_applied_records_total",
                        snap.get("applied_records", 0),
                        {"dataset": name}, declare=False)
            lines.append("# TYPE repro_replica_resets_total counter")
            for name, snap in sorted(replica_datasets.items()):
                counter("repro_replica_resets_total", snap.get("resets", 0),
                        {"dataset": name}, declare=False)

    obs = document.get("obs", {})
    tracing = obs.get("tracing", {})
    if tracing:
        gauge("repro_tracing_enabled", 1 if tracing.get("enabled") else 0)
        gauge("repro_tracing_traces_held", tracing.get("traces_held", 0))
        for key in ("traces_recorded", "spans_recorded"):
            if key in tracing:
                counter(f"repro_tracing_{key}_total", tracing[key])
    spans = obs.get("spans", {})
    if spans:
        # One histogram family, labelled by span name — the per-stage
        # duration surface (pipeline.score, journal.commit_wait, ...).
        declare = True
        for name, snap in sorted(spans.items()):
            lines.extend(_histogram_lines("repro_span_duration_seconds",
                                          snap, {"span": name},
                                          declare=declare))
            declare = False
    if "ring_evictions" in tracing:
        counter("repro_tracing_ring_evictions_total",
                tracing["ring_evictions"])
    if "ring_bytes" in tracing:
        gauge("repro_tracing_ring_bytes", tracing["ring_bytes"])

    resources = document.get("resources", {})
    memory = resources.get("memory", {})
    components = memory.get("components", {})
    if components:
        lines.append("# TYPE repro_memory_bytes gauge")
        for component, n_bytes in sorted(components.items()):
            gauge("repro_memory_bytes", n_bytes, {"component": component},
                  declare=False)
        gauge("repro_memory_total_bytes", memory.get("total_bytes", 0))
    per_dataset_mem = memory.get("datasets", {})
    if per_dataset_mem:
        lines.append("# TYPE repro_dataset_memory_bytes gauge")
        for name, parts in sorted(per_dataset_mem.items()):
            for component, n_bytes in sorted(parts.items()):
                gauge("repro_dataset_memory_bytes", n_bytes,
                      {"dataset": name, "component": component},
                      declare=False)
    costs = resources.get("costs", {})
    if costs:
        counter("repro_cost_requests_total", costs.get("requests_total", 0))
        totals = costs.get("totals", {})
        if totals:
            lines.append("# TYPE repro_request_cost_total counter")
            for key, value in sorted(totals.items()):
                counter("repro_request_cost_total", value, {"counter": key},
                        declare=False)
        if "cpu_seconds_histogram" in costs:
            lines.extend(_histogram_lines("repro_request_cpu_seconds",
                                          costs["cpu_seconds_histogram"]))
        classes = costs.get("classes", {})
        if classes:
            # Lifetime per-class request counter plus rolling-window
            # CPU gauge (the window sum moves down as entries age out,
            # so it cannot be a Prometheus counter).
            lines.append("# TYPE repro_class_requests_total counter")
            for name, window in sorted(classes.items()):
                counter("repro_class_requests_total",
                        window.get("requests_total", 0),
                        {"class": name}, declare=False)
            lines.append("# TYPE repro_class_window_cpu_seconds gauge")
            for name, window in sorted(classes.items()):
                gauge("repro_class_window_cpu_seconds",
                      window.get("cpu_seconds", 0.0),
                      {"class": name}, declare=False)
        dataset_costs = costs.get("datasets", {})
        if dataset_costs:
            lines.append("# TYPE repro_dataset_requests_total counter")
            for name, window in sorted(dataset_costs.items()):
                counter("repro_dataset_requests_total",
                        window.get("requests_total", 0),
                        {"dataset": name}, declare=False)
            lines.append("# TYPE repro_dataset_window_cpu_seconds gauge")
            for name, window in sorted(dataset_costs.items()):
                gauge("repro_dataset_window_cpu_seconds",
                      window.get("cpu_seconds", 0.0),
                      {"dataset": name}, declare=False)
    watchdogs = resources.get("watchdogs", {})
    loop_lag = watchdogs.get("event_loop_lag", {})
    if loop_lag:
        gauge("repro_event_loop_lag_seconds",
              loop_lag.get("last_lag_seconds", 0.0))
        gauge("repro_event_loop_lag_max_seconds",
              loop_lag.get("max_lag_seconds", 0.0))
    if watchdogs:
        lines.append("# TYPE repro_watchdog_trips_total counter")
        for name, snap in sorted(watchdogs.items()):
            counter("repro_watchdog_trips_total", snap.get("trips", 0),
                    {"watchdog": name}, declare=False)

    return "\n".join(lines) + "\n"


__all__ = [
    "LATENCY_BUCKETS",
    "LatencyHistogram",
    "PROMETHEUS_CONTENT_TYPE",
    "ServerMetrics",
    "render_prometheus",
]
