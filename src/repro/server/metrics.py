"""Operational counters for the HTTP transport.

:class:`ServerMetrics` is the single sink every transport component
reports into — request/response counts per endpoint and status, the
coalescer's batch accounting and per-request latency histograms — and
the producer of the ``/metrics`` JSON document, which merges in the
workspace-side state (result-cache counters, per-dataset engine builds,
lifetime pipeline stats) and the admission controller's gauges.

Histograms use fixed logarithmic bucket bounds (1 ms … 10 s) so
percentile estimates are stable across runs and cheap to compute: p50
and p95 are read off the cumulative bucket counts, reported as the upper
bound of the bucket containing the percentile — an upper-bound estimate,
exactly like Prometheus ``histogram_quantile``.

Everything is guarded by one internal lock: the event loop, the handler
worker threads and scraping clients may all touch it concurrently.
"""

from __future__ import annotations

import threading
from typing import Any

#: Upper bounds (seconds) of the latency histogram buckets.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimates."""

    def __init__(self, bounds: tuple[float, ...] = LATENCY_BUCKETS):
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 = overflow bucket
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        index = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if seconds <= bound:
                index = i
                break
        self._counts[index] += 1
        self._count += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds

    def quantile(self, q: float) -> float | None:
        """Upper-bound estimate of the q-quantile (None when empty)."""
        if self._count == 0:
            return None
        target = q * self._count
        cumulative = 0
        for i, bound in enumerate(self._bounds):
            cumulative += self._counts[i]
            if cumulative >= target:
                return bound
        return self._max

    def snapshot(self) -> dict[str, Any]:
        buckets = {
            f"le_{bound:g}": self._counts[i]
            for i, bound in enumerate(self._bounds)
        }
        buckets["le_inf"] = self._counts[-1]
        return {
            "count": self._count,
            "sum_seconds": self._sum,
            "max_seconds": self._max,
            "p50_seconds": self.quantile(0.50),
            "p95_seconds": self.quantile(0.95),
            "buckets": buckets,
        }


class ServerMetrics:
    """Counter sink for the transport; renders the ``/metrics`` document."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests_by_endpoint: dict[str, int] = {}
        self._responses_by_status: dict[str, int] = {}
        self._rejected_quota = 0
        self._rejected_overload = 0
        self._coalesced_batches = 0
        self._coalesced_requests = 0
        self._coalesce_max_batch = 0
        self._direct_requests = 0
        self._latency = LatencyHistogram()
        self._coalesce_wait = LatencyHistogram()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_request(self, endpoint: str) -> None:
        with self._lock:
            self._requests_by_endpoint[endpoint] = (
                self._requests_by_endpoint.get(endpoint, 0) + 1
            )

    def record_response(self, status: int, seconds: float | None = None) -> None:
        with self._lock:
            key = str(status)
            self._responses_by_status[key] = (
                self._responses_by_status.get(key, 0) + 1
            )
            if seconds is not None:
                self._latency.observe(seconds)

    def record_rejection(self, status: int) -> None:
        """Count an admission rejection (429 = quota, 503 = overload)."""
        with self._lock:
            if status == 429:
                self._rejected_quota += 1
            else:
                self._rejected_overload += 1

    def record_batch(self, size: int, wait_seconds: float) -> None:
        """Count one coalesced dispatch of ``size`` requests."""
        with self._lock:
            self._coalesced_batches += 1
            self._coalesced_requests += size
            if size > self._coalesce_max_batch:
                self._coalesce_max_batch = size
            self._coalesce_wait.observe(wait_seconds)

    def record_direct(self) -> None:
        """Count one request dispatched without coalescing."""
        with self._lock:
            self._direct_requests += 1

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            requests_total = sum(self._requests_by_endpoint.values())
            return {
                "requests": {
                    "total": requests_total,
                    "by_endpoint": dict(self._requests_by_endpoint),
                },
                "responses": {
                    "by_status": dict(self._responses_by_status),
                    "rejected_quota": self._rejected_quota,
                    "rejected_overload": self._rejected_overload,
                },
                "coalesce": {
                    "batches": self._coalesced_batches,
                    "coalesced_requests": self._coalesced_requests,
                    "max_batch_size": self._coalesce_max_batch,
                    "direct_requests": self._direct_requests,
                    "wait": self._coalesce_wait.snapshot(),
                },
                "latency": self._latency.snapshot(),
            }


__all__ = ["LATENCY_BUCKETS", "LatencyHistogram", "ServerMetrics"]
