"""Server configuration: one frozen dataclass, filled from env or CLI.

Every knob of the HTTP transport lives on :class:`ServerConfig` —
bind address, the coalescing window, admission-control limits, drain
behavior — with three construction paths that tests, the ``repro-serve``
CLI and embedding code share:

* :meth:`ServerConfig` directly (tests, embedding);
* :meth:`ServerConfig.from_env` — every field reads a
  ``REPRO_SERVER_*`` environment variable, falling back to the default;
* :meth:`ServerConfig.add_cli_arguments` + :meth:`ServerConfig.from_args`
  — argparse flags for ``repro-serve``, defaulting to the environment so
  ``REPRO_SERVER_PORT=9000 repro-serve`` and ``repro-serve --port 9000``
  mean the same thing.

Durations are seconds everywhere internally; the CLI exposes the
coalescing window in milliseconds (``--coalesce-window-ms``) because
that is the natural magnitude for a micro-batching window.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass, fields
from typing import Any, Mapping

from repro.errors import ServerError
from repro.obs.config import ObsConfig

#: Prefix shared by every configuration environment variable.
ENV_PREFIX = "REPRO_SERVER_"


def _env_name(field_name: str) -> str:
    return ENV_PREFIX + field_name.upper()


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs for the asyncio HTTP transport.

    Parameters
    ----------
    host / port:
        Bind address.  Port 0 asks the OS for a free ephemeral port
        (the bound address is reported by ``ReproServer.address``).
    coalesce_window:
        Seconds that the first single-request arrival waits for
        companions before the batch dispatches as one
        ``Workspace.handle_many`` call.  0 disables coalescing (every
        request dispatches directly).
    coalesce_max_batch:
        Flush the pending batch immediately once it reaches this size,
        without waiting out the window.
    max_in_flight:
        Requests executing concurrently; arrivals beyond it queue.
    queue_limit:
        Bounded admission queue.  An arrival finding the queue full is
        rejected with 503 and ``Retry-After``.
    dataset_quota:
        Max concurrent in-flight requests per dataset (None = unlimited).
        Exceeding it rejects with 429.
    class_quota:
        Max concurrent in-flight requests touching one insight class
        (None = unlimited).  Exceeding it rejects with 429.
    write_quota:
        Max concurrent in-flight *write* requests (appends,
        registrations, reloads) per dataset (None = unlimited).
        Exceeding it rejects with 429.
    read_timeout:
        Seconds a connection may take to deliver a complete request
        before the server answers 408 and closes it (a stalled client
        must not pin a connection slot).  Also bounds how long an idle
        keep-alive connection is held open.  0 disables the timeout.
    retry_after:
        Seconds advertised in the ``Retry-After`` header of 429/503
        responses.
    max_body_bytes:
        Request bodies above this are refused with 413.
    drain_timeout:
        Seconds graceful shutdown waits for in-flight requests before
        closing connections anyway.
    handler_workers:
        Threads executing blocking ``Workspace`` calls on behalf of the
        event loop.
    data_dir:
        Directory for the durable ingestion journal
        (``REPRO_SERVER_DATA_DIR`` / ``--data-dir``).  When set, every
        accepted append is journalled to disk before it is acknowledged
        and a restarted server replays the journal to the exact
        ``(version, seq)`` state; ``POST /v1/datasets/{name}/flush``
        forces a sync and shutdown drains flush the journal.  ``None``
        (the default) keeps ingestion in-memory only.
    group_commit:
        Enable journal group commit (``REPRO_SERVER_GROUP_COMMIT`` /
        ``--group-commit``): concurrent appends to the same dataset
        share one fsync instead of paying one each.  Durability
        semantics are unchanged — no append is acknowledged before its
        bytes are stable.  Ignored without ``data_dir``.
    max_group_delay:
        Seconds a group-commit leader may linger for more appends to
        join its fsync (0 = sync immediately; batching is then purely
        opportunistic, from appends that arrive while an fsync is
        already in progress).
    obs:
        Tracing overrides (``REPRO_OBS_*`` / ``--obs-*``) applied to the
        served workspace's tracer at startup.  ``None`` — the default,
        and what env/CLI construction produces when nothing deviates
        from the :class:`~repro.obs.config.ObsConfig` defaults — leaves
        the workspace's own tracer configuration untouched (tracing is
        on by default there too).
    replica_of:
        ``http://host:port`` of a primary to replicate from
        (``REPRO_SERVER_REPLICA_OF`` / ``--replica-of``).  When set the
        server fronts a read-only
        :class:`~repro.service.replica.ReplicaWorkspace` that tails the
        primary's journal endpoint; writes answer 403 until the replica
        is promoted.  Mutually exclusive with ``data_dir`` — a replica's
        state *is* the primary's journal.
    replica_poll_interval:
        Seconds between the replica tailer's polls of the primary
        (only meaningful with ``replica_of``).
    promote_after:
        Auto-promote the replica to writable after the primary has been
        unreachable for this many seconds (0 — the default — never
        auto-promotes; use ``POST /v1/replica:promote``).
    """

    host: str = "127.0.0.1"
    port: int = 8765
    coalesce_window: float = 0.005
    coalesce_max_batch: int = 16
    max_in_flight: int = 8
    queue_limit: int = 32
    dataset_quota: int | None = None
    class_quota: int | None = None
    write_quota: int | None = None
    read_timeout: float = 30.0
    retry_after: float = 1.0
    max_body_bytes: int = 1_048_576
    drain_timeout: float = 5.0
    handler_workers: int = 8
    data_dir: str | None = None
    group_commit: bool = False
    max_group_delay: float = 0.0
    obs: ObsConfig | None = None
    replica_of: str | None = None
    replica_poll_interval: float = 0.25
    promote_after: float = 0.0

    def __post_init__(self) -> None:
        if isinstance(self.obs, dict):
            # as_dict() round-trip: the /healthz echo nests obs as a
            # plain dict, so accept one back.
            object.__setattr__(self, "obs", ObsConfig(**self.obs))
        if self.port < 0 or self.port > 65535:
            raise ServerError(f"port must be in [0, 65535], got {self.port}")
        if self.coalesce_window < 0:
            raise ServerError(
                f"coalesce_window must be >= 0, got {self.coalesce_window}"
            )
        if self.coalesce_max_batch < 1:
            raise ServerError(
                f"coalesce_max_batch must be >= 1, got {self.coalesce_max_batch}"
            )
        if self.max_in_flight < 1:
            raise ServerError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        if self.queue_limit < 0:
            raise ServerError(f"queue_limit must be >= 0, got {self.queue_limit}")
        for name in ("dataset_quota", "class_quota", "write_quota"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ServerError(f"{name} must be >= 1 or None, got {value}")
        if self.read_timeout < 0:
            raise ServerError(
                f"read_timeout must be >= 0, got {self.read_timeout}"
            )
        if self.retry_after < 0:
            raise ServerError(f"retry_after must be >= 0, got {self.retry_after}")
        if self.max_body_bytes < 1:
            raise ServerError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        if self.drain_timeout < 0:
            raise ServerError(
                f"drain_timeout must be >= 0, got {self.drain_timeout}"
            )
        if self.handler_workers < 1:
            raise ServerError(
                f"handler_workers must be >= 1, got {self.handler_workers}"
            )
        if self.max_group_delay < 0:
            raise ServerError(
                f"max_group_delay must be >= 0, got {self.max_group_delay}"
            )
        if self.replica_poll_interval <= 0:
            raise ServerError(
                "replica_poll_interval must be > 0, got "
                f"{self.replica_poll_interval}"
            )
        if self.promote_after < 0:
            raise ServerError(
                f"promote_after must be >= 0, got {self.promote_after}"
            )
        if self.replica_of is not None and self.data_dir is not None:
            raise ServerError(
                "replica_of and data_dir are mutually exclusive: a "
                "replica's state is the primary's journal, not its own"
            )

    # ------------------------------------------------------------------
    # Construction from the environment / CLI
    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "ServerConfig":
        """Build a config from ``REPRO_SERVER_*`` environment variables.

        Unset variables keep the field default; malformed values raise
        :class:`~repro.errors.ServerError` naming the variable, so a
        typo fails fast at startup rather than silently falling back.
        """
        env = os.environ if env is None else env
        values: dict[str, Any] = {}
        for spec in fields(cls):
            if spec.name == "obs":
                continue  # its own REPRO_OBS_* namespace, handled below
            raw = env.get(_env_name(spec.name))
            if raw is None or raw == "":
                continue
            values[spec.name] = _parse_field(spec.name, raw)
        try:
            obs = ObsConfig.from_env(env)
        except ValueError as exc:
            raise ServerError(str(exc)) from None
        if obs != ObsConfig():
            values["obs"] = obs
        return cls(**values)

    @staticmethod
    def add_cli_arguments(parser: argparse.ArgumentParser) -> None:
        """Attach the server flags to an argparse parser.

        Flag defaults come from :meth:`from_env`, so environment
        configuration applies unless a flag overrides it.
        """
        base = ServerConfig.from_env()
        parser.add_argument("--host", default=base.host,
                            help=f"bind address (default {base.host})")
        parser.add_argument("--port", type=int, default=base.port,
                            help=f"bind port, 0 = ephemeral (default {base.port})")
        parser.add_argument(
            "--coalesce-window-ms", type=float,
            default=base.coalesce_window * 1000.0,
            help="micro-batching window in milliseconds, 0 disables "
                 f"coalescing (default {base.coalesce_window * 1000.0:g})")
        parser.add_argument(
            "--coalesce-max-batch", type=int, default=base.coalesce_max_batch,
            help=f"flush a batch at this size (default {base.coalesce_max_batch})")
        parser.add_argument(
            "--max-in-flight", type=int, default=base.max_in_flight,
            help=f"concurrent request limit (default {base.max_in_flight})")
        parser.add_argument(
            "--queue-limit", type=int, default=base.queue_limit,
            help=f"bounded admission queue length (default {base.queue_limit})")
        parser.add_argument(
            "--dataset-quota", type=int, default=base.dataset_quota,
            help="max concurrent requests per dataset (default unlimited)")
        parser.add_argument(
            "--class-quota", type=int, default=base.class_quota,
            help="max concurrent requests per insight class "
                 "(default unlimited)")
        parser.add_argument(
            "--write-quota", type=int, default=base.write_quota,
            help="max concurrent write requests (appends/registrations/"
                 "reloads) per dataset (default unlimited)")
        parser.add_argument(
            "--read-timeout", type=float, default=base.read_timeout,
            help="seconds to receive a complete request before 408/close, "
                 f"0 disables (default {base.read_timeout:g})")
        parser.add_argument(
            "--retry-after", type=float, default=base.retry_after,
            help="Retry-After seconds on 429/503 "
                 f"(default {base.retry_after:g})")
        parser.add_argument(
            "--max-body-bytes", type=int, default=base.max_body_bytes,
            help=f"request body size limit (default {base.max_body_bytes})")
        parser.add_argument(
            "--drain-timeout", type=float, default=base.drain_timeout,
            help="seconds to wait for in-flight requests on shutdown "
                 f"(default {base.drain_timeout:g})")
        parser.add_argument(
            "--handler-workers", type=int, default=base.handler_workers,
            help="threads executing blocking workspace calls "
                 f"(default {base.handler_workers})")
        parser.add_argument(
            "--data-dir", default=base.data_dir, metavar="DIR",
            help="directory for the durable ingestion journal; appends "
                 "are journalled before acknowledgement and a restart "
                 "replays them (default: in-memory only)")
        parser.add_argument(
            "--group-commit", action="store_true", default=base.group_commit,
            help="share one journal fsync across concurrent appends to "
                 "the same dataset (durability unchanged; needs --data-dir)")
        parser.add_argument(
            "--max-group-delay", type=float, default=base.max_group_delay,
            help="seconds a group-commit leader lingers for more appends "
                 f"to join its fsync, 0 = none (default {base.max_group_delay:g})")
        parser.add_argument(
            "--replica-of", default=base.replica_of, metavar="URL",
            help="serve as a read replica tailing this primary "
                 "(http://host:port); writes answer 403 until promoted")
        parser.add_argument(
            "--replica-poll-interval", type=float,
            default=base.replica_poll_interval,
            help="seconds between replica polls of the primary "
                 f"(default {base.replica_poll_interval:g})")
        parser.add_argument(
            "--promote-after", type=float, default=base.promote_after,
            help="auto-promote the replica after the primary has been "
                 "unreachable this many seconds, 0 = never "
                 f"(default {base.promote_after:g})")
        ObsConfig.add_cli_arguments(parser, base=base.obs)

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "ServerConfig":
        """Build a config from a parsed :meth:`add_cli_arguments` namespace."""
        obs = ObsConfig.from_args(args)
        return cls(
            host=args.host,
            port=args.port,
            coalesce_window=args.coalesce_window_ms / 1000.0,
            coalesce_max_batch=args.coalesce_max_batch,
            max_in_flight=args.max_in_flight,
            queue_limit=args.queue_limit,
            dataset_quota=args.dataset_quota,
            class_quota=args.class_quota,
            write_quota=args.write_quota,
            read_timeout=args.read_timeout,
            retry_after=args.retry_after,
            max_body_bytes=args.max_body_bytes,
            drain_timeout=args.drain_timeout,
            handler_workers=args.handler_workers,
            data_dir=args.data_dir,
            group_commit=args.group_commit,
            max_group_delay=args.max_group_delay,
            obs=obs if obs != ObsConfig() else None,
            replica_of=args.replica_of,
            replica_poll_interval=args.replica_poll_interval,
            promote_after=args.promote_after,
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly view (surfaced by ``/healthz``)."""
        payload = {spec.name: getattr(self, spec.name) for spec in fields(self)}
        if self.obs is not None:
            payload["obs"] = self.obs.as_dict()
        return payload


#: Fields parsed as optional ints ("" / unset = None, which _parse_field
#: reaches only via an explicit "none"/"null" spelling).
_OPTIONAL_INT_FIELDS = {"dataset_quota", "class_quota", "write_quota"}
_FLOAT_FIELDS = {"coalesce_window", "retry_after", "drain_timeout",
                 "read_timeout", "max_group_delay",
                 "replica_poll_interval", "promote_after"}
_BOOL_FIELDS = {"group_commit"}
_INT_FIELDS = {
    "port",
    "coalesce_max_batch",
    "max_in_flight",
    "queue_limit",
    "max_body_bytes",
    "handler_workers",
}


def _parse_field(name: str, raw: str) -> Any:
    raw = raw.strip()
    try:
        if name in _OPTIONAL_INT_FIELDS:
            if raw.lower() in ("none", "null", "unlimited"):
                return None
            return int(raw)
        if name in _INT_FIELDS:
            return int(raw)
        if name in _FLOAT_FIELDS:
            return float(raw)
        if name in _BOOL_FIELDS:
            lowered = raw.lower()
            if lowered in ("1", "true", "yes", "on"):
                return True
            if lowered in ("0", "false", "no", "off"):
                return False
            raise ValueError(f"expected a boolean, got {raw!r}")
    except ValueError as exc:
        raise ServerError(
            f"environment variable {_env_name(name)}={raw!r} is not a valid "
            f"value for {name}: {exc}"
        ) from None
    return raw


__all__ = ["ENV_PREFIX", "ServerConfig"]
