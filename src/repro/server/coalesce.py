"""Request coalescing: micro-batch concurrent singles into one batch call.

PR 2 made ``Workspace.handle_many`` share candidate enumeration and
scored batches *across* the requests of one batch — but only callers who
already hold a batch benefit.  :class:`RequestCoalescer` realises that
sharing at the transport layer: concurrent ``POST /v1/insights``
arrivals within a small window are collected and dispatched as **one**
``handle_many`` call, so unrelated clients asking similar questions at
the same moment pay for enumeration and scoring once.

Mechanics: the first arrival opens a batch and starts the window timer;
later arrivals join the pending batch; the batch flushes when the window
elapses or it reaches ``max_batch``, whichever comes first.  The
blocking dispatch runs on a worker thread (the event loop never blocks),
and each caller's future resolves with its own response.

Responses get transport provenance: the per-request ``batch`` entry that
``handle_many`` stamps is replaced by ``coalesced`` (``{"index", "size"}``)
recording how the transport batched it.  Like ``batch``, the entry is
stamped after the response left the result cache, so cached payloads
stay byte-identical however requests were coalesced.

The coalescer is event-loop native: ``submit`` must be called from the
owning loop.  :meth:`aclose` flushes whatever is pending and waits for
outstanding dispatches — the server's graceful drain calls it so no
accepted request is dropped on shutdown.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor
from typing import Any, Callable

from repro.obs.config import ObsConfig
from repro.obs.tracer import Tracer, bind
from repro.service.dto import InsightRequest, InsightResponse
from repro.server.admission import AdmissionController
from repro.server.metrics import ServerMetrics

#: A blocking batch dispatcher — in production ``Workspace.handle_many``.
DispatchFn = Callable[[list[InsightRequest]], list[InsightResponse]]


class RequestCoalescer:
    """Collects concurrent single requests and dispatches them as batches.

    With an ``admission`` controller the coalescer participates in
    coalescer-aware admission: each *dispatched batch* holds exactly one
    in-flight slot (``begin_batch``/``end_batch``) for the duration of
    its ``handle_many`` call, while the requests riding in it were
    already quota-checked and parked at arrival.  Without one (the
    default, and the unit-test configuration) dispatch is ungated.
    """

    def __init__(
        self,
        dispatch: DispatchFn,
        window: float = 0.005,
        max_batch: int = 16,
        metrics: ServerMetrics | None = None,
        executor: Executor | None = None,
        admission: AdmissionController | None = None,
        tracer: Tracer | None = None,
    ):
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._dispatch = dispatch
        self.window = window
        self.max_batch = max_batch
        self._metrics = metrics
        self._executor = executor
        self._admission = admission
        # No tracer = a disabled one: every span call is then the shared
        # no-op, so the dispatch path below needs no branching.
        self._tracer = (tracer if tracer is not None
                        else Tracer(ObsConfig(enabled=False)))
        self._pending: list[
            tuple[InsightRequest, asyncio.Future, float, str | None]
        ] = []
        self._timer: asyncio.Task | None = None
        self._tasks: set[asyncio.Task] = set()
        self._closed = False

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(self, request: InsightRequest,
                     trace_id: str | None = None) -> InsightResponse:
        """Join the pending batch and wait for this request's response.

        ``trace_id`` names the submitting request's trace; the batch
        trace's per-rider spans carry it as ``request_trace_id`` so the
        two traces cross-reference each other.
        """
        if self._closed:
            raise RuntimeError("coalescer is closed")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((request, future, loop.time(), trace_id))
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = asyncio.create_task(self._flush_after_window())
        return await future

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        """Dispatch the pending batch (no-op when nothing is pending)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        task = asyncio.ensure_future(self._dispatch_batch(batch))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _flush_after_window(self) -> None:
        try:
            await asyncio.sleep(self.window)
        except asyncio.CancelledError:
            return
        self._timer = None
        self._flush()

    async def _dispatch_batch(
        self,
        batch: list[tuple[InsightRequest, asyncio.Future, float, str | None]],
    ) -> None:
        loop = asyncio.get_running_loop()
        requests = [request for request, _, _, _ in batch]
        if self._admission is not None:
            # One in-flight slot per dispatched batch, however many
            # requests ride in it.  Waits for capacity rather than
            # rejecting: every rider already passed admission at
            # arrival.
            await self._admission.begin_batch(len(batch))
        # Measured after the slot wait: the recorded latency is what the
        # riders actually experienced between arrival and dispatch.
        wait_seconds = loop.time() - batch[0][2]
        # One timestamp for every rider wait — the per-rider trace spans
        # and the metrics aggregate must sum to the same total, so both
        # read from this one list.
        now = loop.time()
        rider_waits = [now - arrived for _, _, arrived, _ in batch]
        batch_span = self._tracer.start_span("coalesce.batch")
        try:
            batch_span.set_attribute("size", len(batch))
            batch_span.set_attribute("window_wait_seconds", wait_seconds)
            for index, ((request, _, _, trace_id), rider_wait) in enumerate(
                zip(batch, rider_waits)
            ):
                # Near-instant spans whose attributes record what
                # coalescing cost each rider: its position, how long it
                # was parked, and the request trace it answers to.
                rider = self._tracer.start_span("coalesce.rider",
                                                parent=batch_span)
                try:
                    rider.set_attribute("index", index)
                    rider.set_attribute("dataset", request.dataset)
                    rider.set_attribute("wait_seconds", rider_wait)
                    if trace_id is not None:
                        rider.set_attribute("request_trace_id", trace_id)
                finally:
                    rider.end()
            dispatch_span = self._tracer.start_span("coalesce.dispatch",
                                                    parent=batch_span)
            try:
                # bind() re-establishes the dispatch span as ambient on
                # the worker thread, so the handle_many spans beneath
                # nest inside this batch trace.
                responses = await loop.run_in_executor(
                    self._executor, bind(dispatch_span, self._dispatch),
                    requests,
                )
            except Exception as exc:  # noqa: BLE001 - forwarded to each caller
                for _, future, _, _ in batch:
                    if not future.done():
                        future.set_exception(exc)
                return
            finally:
                dispatch_span.end()
                if self._admission is not None:
                    await self._admission.end_batch(len(batch))
        finally:
            batch_span.end()
        if self._metrics is not None:
            self._metrics.record_batch(len(batch), wait_seconds,
                                       rider_waits=rider_waits)
        size = len(batch)
        for index, ((_, future, _, _), response) in enumerate(
            zip(batch, responses)
        ):
            if future.done():
                continue
            # Dispatchers may isolate per-request failures by returning
            # the exception in that request's slot (see the server's
            # batch dispatcher); forward it to just that caller.
            if isinstance(response, BaseException):
                future.set_exception(response)
                continue
            provenance = dict(response.provenance)
            provenance.pop("batch", None)
            provenance["coalesced"] = {"index": index, "size": size}
            response.provenance = provenance
            future.set_result(response)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests currently waiting in the open batch."""
        return len(self._pending)

    def stats(self) -> dict[str, Any]:
        return {
            "window_seconds": self.window,
            "max_batch": self.max_batch,
            "pending": len(self._pending),
            "dispatching": len(self._tasks),
        }

    async def aclose(self, timeout: float | None = None) -> None:
        """Flush the open batch and wait for every outstanding dispatch.

        With a ``timeout``, dispatches still running when it expires are
        cancelled (their callers see ``CancelledError``) so shutdown
        stays bounded even when the engine is stuck mid-call.
        """
        self._closed = True
        self._flush()
        while self._tasks:
            pending = asyncio.gather(*list(self._tasks), return_exceptions=True)
            if timeout is None:
                await pending
            else:
                try:
                    await asyncio.wait_for(pending, timeout)
                except asyncio.TimeoutError:
                    break


__all__ = ["DispatchFn", "RequestCoalescer"]
