"""The HTTP transport: asyncio server, coalescing, admission, ops surface.

This package puts an actual wire behind the serving layer.  A
:class:`ReproServer` binds a stdlib-only asyncio HTTP/1.1 transport over
a :class:`~repro.service.Workspace`:

* ``POST /v1/insights`` — single requests; concurrent arrivals inside
  the coalescing window dispatch as one ``handle_many`` batch
  (:class:`RequestCoalescer`), realising cross-request enumeration and
  score sharing at the transport layer;
* ``POST /v1/insights:batch`` — explicit client-side batches;
* admission control (:class:`AdmissionController`): a bounded queue, a
  max-in-flight cap and per-dataset / per-insight-class quotas, with
  429/503 + ``Retry-After`` rejections;
* an operations surface: ``GET /v1/datasets``, ``GET /healthz`` and
  ``GET /metrics`` (cache, engine-build, pipeline, admission and
  latency-histogram counters via :class:`ServerMetrics`);
* graceful shutdown that drains in-flight requests.

:class:`ReproClient` is the blocking counterpart used by tests, the
examples and the benchmark; :class:`ServerConfig` carries every knob and
fills itself from ``REPRO_SERVER_*`` environment variables or CLI flags
(console script ``repro-serve``).

Quick start::

    from repro.server import ReproClient, ServerConfig, serving
    from repro.service import InsightRequest, Workspace
    from repro.data.datasets import load_oecd

    workspace = Workspace()
    workspace.register("oecd", load_oecd)
    with serving(workspace, ServerConfig(port=0)) as handle:
        client = ReproClient(*handle.address)
        response = client.insights(InsightRequest(
            dataset="oecd", insight_classes=("skew", "outliers"), top_k=3,
        ))
        print(response.provenance)
"""

from repro.errors import AdmissionRejected, ServerError
from repro.server.admission import AdmissionController
from repro.server.app import ReproServer, ServerHandle, serving
from repro.server.client import RawResponse, ReproClient, ServerResponseError
from repro.server.coalesce import RequestCoalescer
from repro.server.config import ServerConfig
from repro.server.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    LatencyHistogram,
    ServerMetrics,
    render_prometheus,
)

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "AdmissionController",
    "AdmissionRejected",
    "LatencyHistogram",
    "RawResponse",
    "ReproClient",
    "ReproServer",
    "RequestCoalescer",
    "ServerConfig",
    "ServerError",
    "ServerHandle",
    "ServerMetrics",
    "ServerResponseError",
    "serving",
]
