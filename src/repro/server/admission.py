"""Admission control: bounded queue, in-flight cap, per-workload quotas.

The Polynesia-style workload isolation from PAPERS.md, applied at the
transport: concurrent clients with mixed workloads must not be able to
starve each other, so every request passes the
:class:`AdmissionController` before it touches the workspace.

Three independent gates, checked in order:

1. **quotas** — per-dataset and per-insight-class caps on concurrent
   in-flight requests.  A request over quota is rejected *immediately*
   with 429 and ``Retry-After``; it never occupies a queue slot, so one
   hot dataset cannot fill the queue and starve the others;
2. **in-flight cap** — at most ``max_in_flight`` requests execute
   concurrently.  Arrivals beyond it wait in the admission queue;
3. **bounded queue** — at most ``queue_limit`` requests wait.  An
   arrival finding the queue full is rejected with 503 and
   ``Retry-After`` (overload, as opposed to the 429 policy rejection).

The controller is event-loop native: waiting uses an
:class:`asyncio.Condition` (FIFO wakeups), and all state is mutated only
from the owning loop, which is what makes the synchronous
:meth:`snapshot` safe to call from request handlers without extra
locking.

**Coalescer-aware accounting.**  A coalesced read does not hold an
in-flight slot while the coalesce window fills — that would let a
handful of parked arrivals starve the server for the whole window.
Instead the request is *parked* (:meth:`admit_coalesced`): its quotas
are checked and counted for its full residence exactly as before (the
429 contract is unchanged), and the number of parked arrivals is
bounded by the queue limit (the 503 contract — parked requests *are*
waiting requests), but the in-flight cap is charged per **dispatched
batch**: the coalescer brackets each batch execution with
:meth:`begin_batch` / :meth:`end_batch`, which wait for — and occupy —
exactly one slot no matter how many requests ride in the batch.
"""

from __future__ import annotations

import asyncio
from typing import Any, Sequence

from repro.errors import AdmissionRejected


class AdmissionController:
    """Gates request execution behind quotas, an in-flight cap and a queue."""

    def __init__(
        self,
        max_in_flight: int = 8,
        queue_limit: int = 32,
        dataset_quota: int | None = None,
        class_quota: int | None = None,
        write_quota: int | None = None,
        retry_after: float = 1.0,
    ):
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {queue_limit}")
        self.max_in_flight = max_in_flight
        self.queue_limit = queue_limit
        self.dataset_quota = dataset_quota
        self.class_quota = class_quota
        self.write_quota = write_quota
        self.retry_after = retry_after
        self._cond = asyncio.Condition()
        self._in_flight = 0
        self._queued = 0
        self._parked = 0
        self._by_dataset: dict[str, int] = {}
        self._by_class: dict[str, int] = {}
        self._writes_by_dataset: dict[str, int] = {}
        # Lifetime totals for /metrics.
        self._admitted_total = 0
        self._queued_total = 0
        self._parked_total = 0
        self._batches_total = 0
        self._rejected_quota_total = 0
        self._rejected_overload_total = 0
        self._peak_in_flight = 0
        self._peak_queued = 0
        self._peak_parked = 0

    # ------------------------------------------------------------------
    # Acquire / release
    # ------------------------------------------------------------------
    async def acquire(
        self,
        datasets: Sequence[str],
        insight_classes: Sequence[str],
        writes: Sequence[str] = (),
    ) -> None:
        """Admit one transport request, queueing if capacity is full.

        ``datasets`` is usually one name; the batch endpoint passes every
        distinct dataset its batch touches, so a whole batch occupies one
        capacity slot but counts against each dataset/class quota it
        uses.  ``writes`` names the datasets the request *mutates*
        (appends, registrations, reloads); those additionally count
        against the per-dataset write quota, so a burst of appends cannot
        monopolise a dataset's engine lock while reads starve.  Raises
        :class:`~repro.errors.AdmissionRejected` with status 429 (quota)
        or 503 (queue overflow).  On success the caller **must** pair
        this with :meth:`release` (use :meth:`admit` to get that for
        free).
        """
        names = _distinct(datasets)
        classes = _distinct(insight_classes)
        write_names = _distinct(writes)
        async with self._cond:
            self._check_quotas(names, classes, write_names)
            if self._in_flight >= self.max_in_flight:
                if self._queued >= self.queue_limit:
                    self._rejected_overload_total += 1
                    raise AdmissionRejected(
                        "overloaded",
                        f"server is at capacity ({self.max_in_flight} in flight, "
                        f"{self._queued} queued); retry later",
                        status=503,
                        retry_after=self.retry_after,
                    )
                self._queued += 1
                self._queued_total += 1
                self._peak_queued = max(self._peak_queued, self._queued)
                try:
                    await self._cond.wait_for(
                        lambda: self._in_flight < self.max_in_flight
                    )
                finally:
                    self._queued -= 1
                # Quotas may have been consumed while we waited.
                self._check_quotas(names, classes, write_names)
            self._in_flight += 1
            self._peak_in_flight = max(self._peak_in_flight, self._in_flight)
            self._admitted_total += 1
            for name in names:
                self._by_dataset[name] = self._by_dataset.get(name, 0) + 1
            for name in classes:
                self._by_class[name] = self._by_class.get(name, 0) + 1
            for name in write_names:
                self._writes_by_dataset[name] = (
                    self._writes_by_dataset.get(name, 0) + 1
                )

    async def release(
        self,
        datasets: Sequence[str],
        insight_classes: Sequence[str],
        writes: Sequence[str] = (),
    ) -> None:
        """Return one admitted request's capacity and wake queued waiters."""
        names = _distinct(datasets)
        classes = _distinct(insight_classes)
        write_names = _distinct(writes)
        async with self._cond:
            self._in_flight -= 1
            for name in names:
                self._decrement(self._by_dataset, name)
            for name in classes:
                self._decrement(self._by_class, name)
            for name in write_names:
                self._decrement(self._writes_by_dataset, name)
            self._cond.notify_all()

    def admit(
        self,
        datasets: Sequence[str],
        insight_classes: Sequence[str],
        writes: Sequence[str] = (),
    ) -> "_Admission":
        """``async with controller.admit(datasets, classes): ...``"""
        return _Admission(self, _distinct(datasets),
                          _distinct(insight_classes), _distinct(writes))

    # ------------------------------------------------------------------
    # Coalescer-aware admission
    # ------------------------------------------------------------------
    async def park(
        self,
        datasets: Sequence[str],
        insight_classes: Sequence[str],
    ) -> None:
        """Admit one arrival *into the open coalesce batch*.

        Quotas are checked and counted exactly like :meth:`acquire` —
        the request occupies its per-dataset/per-class slots for its
        full residence, so the 429 contract is unchanged — but no
        in-flight slot is taken: the dispatched batch will hold one via
        :meth:`begin_batch`.  Parked arrivals are bounded by the queue
        limit (they are waiting requests); beyond it the arrival is
        rejected with 503.  Pair with :meth:`unpark`, or use
        :meth:`admit_coalesced`.
        """
        names = _distinct(datasets)
        classes = _distinct(insight_classes)
        async with self._cond:
            self._check_quotas(names, classes, ())
            if self._parked + self._queued >= self.queue_limit:
                self._rejected_overload_total += 1
                raise AdmissionRejected(
                    "overloaded",
                    f"server is at capacity ({self._parked} parked, "
                    f"{self._queued} queued); retry later",
                    status=503,
                    retry_after=self.retry_after,
                )
            self._parked += 1
            self._parked_total += 1
            self._peak_parked = max(self._peak_parked, self._parked)
            self._admitted_total += 1
            for name in names:
                self._by_dataset[name] = self._by_dataset.get(name, 0) + 1
            for name in classes:
                self._by_class[name] = self._by_class.get(name, 0) + 1

    async def unpark(
        self,
        datasets: Sequence[str],
        insight_classes: Sequence[str],
    ) -> None:
        """Return a parked request's residence (after its batch ran)."""
        names = _distinct(datasets)
        classes = _distinct(insight_classes)
        async with self._cond:
            self._parked -= 1
            for name in names:
                self._decrement(self._by_dataset, name)
            for name in classes:
                self._decrement(self._by_class, name)

    def admit_coalesced(
        self,
        datasets: Sequence[str],
        insight_classes: Sequence[str],
    ) -> "_ParkedAdmission":
        """``async with controller.admit_coalesced(datasets, classes): ...``"""
        return _ParkedAdmission(self, _distinct(datasets),
                                _distinct(insight_classes))

    async def begin_batch(self, size: int) -> None:
        """Take one in-flight slot for a dispatched coalesce batch.

        Waits for capacity instead of rejecting — the ``size`` requests
        riding in the batch were each admission-checked at arrival
        (:meth:`park`); by dispatch time rejection would be too late.
        """
        async with self._cond:
            await self._cond.wait_for(
                lambda: self._in_flight < self.max_in_flight
            )
            self._in_flight += 1
            self._peak_in_flight = max(self._peak_in_flight, self._in_flight)
            self._batches_total += 1

    async def end_batch(self, size: int) -> None:
        """Release a dispatched batch's in-flight slot."""
        async with self._cond:
            self._in_flight -= 1
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Gauges and lifetime totals for ``/metrics``.

        Safe to call without awaiting because every mutation happens on
        the owning event loop — a handler reading this between awaits
        sees a consistent state.
        """
        return {
            "in_flight": self._in_flight,
            "queued": self._queued,
            "parked": self._parked,
            "peak_in_flight": self._peak_in_flight,
            "peak_queued": self._peak_queued,
            "peak_parked": self._peak_parked,
            "admitted_total": self._admitted_total,
            "queued_total": self._queued_total,
            "parked_total": self._parked_total,
            "batches_dispatched_total": self._batches_total,
            "rejected_quota_total": self._rejected_quota_total,
            "rejected_overload_total": self._rejected_overload_total,
            "limits": {
                "max_in_flight": self.max_in_flight,
                "queue_limit": self.queue_limit,
                "dataset_quota": self.dataset_quota,
                "class_quota": self.class_quota,
                "write_quota": self.write_quota,
            },
            "in_flight_by_dataset": dict(self._by_dataset),
            "in_flight_by_class": dict(self._by_class),
            "in_flight_writes_by_dataset": dict(self._writes_by_dataset),
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_quotas(
        self,
        datasets: tuple[str, ...],
        classes: tuple[str, ...],
        writes: tuple[str, ...] = (),
    ) -> None:
        if self.write_quota is not None:
            for name in writes:
                if self._writes_by_dataset.get(name, 0) >= self.write_quota:
                    self._rejected_quota_total += 1
                    raise AdmissionRejected(
                        "write_quota_exceeded",
                        f"dataset {name!r} already has {self.write_quota} "
                        "write(s) in flight; retry later",
                        status=429,
                        retry_after=self.retry_after,
                    )
        if self.dataset_quota is not None:
            for name in datasets:
                if self._by_dataset.get(name, 0) >= self.dataset_quota:
                    self._rejected_quota_total += 1
                    raise AdmissionRejected(
                        "dataset_quota_exceeded",
                        f"dataset {name!r} already has {self.dataset_quota} "
                        "request(s) in flight; retry later",
                        status=429,
                        retry_after=self.retry_after,
                    )
        if self.class_quota is not None:
            for name in classes:
                if self._by_class.get(name, 0) >= self.class_quota:
                    self._rejected_quota_total += 1
                    raise AdmissionRejected(
                        "class_quota_exceeded",
                        f"insight class {name!r} already has "
                        f"{self.class_quota} request(s) in flight; retry later",
                        status=429,
                        retry_after=self.retry_after,
                    )

    @staticmethod
    def _decrement(counts: dict[str, int], key: str) -> None:
        remaining = counts.get(key, 0) - 1
        if remaining <= 0:
            counts.pop(key, None)
        else:
            counts[key] = remaining


def _distinct(names: Sequence[str]) -> tuple[str, ...]:
    """Order-preserving dedup, so one request never double-counts a key."""
    return tuple(dict.fromkeys(names))


class _Admission:
    """Async context manager pairing acquire with release."""

    def __init__(self, controller: AdmissionController,
                 datasets: tuple[str, ...], classes: tuple[str, ...],
                 writes: tuple[str, ...] = ()):
        self._controller = controller
        self._datasets = datasets
        self._classes = classes
        self._writes = writes

    async def __aenter__(self) -> "_Admission":
        await self._controller.acquire(self._datasets, self._classes,
                                       self._writes)
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self._controller.release(self._datasets, self._classes,
                                       self._writes)


class _ParkedAdmission:
    """Async context manager pairing park with unpark."""

    def __init__(self, controller: AdmissionController,
                 datasets: tuple[str, ...], classes: tuple[str, ...]):
        self._controller = controller
        self._datasets = datasets
        self._classes = classes

    async def __aenter__(self) -> "_ParkedAdmission":
        await self._controller.park(self._datasets, self._classes)
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self._controller.unpark(self._datasets, self._classes)


__all__ = ["AdmissionController", "AdmissionRejected"]
