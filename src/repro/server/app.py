"""The asyncio HTTP transport over :class:`~repro.service.Workspace`.

A deliberately small, dependency-free HTTP/1.1 server (``asyncio`` +
stdlib only) that parks a workspace behind a read surface and — since
datasets went live — a write surface:

===================================  ==========================================
``POST /v1/insights``                one :class:`InsightRequest` → one
                                     response; single arrivals inside the
                                     coalescing window micro-batch into one
                                     ``handle_many`` call
``POST /v1/insights:batch``          ``{"requests": [...]}`` →
                                     ``{"responses": [...]}`` via
                                     ``Workspace.handle_many``
``GET /v1/datasets``                 registration/engine/ingest status of
                                     every dataset
``PUT /v1/datasets/{name}``          register a named loader or inline table
``POST /v1/datasets/{name}/rows``    append a validated DeltaBatch; answers
                                     the new ``(version, seq)`` identity
``POST /v1/datasets/{name}/reload``  re-run the loader (version bump,
                                     journal reset)
``POST /v1/datasets/{name}/flush``   force the durable journal to stable
                                     storage; answers ``(version, seq)``
                                     and whether the workspace is durable
``GET /v1/datasets/{name}/journal``  cursor-positioned replication feed
                                     poll (``?from=version:seq``,
                                     ``?max_records=``) — a reset batch
                                     with full snapshot-state, or the
                                     journal records past the cursor
``POST /v1/replica:promote``         lift the write refusal on a
                                     ``--replica-of`` server (primary
                                     fail-over; 409 on a primary)
``GET /v1/traces``                   recently finished request traces
                                     (``?dataset=``, ``?min_duration_ms=``,
                                     ``?since_ms=``, ``?limit=`` filters)
``GET /v1/traces/{id}``              one trace as a nested span tree
``POST /v1/traces:config``           adjust the slow-request threshold at
                                     runtime
``GET /v1/debug``                    memory ledger, rolling cost windows,
                                     watchdog state, top-K expensive
                                     requests (``?top_k=`` override)
``GET /healthz``                     liveness + bind address + config echo
``GET /metrics``                     JSON counters (transport, coalescing,
                                     admission, cache, pipeline, ingestion,
                                     latency histograms, tracing/span
                                     histograms, resource accounting);
                                     ``Accept: text/plain`` negotiates the
                                     Prometheus text exposition
===================================  ==========================================

Every response carries ``X-Repro-Trace-Id`` naming the request's trace
(:mod:`repro.obs`); fetch it from ``/v1/traces/{id}`` to see where the
time went — admission wait, coalescing window, pipeline stages, journal
fsync.  Requests slower than the configured threshold are additionally
logged through the ``repro.obs.events`` structured event log.

Request flow for the insight endpoints: **parse** (protocol violations →
400 envelope, unknown datasets → 404 envelope — the same structured
error envelope :meth:`Workspace.handle_json` returns) → **admission**
(:class:`~repro.server.admission.AdmissionController`; 429/503 with
``Retry-After``) → **dispatch** (coalesced or direct, always on a worker
thread — the event loop never blocks on the engine) → **respond**.

Shutdown is graceful: :meth:`ReproServer.stop` stops accepting, waits up
to ``drain_timeout`` for in-flight requests (including a pending
coalescing batch) to finish, then closes lingering keep-alive
connections.  Tests and examples use :func:`serving` /
:meth:`ReproServer.start_in_thread`, which run the loop on a background
thread and hand back a :class:`ServerHandle`.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import math
import threading
import time
import urllib.parse
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Awaitable, Callable, Iterator, Sequence

from repro.errors import (
    AdmissionRejected,
    DeltaValidationError,
    ForesightError,
    ProtocolError,
    QueryError,
    ReplicaReadOnlyError,
    ServerError,
    ServiceError,
    UnknownDatasetError,
    UnknownInsightClassError,
)
from repro.data.schema import ColumnKind
from repro.data.table import DataTable
from repro.ingest.durable import (
    FeedPosition,
    JournalFeed,
    durable_state_to_payload,
)
from repro.obs import events as obs_events
from repro.obs.config import ObsConfig
from repro.obs.tracer import bind
from repro.obs.watchdog import LoopLagMonitor
from repro.service.dto import InsightRequest, error_envelope
from repro.service.workspace import Workspace
from repro.server.admission import AdmissionController
from repro.server.coalesce import RequestCoalescer
from repro.server.config import ServerConfig
from repro.server.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    ServerMetrics,
    render_prometheus,
)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Endpoints whose latency feeds the request-latency histogram.
_TIMED_ENDPOINTS = ("insights", "insights_batch")

#: Seconds below which no ``admission.wait`` / ``request.dispatch`` span
#: is recorded: an uncontended slot grant or executor handoff is
#: microseconds, and a zero-length span on every request is pure tracing
#: overhead.  One millisecond is comfortably above the uncontended case
#: and comfortably below any real queueing delay — the spans appear
#: exactly when the request actually waited.
_WAIT_SPAN_FLOOR = 0.001


def _canonical(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


class _HttpError(Exception):
    """A request that failed HTTP framing (before routing)."""

    def __init__(self, status: int, code: str, message: str):
        self.status = status
        self.code = code
        super().__init__(message)


class _RequestProgress:
    """Whether a connection's current read got past the request line.

    Distinguishes a *stalled* request (answered 408) from a merely idle
    keep-alive connection (closed silently) when the read timeout fires.
    """

    __slots__ = ("seen_data",)

    def __init__(self) -> None:
        self.seen_data = False


class _HttpRequest:
    __slots__ = ("method", "path", "query", "headers", "body", "keep_alive",
                 "trace")

    def __init__(self, method: str, path: str, headers: dict[str, str],
                 body: bytes, query: str = ""):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        self.keep_alive = headers.get("connection", "").lower() != "close"
        #: The request's root span, set by the dispatch loop so endpoint
        #: handlers can parent their phase spans to it.
        self.trace: Any = None

    def query_params(self) -> dict[str, str]:
        """The query string as a flat dict (last value wins per key)."""
        return {key: values[-1]
                for key, values in urllib.parse.parse_qs(self.query).items()}


class ReproServer:
    """Serves a :class:`Workspace` over asyncio HTTP/1.1."""

    def __init__(
        self,
        workspace: Workspace,
        config: ServerConfig | None = None,
        loaders: dict[str, Callable[[], DataTable]] | None = None,
        replicas: Sequence[Workspace] | None = None,
    ):
        self._workspace = workspace
        self.config = config or ServerConfig()
        self.metrics = ServerMetrics()
        #: In-process read replicas eligible for ``max_lag_seq``-bounded
        #: routing (each a ReplicaWorkspace tailing this primary's
        #: journal).  Requests without a staleness bound never touch
        #: them — the primary is the consistency default.
        self._replicas: list[Workspace] = list(replicas or [])
        self._replica_rr = itertools.count()
        #: Lazy journal feed behind ``GET /v1/datasets/{name}/journal``
        #: (only durable workspaces can serve one).
        self._feed: JournalFeed | None = None
        #: Named loaders that ``PUT /v1/datasets/{name}`` may reference
        #: by ``{"loader": "<name>"}`` — loaders cannot travel over the
        #: wire, so the server exposes a registry of the ones it trusts
        #: (``repro-serve`` passes the bundled dataset loaders).
        self.loaders = dict(loaders or {})
        self.admission = AdmissionController(
            max_in_flight=self.config.max_in_flight,
            queue_limit=self.config.queue_limit,
            dataset_quota=self.config.dataset_quota,
            class_quota=self.config.class_quota,
            write_quota=self.config.write_quota,
            retry_after=self.config.retry_after,
        )
        #: The workspace's tracer, shared so request spans and workspace
        #: spans assemble into one trace; server config overrides apply
        #: at construction (not start()) so even pre-start traffic — and
        #: tests poking handlers directly — see the configured state.
        self.tracer = workspace.tracer
        if self.config.obs is not None:
            self.tracer.configure(self.config.obs)
        #: Event-loop responsiveness watchdog; ``start()`` schedules its
        #: sampling task on the serving loop, ``stop()`` cancels it.
        obs_config = self.config.obs or ObsConfig()
        self.loop_lag = LoopLagMonitor(threshold_ms=obs_config.loop_lag_ms)
        self._loop_lag_task: asyncio.Task | None = None
        self._coalescer: RequestCoalescer | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._server: asyncio.base_events.Server | None = None
        self._address: tuple[str, int] | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._active_requests = 0
        self._started_at: float | None = None
        self._stopping = False
        #: path -> (endpoint name for metrics, allowed method, handler).
        self._routes: dict[str, tuple[str, str, Any]] = {
            "/v1/insights": ("insights", "POST", self._post_insights),
            "/v1/insights:batch": (
                "insights_batch", "POST", self._post_insights_batch
            ),
            "/v1/datasets": ("datasets", "GET", self._get_datasets),
            "/v1/traces": ("traces", "GET", self._get_traces),
            "/v1/traces:config": (
                "traces_config", "POST", self._post_traces_config
            ),
            "/v1/debug": ("debug", "GET", self._get_debug),
            "/v1/replica:promote": (
                "replica_promote", "POST", self._post_promote
            ),
            "/healthz": ("healthz", "GET", self._get_healthz),
            "/metrics": ("metrics", "GET", self._get_metrics),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def workspace(self) -> Workspace:
        return self._workspace

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); resolves port 0 to the real port."""
        if self._address is None:
            raise ServerError("server is not started")
        return self._address

    async def start(self) -> None:
        """Bind the listening socket and start accepting connections."""
        if self._server is not None:
            raise ServerError("server is already started")
        self._stopping = False
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.handler_workers,
            thread_name_prefix="repro-serve",
        )
        if self.config.coalesce_window > 0:
            self._coalescer = RequestCoalescer(
                self._dispatch_coalesced_batch,
                window=self.config.coalesce_window,
                max_batch=self.config.coalesce_max_batch,
                metrics=self.metrics,
                executor=self._pool,
                admission=self.admission,
                tracer=self.tracer,
            )
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.config.host, port=self.config.port
        )
        sock = self._server.sockets[0]
        self._address = sock.getsockname()[:2]
        self._loop_lag_task = asyncio.get_running_loop().create_task(
            self.loop_lag.run()
        )
        self._started_at = time.time()

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain in-flight work, close everything.

        With ``drain=True`` (the default) the server waits up to
        ``config.drain_timeout`` seconds for in-flight requests — and the
        coalescer's pending batch — to finish before force-closing the
        remaining (idle keep-alive) connections.
        """
        if self._server is None:
            return
        self._stopping = True
        if self._loop_lag_task is not None:
            self._loop_lag_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._loop_lag_task
            self._loop_lag_task = None
        # close() stops accepting immediately.  Deliberately NOT
        # wait_closed() here: on Python >= 3.12 it blocks until every
        # connection handler returns, and idle keep-alive handlers only
        # return once we force-close them below — after the drain.
        self._server.close()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout
        if drain:
            while self._active_requests > 0 and loop.time() < deadline:
                await asyncio.sleep(0.005)
        if self._coalescer is not None:
            # Bound by what is left of the drain budget: a dispatch stuck
            # in a slow engine call must not hold shutdown hostage.
            remaining = max(0.1, deadline - loop.time()) if drain else 0.1
            await self._coalescer.aclose(timeout=remaining)
        # Drain-time durability: force every dataset's journal to stable
        # storage so a clean shutdown never relies on fsync-on-commit
        # being enabled.  Runs on the default executor (our own pool is
        # about to shut down) and is bounded by what remains of the
        # drain budget — flush takes each dataset's entry lock, and a
        # cold engine build holding one must not hang shutdown.
        with contextlib.suppress(Exception):
            await asyncio.wait_for(
                loop.run_in_executor(None, self._workspace.flush_all),
                timeout=max(0.1, deadline - loop.time()),
            )
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        self._connections.clear()
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(self._server.wait_closed(), timeout=2.0)
        if self._pool is not None:
            # wait=False: the drain above already honored drain_timeout;
            # blocking the event loop on a stuck worker thread here would
            # un-bound it again.
            self._pool.shutdown(wait=False)
        self._server = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    def run(self) -> None:
        """Blocking entry point for the CLI; Ctrl-C shuts down gracefully."""

        async def _main() -> None:
            await self.start()
            host, port = self.address
            print(f"repro-serve listening on http://{host}:{port} "
                  f"(datasets: {', '.join(self._workspace.datasets()) or 'none'})")
            try:
                await self._server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await self.stop()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass

    def start_in_thread(self, timeout: float = 30.0) -> "ServerHandle":
        """Run the server on a dedicated event-loop thread.

        Returns once the socket is bound; the returned
        :class:`ServerHandle` stops the server and joins the thread.
        """
        started = threading.Event()
        failures: list[BaseException] = []
        holder: dict[str, Any] = {}

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            holder["loop"] = loop
            stop_event = asyncio.Event()
            holder["stop_event"] = stop_event

            async def _main() -> None:
                try:
                    await self.start()
                except BaseException as exc:  # noqa: BLE001 - reported to caller
                    failures.append(exc)
                    return
                finally:
                    started.set()
                await stop_event.wait()

            try:
                loop.run_until_complete(_main())
            finally:
                loop.close()

        thread = threading.Thread(target=_run, name="repro-serve-loop", daemon=True)
        thread.start()
        if not started.wait(timeout):
            raise ServerError("server did not start within the timeout")
        if failures:
            thread.join(timeout=5)
            raise failures[0]
        return ServerHandle(self, holder["loop"], holder["stop_event"], thread)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        read_timeout = self.config.read_timeout
        try:
            while not self._stopping:
                started = _RequestProgress()
                try:
                    if read_timeout > 0:
                        # A stalled (or merely idle) client must not pin a
                        # connection slot: give it read_timeout seconds to
                        # deliver a complete request, then reclaim it.
                        request = await asyncio.wait_for(
                            self._read_request(reader, started),
                            timeout=read_timeout,
                        )
                    else:
                        request = await self._read_request(reader, started)
                except asyncio.TimeoutError:
                    # Only a request the client actually *started* gets a
                    # 408 — an idle keep-alive connection closes silently,
                    # so a slow persistent client can never mistake the
                    # buffered 408 for the answer to its next request.
                    if started.seen_data:
                        self.metrics.record_response(408)
                        await self._respond(
                            writer, 408,
                            error_envelope(
                                "request_timeout",
                                f"no complete request received within "
                                f"{read_timeout:g} seconds",
                            ),
                            keep_alive=False,
                        )
                    break
                except _HttpError as exc:
                    await self._respond(
                        writer, exc.status,
                        error_envelope(exc.code, str(exc)), keep_alive=False,
                    )
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive and not self._stopping
                await self._handle_request(request, writer, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader,
        progress: "_RequestProgress | None" = None,
    ) -> _HttpRequest | None:
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise _HttpError(400, "bad_request", "request line too long") from None
        if not request_line:
            return None
        if progress is not None:
            progress.seen_data = True
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, "bad_request", "malformed HTTP request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                raise _HttpError(400, "bad_request", "header line too long") from None
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, "bad_request", "malformed header line")
            headers[name.strip().lower()] = value.strip()
            if len(headers) > 100:
                raise _HttpError(400, "bad_request", "too many headers")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad_request",
                             "malformed Content-Length header") from None
        if length < 0:
            raise _HttpError(400, "bad_request", "negative Content-Length")
        if length > self.config.max_body_bytes:
            raise _HttpError(
                413, "payload_too_large",
                f"request body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit",
            )
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return None
        path, _, query = target.partition("?")
        return _HttpRequest(method.upper(), path, headers, body, query=query)

    async def _handle_request(
        self, request: _HttpRequest, writer: asyncio.StreamWriter,
        keep_alive: bool,
    ) -> None:
        self._active_requests += 1
        start = time.perf_counter()
        # The root span of this request's trace.  Manual (not a context
        # manager): this coroutine shares its thread with every other
        # request on the loop, so ambient thread-local context would
        # cross-wire them — children parent to it explicitly instead.
        root = self.tracer.start_span("request")
        request.trace = root
        try:
            endpoint, handler = self._route(request)
            root.set_attribute("endpoint", endpoint)
            root.set_attribute("method", request.method)
            self.metrics.record_request(endpoint)
            extra_headers: dict[str, str] = {}
            if root.trace_id is not None:
                # Every response names its trace, so any request can be
                # looked up in /v1/traces/{id} afterwards.
                extra_headers["X-Repro-Trace-Id"] = root.trace_id
            content_type = "application/json"
            try:
                result = await handler(request)
                if len(result) == 3:
                    # Handlers may return (status, payload, headers) to
                    # override the content type (Prometheus exposition).
                    status, payload, handler_headers = result
                    handler_headers = dict(handler_headers)
                    content_type = handler_headers.pop(
                        "Content-Type", content_type
                    )
                    extra_headers.update(handler_headers)
                else:
                    status, payload = result
            except Exception as exc:  # noqa: BLE001 - mapped to envelopes
                status, payload = self._error_payload(exc)
                content_type = "application/json"
                root.set_attribute("error", type(exc).__name__)
                if isinstance(exc, AdmissionRejected):
                    self.metrics.record_rejection(exc.status)
                    extra_headers["Retry-After"] = str(
                        max(0, math.ceil(exc.retry_after))
                    )
                    obs_events.emit("admission_rejection", endpoint=endpoint,
                                    status=exc.status, code=exc.code,
                                    retry_after=exc.retry_after)
            elapsed = time.perf_counter() - start
            self.metrics.record_response(
                status, elapsed if endpoint in _TIMED_ENDPOINTS else None
            )
            root.set_attribute("status", status)
            # Completed before the response goes out: a client that
            # immediately asks /v1/traces/{id} for the id it was handed
            # must find the trace already in the ring.
            root.end()
            await self._respond(
                writer, status, payload, keep_alive=keep_alive,
                extra_headers=extra_headers, content_type=content_type,
            )
        finally:
            root.end()
            self._active_requests -= 1

    def _route(
        self, request: _HttpRequest
    ) -> tuple[str, Callable[[_HttpRequest], Awaitable[tuple[int, Any]]]]:
        entry = self._routes.get(request.path)
        if entry is None:
            dataset_route = self._route_dataset(request)
            if dataset_route is not None:
                return dataset_route
            trace_route = self._route_trace(request)
            if trace_route is not None:
                return trace_route

            async def _not_found(_request: _HttpRequest) -> tuple[int, Any]:
                return 404, error_envelope(
                    "not_found", f"no such endpoint: {_request.path}"
                )
            return "unknown", _not_found
        endpoint, method, handler = entry
        if request.method != method:
            return endpoint, self._method_not_allowed(method)
        return endpoint, handler

    def _route_dataset(
        self, request: _HttpRequest
    ) -> tuple[str, Callable[[_HttpRequest], Awaitable[tuple[int, Any]]]] | None:
        """Resolve the parameterized dataset-management routes.

        ========================================  =====================
        ``PUT  /v1/datasets/{name}``              register loader/table
        ``POST /v1/datasets/{name}/rows``         append a DeltaBatch
        ``POST /v1/datasets/{name}/reload``       reload + version bump
        ``POST /v1/datasets/{name}/flush``        sync the journal
        ``GET  /v1/datasets/{name}/journal``      replication feed poll
        ========================================  =====================
        """
        prefix = "/v1/datasets/"
        if not request.path.startswith(prefix):
            return None
        parts = request.path[len(prefix):].split("/")
        if not parts or not parts[0]:
            return None
        name = parts[0]
        if len(parts) == 1:
            endpoint, method = "dataset_put", "PUT"
            handler = lambda req, n=name: self._put_dataset(req, n)  # noqa: E731
        elif len(parts) == 2 and parts[1] == "rows":
            endpoint, method = "dataset_rows", "POST"
            handler = lambda req, n=name: self._post_rows(req, n)  # noqa: E731
        elif len(parts) == 2 and parts[1] == "reload":
            endpoint, method = "dataset_reload", "POST"
            handler = lambda req, n=name: self._post_reload(req, n)  # noqa: E731
        elif len(parts) == 2 and parts[1] == "flush":
            endpoint, method = "dataset_flush", "POST"
            handler = lambda req, n=name: self._post_flush(req, n)  # noqa: E731
        elif len(parts) == 2 and parts[1] == "journal":
            endpoint, method = "dataset_journal", "GET"
            handler = lambda req, n=name: self._get_journal(req, n)  # noqa: E731
        else:
            return None
        if request.method != method:
            return endpoint, self._method_not_allowed(method)
        return endpoint, handler

    def _route_trace(
        self, request: _HttpRequest
    ) -> tuple[str, Callable[[_HttpRequest], Awaitable[tuple[int, Any]]]] | None:
        """Resolve ``GET /v1/traces/{id}``.

        Only true sub-paths land here: the exact-match table already
        claimed ``/v1/traces`` and ``/v1/traces:config``.
        """
        prefix = "/v1/traces/"
        if not request.path.startswith(prefix):
            return None
        trace_id = request.path[len(prefix):]
        if not trace_id or "/" in trace_id:
            return None
        if request.method != "GET":
            return "trace_get", self._method_not_allowed("GET")
        handler = lambda req, t=trace_id: self._get_trace(req, t)  # noqa: E731
        return "trace_get", handler

    @staticmethod
    def _method_not_allowed(
        allowed: str,
    ) -> Callable[[_HttpRequest], Awaitable[tuple[int, Any]]]:
        async def _wrong_method(_request: _HttpRequest) -> tuple[int, Any]:
            return 405, error_envelope(
                "method_not_allowed",
                f"{_request.method} is not allowed on {_request.path}; "
                f"use {allowed}",
            )
        return _wrong_method

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: Any,
        keep_alive: bool, extra_headers: dict[str, str] | None = None,
        content_type: str = "application/json",
    ) -> None:
        body = payload if isinstance(payload, bytes) else _canonical(payload)
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # ------------------------------------------------------------------
    # Endpoint handlers
    # ------------------------------------------------------------------
    async def _post_insights(self, http_request: _HttpRequest) -> tuple[int, Any]:
        root = http_request.trace
        request = self._parse_insight_request(http_request.body)
        self._require_dataset(request.dataset)
        if root is not None:
            root.set_attribute("dataset", request.dataset)
        # An ``admission.wait`` span is synthesized after the fact, and
        # only when admission actually made the request wait: on an
        # unloaded server the slot is granted in microseconds, and a
        # zero-length span on every request is pure overhead (tracing is
        # budgeted against the cached hot path — see the throughput
        # benchmark's ``tracing_overhead`` regime).
        clock = self.tracer.clock
        admit_started = clock()
        loop = asyncio.get_running_loop()
        # Staleness-bounded reads are eligible for replica routing, and
        # a replica-served request must bypass the coalescer: batches
        # coalesce onto the primary's workspace, which would silently
        # discard the client's freshness/offload intent.
        use_coalescer = self._coalescer is not None and (
            request.max_lag_seq is None or not self._replicas
        )
        if use_coalescer:
            # Coalescer-aware admission: the arrival is quota-checked
            # and parked into the open batch without holding an
            # in-flight slot through the coalesce window — the
            # dispatched batch takes exactly one slot instead.
            async with self.admission.admit_coalesced(
                [request.dataset], request.insight_classes
            ):
                if clock() - admit_started >= _WAIT_SPAN_FLOOR:
                    self.tracer.record_span("admission.wait", root,
                                            admit_started)
                # Covers the coalescing window plus the shared batch
                # dispatch; the batch's own trace cross-references
                # this one via request_trace_id on its rider spans.
                parked = self.tracer.start_span("coalesce.wait", parent=root)
                try:
                    response = await self._coalescer.submit(
                        request,
                        trace_id=(root.trace_id if root is not None
                                  else None),
                    )
                finally:
                    parked.end()
        else:
            async with self.admission.admit(
                [request.dataset], request.insight_classes
            ):
                if clock() - admit_started >= _WAIT_SPAN_FLOOR:
                    self.tracer.record_span("admission.wait", root,
                                            admit_started)
                self.metrics.record_direct()
                # bind() carries the root onto the worker thread so the
                # workspace.handle span parents to this request.  The
                # handoff gets a span only when it was slow:
                # ``request.dispatch`` measures the executor queue wait
                # (submit until a worker picks the job up) and is
                # synthesized from the worker thread only when that
                # wait reached the floor — a free pool records nothing.
                dispatch_started = clock()
                tracer = self.tracer
                handle = self._select_workspace(request).handle

                def dispatched(req):
                    if clock() - dispatch_started >= _WAIT_SPAN_FLOOR:
                        tracer.record_span("request.dispatch", root,
                                           dispatch_started)
                    return handle(req)

                response = await loop.run_in_executor(
                    self._pool, bind(root, dispatched), request,
                )
        return 200, response.to_json().encode()

    async def _post_insights_batch(
        self, http_request: _HttpRequest
    ) -> tuple[int, Any]:
        payload = self._parse_json(http_request.body)
        if isinstance(payload, dict):
            items = payload.get("requests")
        elif isinstance(payload, list):
            items = payload
        else:
            items = None
        if not isinstance(items, list) or not items:
            raise ProtocolError(
                'batch body must be {"requests": [...]} with at least one request'
            )
        requests = []
        for index, item in enumerate(items):
            if not isinstance(item, dict):
                raise ProtocolError(f"batch request #{index} must be an object")
            try:
                requests.append(InsightRequest.from_dict(item))
            except ProtocolError as exc:
                raise ProtocolError(f"batch request #{index}: {exc}") from None
        for request in requests:
            self._require_dataset(request.dataset)
        datasets = [request.dataset for request in requests]
        classes = [
            name for request in requests for name in request.insight_classes
        ]
        loop = asyncio.get_running_loop()
        async with self.admission.admit(datasets, classes):
            responses = await loop.run_in_executor(
                self._pool, self._workspace.handle_many, requests
            )
        return 200, {
            "protocol": 1,
            "responses": [response.to_dict() for response in responses],
        }

    async def _get_datasets(self, _request: _HttpRequest) -> tuple[int, Any]:
        return 200, {"protocol": 1, "datasets": self._workspace.describe()}

    async def _get_healthz(self, _request: _HttpRequest) -> tuple[int, Any]:
        host, port = self.address
        return 200, {
            "status": "draining" if self._stopping else "ok",
            "host": host,
            "port": port,
            "uptime_seconds": (
                time.time() - self._started_at if self._started_at else 0.0
            ),
            "datasets": self._workspace.datasets(),
            "in_flight": self.admission.snapshot()["in_flight"],
            "config": self.config.as_dict(),
        }

    async def _get_debug(self, request: _HttpRequest) -> tuple[int, Any]:
        """``GET /v1/debug``: memory ledger, cost windows, watchdog state.

        Every value is an already-maintained counter — the endpoint
        never walks live objects — so it is safe to poll against a
        loaded server.  ``?top_k=`` overrides how many of the most
        CPU-expensive recent requests are listed (default
        ``ObsConfig.debug_top_k``).
        """
        params = request.query_params()
        top_k = None
        if "top_k" in params:
            try:
                top_k = int(params["top_k"])
            except ValueError:
                raise ProtocolError(
                    f"top_k must be an integer, got {params['top_k']!r}"
                ) from None
            if top_k < 0:
                raise ProtocolError(f"top_k must be >= 0, got {top_k}")
        document = self._workspace.debug_info(top_k=top_k)
        document["watchdogs"]["event_loop_lag"] = self.loop_lag.snapshot()
        return 200, {"protocol": 1, **document}

    async def _get_metrics(self, request: _HttpRequest) -> tuple[int, Any]:
        datasets = self._workspace.describe()
        resources = self._workspace.debug_info(top_k=0)
        resources["watchdogs"]["event_loop_lag"] = self.loop_lag.snapshot()
        document = {
            "server": self.metrics.snapshot(),
            "admission": self.admission.snapshot(),
            "workspace": {
                "cache": self._workspace.cache_info(),
                "pipeline": self._workspace.pipeline_stats(),
                "datasets": datasets,
                "engine_builds": sum(d["engine_builds"] for d in datasets),
                "ingest": self._workspace.ingest_stats(),
            },
            "obs": {
                "tracing": self.tracer.stats(),
                "spans": self.tracer.histograms(),
            },
            "resources": resources,
        }
        accept = request.headers.get("accept", "")
        if "text/plain" in accept.lower():
            # Content negotiation: a Prometheus scraper sends
            # ``Accept: text/plain`` and gets the text exposition; the
            # JSON document stays the default for everyone else.
            return (200, render_prometheus(document).encode("utf-8"),
                    {"Content-Type": PROMETHEUS_CONTENT_TYPE})
        return 200, document

    # ------------------------------------------------------------------
    # Trace surface
    # ------------------------------------------------------------------
    async def _get_traces(self, request: _HttpRequest) -> tuple[int, Any]:
        """``GET /v1/traces``: recently finished traces, newest first.

        Query parameters: ``dataset`` keeps traces with a span whose
        ``dataset`` attribute matches; ``min_duration_ms`` keeps traces
        at least that long; ``since_ms`` (Unix epoch milliseconds) keeps
        traces that *started* strictly after that instant — pass the
        newest seen ``start_unix * 1000`` back as a poll cursor;
        ``limit`` caps the count.
        """
        params = request.query_params()
        dataset = params.get("dataset")
        min_duration_ms = None
        if "min_duration_ms" in params:
            try:
                min_duration_ms = float(params["min_duration_ms"])
            except ValueError:
                raise ProtocolError(
                    "min_duration_ms must be a number, got "
                    f"{params['min_duration_ms']!r}"
                ) from None
        since_ms = None
        if "since_ms" in params:
            try:
                since_ms = float(params["since_ms"])
            except ValueError:
                raise ProtocolError(
                    f"since_ms must be a number, got {params['since_ms']!r}"
                ) from None
        limit = None
        if "limit" in params:
            try:
                limit = int(params["limit"])
            except ValueError:
                raise ProtocolError(
                    f"limit must be an integer, got {params['limit']!r}"
                ) from None
            if limit < 1:
                raise ProtocolError(f"limit must be >= 1, got {limit}")
        return 200, {
            "protocol": 1,
            "tracing": self.tracer.stats(),
            "traces": self.tracer.traces(
                dataset=dataset, min_duration_ms=min_duration_ms,
                limit=limit, since_ms=since_ms,
            ),
        }

    async def _get_trace(
        self, _request: _HttpRequest, trace_id: str
    ) -> tuple[int, Any]:
        """``GET /v1/traces/{id}``: one trace as a nested span tree."""
        trace = self.tracer.trace(trace_id)
        if trace is None:
            return 404, error_envelope(
                "unknown_trace",
                f"no trace {trace_id!r}: it never existed, was evicted "
                "from the ring, or has not finished yet",
            )
        return 200, {"protocol": 1, "trace": trace}

    async def _post_traces_config(
        self, http_request: _HttpRequest
    ) -> tuple[int, Any]:
        """``POST /v1/traces:config``: adjust tracing at runtime.

        Body: ``{"slow_ms": <number>}`` — the new slow-request
        threshold.  Answers the applied tracer state.
        """
        payload = self._parse_json(http_request.body)
        if not isinstance(payload, dict):
            raise ProtocolError("traces:config body must be an object")
        unknown = set(payload) - {"slow_ms"}
        if unknown:
            raise ProtocolError(
                f"unknown traces:config keys: {sorted(unknown)}"
            )
        if "slow_ms" not in payload:
            raise ProtocolError('traces:config body requires "slow_ms"')
        slow_ms = payload["slow_ms"]
        if not isinstance(slow_ms, (int, float)) or isinstance(slow_ms, bool):
            raise ProtocolError(
                f"slow_ms must be a number, got {type(slow_ms).__name__}"
            )
        if slow_ms < 0:
            raise ProtocolError(f"slow_ms must be >= 0, got {slow_ms}")
        self.tracer.set_slow_ms(float(slow_ms))
        return 200, {"protocol": 1, "tracing": self.tracer.stats()}

    # ------------------------------------------------------------------
    # Dataset management (the write surface)
    # ------------------------------------------------------------------
    async def _put_dataset(
        self, http_request: _HttpRequest, name: str
    ) -> tuple[int, Any]:
        """``PUT /v1/datasets/{name}``: register a loader or inline table.

        Body shapes (all JSON objects):

        * ``{"loader": "<registry name>"}`` — register one of the
          server's trusted named loaders (lazily, like ``repro-serve``'s
          bundled datasets);
        * ``{"rows": [{...}, ...]}`` — inline row records;
        * ``{"columns": {"col": [...], ...}}`` — inline columns;

        plus optional ``"kinds": {"col": "numeric"|"categorical"|
        "boolean"}`` overrides for inline tables and ``"replace": true``
        to re-register an existing name (a version bump, like reload).
        Registering an existing name without ``replace`` answers 409.
        """
        payload = self._parse_json(http_request.body)
        if not isinstance(payload, dict):
            raise ProtocolError("dataset registration body must be an object")
        replace = bool(payload.get("replace", False))
        if name in self._workspace and not replace:
            return 409, error_envelope(
                "dataset_exists",
                f"dataset {name!r} is already registered; pass "
                '"replace": true to overwrite it',
            )

        def _register() -> tuple[int, int]:
            # Everything that can block runs on a pool thread: inline
            # table materialisation (kind inference over every cell),
            # Workspace.register, and the state() read, which contends
            # the entry lock a racing engine build may hold for seconds.
            source = self._registration_source(name, payload)
            self._workspace.register(name, source, replace=replace)
            return self._workspace.state(name)

        loop = asyncio.get_running_loop()
        async with self.admission.admit([name], [], writes=[name]):
            try:
                version, seq = await loop.run_in_executor(self._pool,
                                                          _register)
            except ServiceError as exc:
                if not isinstance(exc, (ProtocolError, UnknownDatasetError)):
                    # Two racing PUTs without "replace" both passed the
                    # pre-check above; the loser's register() raises the
                    # duplicate-name ServiceError — still a 409, not a 500.
                    return 409, error_envelope("dataset_exists", str(exc))
                raise
        return 200, {
            "protocol": 1,
            "dataset": name,
            "version": version,
            "seq": seq,
            "source": "loader" if "loader" in payload else "inline",
        }

    def _registration_source(self, name: str, payload: dict[str, Any]):
        """Resolve a PUT body into a Workspace-registrable source."""
        kinds_raw = payload.get("kinds") or {}
        if not isinstance(kinds_raw, dict):
            raise ProtocolError('"kinds" must be an object of column kinds')
        try:
            kinds = {
                column: ColumnKind(kind) for column, kind in kinds_raw.items()
            }
        except ValueError as exc:
            raise ProtocolError(f"invalid column kind: {exc}") from None
        if "loader" in payload:
            loader_name = payload["loader"]
            loader = self.loaders.get(loader_name)
            if loader is None:
                raise ProtocolError(
                    f"unknown loader {loader_name!r}; available loaders: "
                    f"{', '.join(sorted(self.loaders)) or 'none'}"
                )
            return loader
        if "rows" in payload:
            rows = payload["rows"]
            if not isinstance(rows, list) or not rows:
                raise ProtocolError('"rows" must be a non-empty list of records')
            return DataTable.from_records(rows, name=name, kinds=kinds)
        if "columns" in payload:
            columns = payload["columns"]
            if not isinstance(columns, dict) or not columns:
                raise ProtocolError('"columns" must be a non-empty object')
            return DataTable.from_columns(columns, name=name, kinds=kinds)
        raise ProtocolError(
            'dataset registration body needs one of "loader", "rows" '
            'or "columns"'
        )

    async def _post_rows(
        self, http_request: _HttpRequest, name: str
    ) -> tuple[int, Any]:
        """``POST /v1/datasets/{name}/rows``: append a validated batch.

        Body: ``{"rows": [{...}, ...]}``.  Success answers the new
        ingestion identity ``(version, seq)`` plus how the rows were
        absorbed (``delta_merge`` / ``rebuild`` / ``deferred``); a batch
        failing schema validation answers 400 with the per-row problems
        and changes nothing.
        """
        self._require_dataset(name)
        payload = self._parse_json(http_request.body)
        if not isinstance(payload, dict) or "rows" not in payload:
            raise ProtocolError('append body must be {"rows": [...]}')
        rows = payload["rows"]
        if not isinstance(rows, list):
            raise ProtocolError('"rows" must be a list of records')
        loop = asyncio.get_running_loop()
        async with self.admission.admit([name], [], writes=[name]):
            result = await loop.run_in_executor(
                self._pool, self._workspace.append, name, rows
            )
        return 200, {"protocol": 1, **result.as_dict()}

    async def _post_reload(
        self, _request: _HttpRequest, name: str
    ) -> tuple[int, Any]:
        """``POST /v1/datasets/{name}/reload``: re-run the loader.

        Bumps the version, resets the append journal (a new generation)
        and drops the dataset's cached state.
        """
        self._require_dataset(name)
        loop = asyncio.get_running_loop()
        async with self.admission.admit([name], [], writes=[name]):
            version = await loop.run_in_executor(
                self._pool, self._workspace.reload, name
            )
        return 200, {
            "protocol": 1, "dataset": name, "version": version, "seq": 0,
        }

    async def _post_flush(
        self, _request: _HttpRequest, name: str
    ) -> tuple[int, Any]:
        """``POST /v1/datasets/{name}/flush``: sync the durable journal.

        Forces every journalled record for the dataset to stable storage
        (meaningful when the workspace runs with
        ``IngestConfig(fsync=False)``; a barrier otherwise) and answers
        the flushed ``(version, seq)``.  ``durable`` is false when the
        server runs without a ``data_dir`` — the flush is then a no-op
        and the client knows the dataset will not survive a restart.
        """
        self._require_dataset(name)
        loop = asyncio.get_running_loop()
        async with self.admission.admit([name], []):
            result = await loop.run_in_executor(
                self._pool, self._workspace.flush, name
            )
        return 200, {"protocol": 1, **result}

    async def _get_journal(
        self, request: _HttpRequest, name: str
    ) -> tuple[int, Any]:
        """``GET /v1/datasets/{name}/journal``: positioned feed poll.

        The replication endpoint: a cursor-positioned read of the
        dataset's durable journal.  Without ``from`` (or when the cursor
        no longer lines up with the journal — compaction, generation
        bump, primary restart) the batch carries a full ``reset``
        snapshot-state; with a valid ``from=version:seq`` cursor it
        carries only the records past that position.  ``batch`` is null
        when the dataset has no durable state yet.  The records are the
        journal's own CRC'd payloads — there is no second wire format.
        """
        self._require_dataset(name)
        if self._workspace.data_dir is None:
            return 409, error_envelope(
                "not_durable",
                "this server runs without a data_dir; there is no "
                "journal to replicate from",
            )
        params = request.query_params()
        position: FeedPosition | None = None
        raw_from = params.get("from")
        if raw_from is not None:
            try:
                position = FeedPosition.parse(raw_from)
            except ValueError as exc:
                raise ProtocolError(str(exc)) from None
        raw_max = params.get("max_records")
        try:
            max_records = 512 if raw_max is None else int(raw_max)
        except ValueError:
            raise ProtocolError(
                f"max_records must be an integer, got {raw_max!r}"
            ) from None
        if max_records < 1:
            raise ProtocolError("max_records must be >= 1")
        if self._feed is None:
            self._feed = JournalFeed(self._workspace.data_dir)
        feed = self._feed
        loop = asyncio.get_running_loop()
        batch = await loop.run_in_executor(
            self._pool, feed.poll, name, position, max_records
        )
        encoded = None
        if batch is not None:
            encoded = {
                "reset": (durable_state_to_payload(batch.reset)
                          if batch.reset is not None else None),
                "records": batch.records,
                "position": batch.position.token(),
                "more": batch.more,
                "primary_seq": batch.primary_seq,
            }
        return 200, {"protocol": 1, "dataset": name, "batch": encoded}

    async def _post_promote(self, _request: _HttpRequest) -> tuple[int, Any]:
        """``POST /v1/replica:promote``: make a replica writable.

        Only meaningful on a server fronting a
        :class:`~repro.service.replica.ReplicaWorkspace` (the
        ``repro-serve --replica-of`` mode); a primary answers 409.  The
        promote stops the tailer and lifts the write refusal — it does
        not demote the old primary, which is the operator's runbook step
        (see ``docs/API.md``).
        """
        workspace = self._workspace
        promote = getattr(workspace, "promote", None)
        if promote is None or not hasattr(workspace, "promoted"):
            return 409, error_envelope(
                "not_a_replica",
                "this server fronts a primary workspace; promote is "
                "only valid on a --replica-of server",
            )
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._pool, promote)
        return 200, {"protocol": 1, "promoted": True}

    # ------------------------------------------------------------------
    # Dispatch helpers
    # ------------------------------------------------------------------
    def _select_workspace(self, request: InsightRequest) -> Workspace:
        """Route a read to a replica when its staleness bound allows.

        Requests without ``max_lag_seq`` always hit the primary
        (read-your-writes).  Bounded requests round-robin across the
        attached replicas that both carry the dataset and are within the
        bound, falling back to the primary when none qualifies — a
        lagging replica costs freshness, never correctness.
        """
        if request.max_lag_seq is None or not self._replicas:
            return self._workspace
        eligible = []
        for replica in self._replicas:
            if request.dataset not in replica:
                continue
            lag = replica.replica_lag().get(request.dataset)
            if lag is not None and lag <= request.max_lag_seq:
                eligible.append(replica)
        if not eligible:
            return self._workspace
        return eligible[next(self._replica_rr) % len(eligible)]

    def _dispatch_coalesced_batch(
        self, requests: list[InsightRequest]
    ) -> list[Any]:
        """Coalescer dispatch: one ``handle_many``, per-request fallback.

        ``handle_many`` propagates the first failure, which would poison
        every request that happened to share the batch; on failure each
        request is retried individually so one bad request (e.g. an
        unknown insight class) only fails its own caller.  Successful
        requests re-run from the result cache, so the fallback is cheap.
        """
        try:
            return list(self._workspace.handle_many(requests))
        except Exception:  # noqa: BLE001 - isolate per request below
            results: list[Any] = []
            for request in requests:
                try:
                    results.append(self._workspace.handle(request))
                except Exception as exc:  # noqa: BLE001 - forwarded per caller
                    results.append(exc)
            return results

    def _parse_json(self, body: bytes) -> Any:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from None

    def _parse_insight_request(self, body: bytes) -> InsightRequest:
        payload = self._parse_json(body)
        if not isinstance(payload, dict):
            raise ProtocolError("request JSON must be an object")
        return InsightRequest.from_dict(payload)

    def _require_dataset(self, name: str) -> None:
        if name not in self._workspace:
            raise UnknownDatasetError(name, self._workspace.datasets())

    @staticmethod
    def _error_payload(exc: Exception) -> tuple[int, dict[str, Any]]:
        """Map an exception to (status, structured error envelope)."""
        if isinstance(exc, AdmissionRejected):
            return exc.status, error_envelope(
                exc.code, str(exc), retry_after=exc.retry_after
            )
        if isinstance(exc, UnknownDatasetError):
            return 404, error_envelope(
                "unknown_dataset", str(exc), available=exc.available
            )
        if isinstance(exc, UnknownInsightClassError):
            return 400, error_envelope(
                "unknown_insight_class", str(exc), available=exc.available
            )
        if isinstance(exc, DeltaValidationError):
            return 400, error_envelope(
                "delta_rejected", str(exc), problems=exc.problems
            )
        if isinstance(exc, ReplicaReadOnlyError):
            return 403, error_envelope("replica_read_only", str(exc))
        if isinstance(exc, ProtocolError):
            return 400, error_envelope("protocol_error", str(exc))
        if isinstance(exc, QueryError):
            return 400, error_envelope("invalid_query", str(exc))
        if isinstance(exc, ForesightError):
            return 500, error_envelope("internal_error", str(exc))
        return 500, error_envelope(
            "internal_error", f"{type(exc).__name__}: {exc}"
        )


class ServerHandle:
    """Controls a server running on a background event-loop thread."""

    def __init__(self, server: ReproServer, loop: asyncio.AbstractEventLoop,
                 stop_event: asyncio.Event, thread: threading.Thread):
        self.server = server
        self._loop = loop
        self._stop_event = stop_event
        self._thread = thread
        self._stopped = False

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    @property
    def host(self) -> str:
        return self.server.address[0]

    @property
    def port(self) -> int:
        return self.server.address[1]

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Gracefully stop the server and join its loop thread (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(drain=drain), self._loop
        )
        try:
            future.result(timeout=timeout)
        finally:
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


@contextlib.contextmanager
def serving(
    workspace: Workspace, config: ServerConfig | None = None
) -> Iterator[ServerHandle]:
    """Run a server for the duration of a ``with`` block (tests, demos)."""
    handle = ReproServer(workspace, config).start_in_thread()
    try:
        yield handle
    finally:
        handle.stop()


__all__ = ["ReproServer", "ServerHandle", "serving"]
