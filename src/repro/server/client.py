"""A small blocking client for the repro HTTP server.

:class:`ReproClient` speaks the DTO protocol over stdlib
``http.client``: typed methods take/return the same
:class:`~repro.service.dto.InsightRequest` /
:class:`~repro.service.dto.InsightResponse` objects the in-process
``Workspace`` uses, so swapping a direct workspace for a remote server
is a one-line change.  Error envelopes come back as
:class:`ServerResponseError` (status, code, message, ``retry_after``
parsed from the header), and :meth:`request_raw` exposes the unmapped
``(status, headers, payload)`` triple for tests that assert on the wire
format.

Every server response names its request trace in ``X-Repro-Trace-Id``;
the client remembers the latest as :attr:`ReproClient.last_trace_id`,
and :meth:`ReproClient.trace` fetches the span tree behind it.

One client wraps one keep-alive connection and is **not** thread-safe —
give each thread its own instance (they are cheap; the TCP connection
opens lazily on first use).
"""

from __future__ import annotations

import http.client
import json
import urllib.parse
from typing import Any, Mapping, Sequence

from repro.errors import ServerError
from repro.service.dto import InsightRequest, InsightResponse, is_error_envelope


def _parse_retry_after(value: str | None) -> float | None:
    """Parse a ``Retry-After`` header defensively.

    RFC 9110 allows either delay-seconds or an HTTP-date; this server
    only ever sends the numeric form, but proxies in front of it may
    rewrite the header.  A non-numeric value must degrade to ``None``
    rather than mask the real 429/503 with a ``ValueError``.
    """
    if not value:
        return None
    try:
        return float(value)
    except ValueError:
        return None


class ServerResponseError(ServerError):
    """The server answered with a structured error envelope."""

    def __init__(self, status: int, payload: Mapping[str, Any],
                 retry_after: float | None = None):
        self.status = status
        self.payload = dict(payload)
        self.code = payload.get("code", "unknown")
        self.retry_after = retry_after
        super().__init__(
            f"HTTP {status} [{self.code}]: {payload.get('message', '')}"
        )


class RawResponse:
    """One undecoded exchange: status, headers and parsed JSON payload."""

    __slots__ = ("status", "headers", "payload")

    def __init__(self, status: int, headers: dict[str, str], payload: Any):
        self.status = status
        self.headers = headers
        self.payload = payload


class ReproClient:
    """Blocking JSON-over-HTTP client for :class:`~repro.server.ReproServer`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        #: Trace id of the most recent exchange (``X-Repro-Trace-Id``
        #: response header), or ``None`` when the server sent none.
        #: Feed it to :meth:`trace` to see where that request's time went.
        self.last_trace_id: str | None = None
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    # ------------------------------------------------------------------
    # Raw transport
    # ------------------------------------------------------------------
    def request_raw(self, method: str, path: str,
                    payload: Any | None = None,
                    headers: Mapping[str, str] | None = None) -> RawResponse:
        """One HTTP exchange; JSON decoded, no error mapping.

        ``headers`` adds/overrides request headers (e.g. ``Accept:
        text/plain`` for the Prometheus metrics exposition).  Non-JSON
        response bodies are returned as decoded text.
        """
        body = None
        request_headers: dict[str, str] = {}
        if payload is not None:
            text = payload if isinstance(payload, str) else json.dumps(payload)
            body = text.encode("utf-8")
            request_headers["Content-Type"] = "application/json"
        if headers:
            request_headers.update(headers)
        try:
            self._conn.request(method, path, body=body, headers=request_headers)
            raw = self._conn.getresponse()
            data = raw.read()
        except (http.client.HTTPException, ConnectionError):
            # One reconnect, only for a stale keep-alive connection the
            # server closed under us (RemoteDisconnected / reset pipe).
            # Timeouts and other OSErrors propagate: the request may be
            # executing server-side, and silently re-sending it would
            # duplicate work and double the caller's effective timeout.
            self._conn.close()
            self._conn.request(method, path, body=body, headers=request_headers)
            raw = self._conn.getresponse()
            data = raw.read()
        content_type = raw.getheader("Content-Type", "application/json")
        if data and "application/json" in content_type:
            decoded: Any = json.loads(data.decode("utf-8"))
        elif data:
            decoded = data.decode("utf-8")
        else:
            decoded = None
        response = RawResponse(
            raw.status, {k.lower(): v for k, v in raw.getheaders()}, decoded
        )
        self.last_trace_id = response.headers.get("x-repro-trace-id")
        return response

    def _request(self, method: str, path: str,
                 payload: Any | None = None) -> Any:
        response = self.request_raw(method, path, payload)
        if response.status >= 400 or is_error_envelope(response.payload):
            raise ServerResponseError(
                response.status,
                response.payload if isinstance(response.payload, dict) else {},
                retry_after=_parse_retry_after(
                    response.headers.get("retry-after")
                ),
            )
        return response.payload

    # ------------------------------------------------------------------
    # Typed endpoints
    # ------------------------------------------------------------------
    def insights(
        self, request: InsightRequest | Mapping[str, Any],
        debug: bool = False,
        max_lag_seq: int | None = None,
    ) -> InsightResponse:
        """``POST /v1/insights``: one request, one response.

        ``debug=True`` asks the server to echo the request's cost
        snapshot (CPU seconds, rows scanned, candidates, cache/sketch
        probes) under ``response.provenance["cost"]``.  The flag rides
        outside the canonical request key, so debug requests share
        cache entries with their non-debug twins.

        ``max_lag_seq`` declares a staleness bound: the server may serve
        the read from an attached replica whose lag is within that many
        journal sequence numbers (0 = only a fully caught-up replica).
        ``None`` — the default — always reads the primary
        (read-your-writes).  Like ``debug``, it rides outside the
        canonical request key.
        """
        payload = (
            request.to_dict() if isinstance(request, InsightRequest)
            else dict(request)
        )
        if debug:
            payload["debug"] = True
        if max_lag_seq is not None:
            payload["max_lag_seq"] = max_lag_seq
        return InsightResponse.from_dict(
            self._request("POST", "/v1/insights", payload)
        )

    def insights_batch(
        self, requests: Sequence[InsightRequest | Mapping[str, Any]]
    ) -> list[InsightResponse]:
        """``POST /v1/insights:batch``: a client-side batch, in order."""
        items = [
            request.to_dict() if isinstance(request, InsightRequest)
            else dict(request)
            for request in requests
        ]
        payload = self._request(
            "POST", "/v1/insights:batch", {"requests": items}
        )
        return [
            InsightResponse.from_dict(item) for item in payload["responses"]
        ]

    def datasets(self) -> list[dict[str, Any]]:
        """``GET /v1/datasets``: registration/engine status per dataset."""
        return self._request("GET", "/v1/datasets")["datasets"]

    def healthz(self) -> dict[str, Any]:
        """``GET /healthz``: liveness and config echo."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        """``GET /metrics``: the full operations counter document."""
        return self._request("GET", "/metrics")

    def metrics_text(self) -> str:
        """``GET /metrics`` with ``Accept: text/plain``: Prometheus text."""
        response = self.request_raw("GET", "/metrics",
                                    headers={"Accept": "text/plain"})
        if response.status >= 400:
            raise ServerResponseError(
                response.status,
                response.payload if isinstance(response.payload, dict) else {},
            )
        return str(response.payload)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def traces(
        self,
        dataset: str | None = None,
        min_duration_ms: float | None = None,
        limit: int | None = None,
        since_ms: float | None = None,
    ) -> dict[str, Any]:
        """``GET /v1/traces``: recent traces, newest first.

        Answers ``{"tracing": <tracer stats>, "traces": [...]}``; each
        trace is a nested span tree.  Filters are optional: ``dataset``
        keeps traces touching that dataset, ``min_duration_ms`` keeps
        slow ones, ``since_ms`` (Unix epoch milliseconds) keeps traces
        started after that instant — a poll cursor — and ``limit`` caps
        the count.
        """
        params: dict[str, str] = {}
        if dataset is not None:
            params["dataset"] = dataset
        if min_duration_ms is not None:
            params["min_duration_ms"] = str(min_duration_ms)
        if limit is not None:
            params["limit"] = str(limit)
        if since_ms is not None:
            params["since_ms"] = str(since_ms)
        path = "/v1/traces"
        if params:
            path += "?" + urllib.parse.urlencode(params)
        return self._request("GET", path)

    def trace(self, trace_id: str) -> dict[str, Any]:
        """``GET /v1/traces/{id}``: one trace as a nested span tree.

        Raises :class:`ServerResponseError` (404 ``unknown_trace``) when
        the id is unknown or already evicted from the bounded ring.
        """
        quoted = urllib.parse.quote(trace_id, safe="")
        return self._request("GET", f"/v1/traces/{quoted}")["trace"]

    def debug(self, top_k: int | None = None) -> dict[str, Any]:
        """``GET /v1/debug``: ledger, cost windows, watchdog state.

        ``top_k`` overrides how many of the most CPU-expensive recent
        requests the server lists (default: its configured
        ``debug_top_k``).
        """
        path = "/v1/debug"
        if top_k is not None:
            path += "?" + urllib.parse.urlencode({"top_k": str(top_k)})
        return self._request("GET", path)

    def set_slow_threshold(self, slow_ms: float) -> dict[str, Any]:
        """``POST /v1/traces:config``: set the slow-request threshold.

        Requests slower than ``slow_ms`` are logged as structured
        ``slow_request`` events.  Answers the applied tracer state.
        """
        return self._request(
            "POST", "/v1/traces:config", {"slow_ms": slow_ms}
        )["tracing"]

    # ------------------------------------------------------------------
    # Dataset management (live ingestion)
    # ------------------------------------------------------------------
    def put_dataset(
        self,
        name: str,
        rows: Sequence[Mapping[str, Any]] | None = None,
        columns: Mapping[str, Sequence[Any]] | None = None,
        loader: str | None = None,
        kinds: Mapping[str, str] | None = None,
        replace: bool = False,
    ) -> dict[str, Any]:
        """``PUT /v1/datasets/{name}``: register a dataset.

        Exactly one of ``rows`` (inline records), ``columns`` (inline
        columns) or ``loader`` (a server-side registry name) must be
        given.  Answers the new ``{"version", "seq", "source"}``.
        """
        payload: dict[str, Any] = {}
        if loader is not None:
            payload["loader"] = loader
        if rows is not None:
            payload["rows"] = [dict(row) for row in rows]
        if columns is not None:
            payload["columns"] = {key: list(val) for key, val in columns.items()}
        if kinds:
            payload["kinds"] = dict(kinds)
        if replace:
            payload["replace"] = True
        return self._request("PUT", f"/v1/datasets/{name}", payload)

    def append_rows(
        self, name: str, rows: Sequence[Mapping[str, Any]]
    ) -> dict[str, Any]:
        """``POST /v1/datasets/{name}/rows``: append a validated batch.

        Answers the new ingestion identity: ``{"version", "seq",
        "rows_appended", "total_rows", "applied"}``.
        """
        return self._request(
            "POST", f"/v1/datasets/{name}/rows",
            {"rows": [dict(row) for row in rows]},
        )

    def reload_dataset(self, name: str) -> dict[str, Any]:
        """``POST /v1/datasets/{name}/reload``: reload + version bump."""
        return self._request("POST", f"/v1/datasets/{name}/reload", {})

    def flush_dataset(self, name: str) -> dict[str, Any]:
        """``POST /v1/datasets/{name}/flush``: sync the durable journal.

        Answers ``{"version", "seq", "durable"}``; ``durable`` is false
        when the server has no ``data_dir`` (the flush was a no-op).
        """
        return self._request("POST", f"/v1/datasets/{name}/flush", {})

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def journal(
        self, name: str, position: str | None = None,
        max_records: int | None = None,
    ) -> dict[str, Any]:
        """``GET /v1/datasets/{name}/journal``: poll the replication feed.

        ``position`` is the ``"version:seq"`` cursor from a previous
        batch; omit it (or pass a stale one) to receive a reset batch
        carrying the full snapshot-state.  Answers ``{"protocol",
        "dataset", "batch"}`` where ``batch`` is ``None`` for a dataset
        with no durable state yet.
        """
        quoted = urllib.parse.quote(name, safe="")
        params: dict[str, str] = {}
        if position is not None:
            params["from"] = position
        if max_records is not None:
            params["max_records"] = str(max_records)
        path = f"/v1/datasets/{quoted}/journal"
        if params:
            path += "?" + urllib.parse.urlencode(params)
        return self._request("GET", path)

    def promote(self) -> dict[str, Any]:
        """``POST /v1/replica:promote``: make a replica server writable.

        Raises :class:`ServerResponseError` (409 ``not_a_replica``)
        against a primary.
        """
        return self._request("POST", "/v1/replica:promote", {})

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReproClient(http://{self.host}:{self.port})"


__all__ = ["RawResponse", "ReproClient", "ServerResponseError"]
