"""A small blocking client for the repro HTTP server.

:class:`ReproClient` speaks the DTO protocol over stdlib
``http.client``: typed methods take/return the same
:class:`~repro.service.dto.InsightRequest` /
:class:`~repro.service.dto.InsightResponse` objects the in-process
``Workspace`` uses, so swapping a direct workspace for a remote server
is a one-line change.  Error envelopes come back as
:class:`ServerResponseError` (status, code, message, ``retry_after``
parsed from the header), and :meth:`request_raw` exposes the unmapped
``(status, headers, payload)`` triple for tests that assert on the wire
format.

One client wraps one keep-alive connection and is **not** thread-safe —
give each thread its own instance (they are cheap; the TCP connection
opens lazily on first use).
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Mapping, Sequence

from repro.errors import ServerError
from repro.service.dto import InsightRequest, InsightResponse, is_error_envelope


class ServerResponseError(ServerError):
    """The server answered with a structured error envelope."""

    def __init__(self, status: int, payload: Mapping[str, Any],
                 retry_after: float | None = None):
        self.status = status
        self.payload = dict(payload)
        self.code = payload.get("code", "unknown")
        self.retry_after = retry_after
        super().__init__(
            f"HTTP {status} [{self.code}]: {payload.get('message', '')}"
        )


class RawResponse:
    """One undecoded exchange: status, headers and parsed JSON payload."""

    __slots__ = ("status", "headers", "payload")

    def __init__(self, status: int, headers: dict[str, str], payload: Any):
        self.status = status
        self.headers = headers
        self.payload = payload


class ReproClient:
    """Blocking JSON-over-HTTP client for :class:`~repro.server.ReproServer`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    # ------------------------------------------------------------------
    # Raw transport
    # ------------------------------------------------------------------
    def request_raw(self, method: str, path: str,
                    payload: Any | None = None) -> RawResponse:
        """One HTTP exchange; JSON decoded, no error mapping."""
        body = None
        headers = {}
        if payload is not None:
            text = payload if isinstance(payload, str) else json.dumps(payload)
            body = text.encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            self._conn.request(method, path, body=body, headers=headers)
            raw = self._conn.getresponse()
            data = raw.read()
        except (http.client.HTTPException, ConnectionError):
            # One reconnect, only for a stale keep-alive connection the
            # server closed under us (RemoteDisconnected / reset pipe).
            # Timeouts and other OSErrors propagate: the request may be
            # executing server-side, and silently re-sending it would
            # duplicate work and double the caller's effective timeout.
            self._conn.close()
            self._conn.request(method, path, body=body, headers=headers)
            raw = self._conn.getresponse()
            data = raw.read()
        decoded = json.loads(data.decode("utf-8")) if data else None
        return RawResponse(
            raw.status, {k.lower(): v for k, v in raw.getheaders()}, decoded
        )

    def _request(self, method: str, path: str,
                 payload: Any | None = None) -> Any:
        response = self.request_raw(method, path, payload)
        if response.status >= 400 or is_error_envelope(response.payload):
            retry_after = response.headers.get("retry-after")
            raise ServerResponseError(
                response.status,
                response.payload if isinstance(response.payload, dict) else {},
                retry_after=float(retry_after) if retry_after else None,
            )
        return response.payload

    # ------------------------------------------------------------------
    # Typed endpoints
    # ------------------------------------------------------------------
    def insights(
        self, request: InsightRequest | Mapping[str, Any]
    ) -> InsightResponse:
        """``POST /v1/insights``: one request, one response."""
        payload = (
            request.to_dict() if isinstance(request, InsightRequest)
            else dict(request)
        )
        return InsightResponse.from_dict(
            self._request("POST", "/v1/insights", payload)
        )

    def insights_batch(
        self, requests: Sequence[InsightRequest | Mapping[str, Any]]
    ) -> list[InsightResponse]:
        """``POST /v1/insights:batch``: a client-side batch, in order."""
        items = [
            request.to_dict() if isinstance(request, InsightRequest)
            else dict(request)
            for request in requests
        ]
        payload = self._request(
            "POST", "/v1/insights:batch", {"requests": items}
        )
        return [
            InsightResponse.from_dict(item) for item in payload["responses"]
        ]

    def datasets(self) -> list[dict[str, Any]]:
        """``GET /v1/datasets``: registration/engine status per dataset."""
        return self._request("GET", "/v1/datasets")["datasets"]

    def healthz(self) -> dict[str, Any]:
        """``GET /healthz``: liveness and config echo."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        """``GET /metrics``: the full operations counter document."""
        return self._request("GET", "/metrics")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReproClient(http://{self.host}:{self.port})"


__all__ = ["RawResponse", "ReproClient", "ServerResponseError"]
