"""Per-request resource accounting: cost recorders and rolling windows.

Every request the :class:`~repro.service.Workspace` handles accumulates
a :class:`CostRecorder` — CPU seconds (``time.thread_time``, measured
per thread and carried across :class:`~repro.core.executor.ParallelExecutor`
shards by the tracer's ``carry_current`` machinery), rows scanned,
candidates enumerated and pruned, sketch probes, result-cache hits and
misses, and bytes journaled.  The recorder rides the same ambient
(thread-local) channel as the current span: layers with no recorder
reference (column scans, sketch probes, the journal) call the
module-level ``record_*`` helpers, which are a thread-local read and a
``None`` check when no request is being accounted.

Completed recorders land in the workspace's :class:`CostAggregator`:
rolling per-dataset and per-insight-class windows (incrementally
maintained sums over the last ``window`` requests touching that key),
lifetime monotone totals (Prometheus counters must never decrease), a
per-request CPU histogram, and the ring of recent requests behind
``/v1/debug``'s top-K most expensive listing.

A request that touches several datasets or classes (a batch, a
multi-class query) is recorded into **each** touched key's window, so
per-key sums overlap across keys; the global totals count each request
once.

CPU accounting is nesting-safe: a thread with an open CPU window (the
handler thread inside ``Workspace.handle``) contributes nothing extra
when an inner window opens on the same thread (a serial executor
running shards inline), while shards on pool threads open their own
windows and their CPU sums into the same recorder.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterable, Iterator

__all__ = [
    "CostRecorder",
    "CostAggregator",
    "attach_recorder",
    "carry_cost",
    "current_recorder",
    "record_cache_probe",
    "record_candidates",
    "record_journal_bytes",
    "record_rows",
    "record_sketch_probe",
]

_ambient = threading.local()


def current_recorder() -> "CostRecorder | None":
    """The recorder attached to the current thread, if any."""
    return getattr(_ambient, "recorder", None)


@contextmanager
def attach_recorder(recorder: "CostRecorder | None") -> Iterator["CostRecorder | None"]:
    """Make ``recorder`` ambient for the body (no-op when ``None``)."""
    if recorder is None:
        yield None
        return
    previous = getattr(_ambient, "recorder", None)
    _ambient.recorder = recorder
    try:
        yield recorder
    finally:
        _ambient.recorder = previous


def carry_cost(fn):
    """Wrap ``fn`` so the calling thread's recorder rides to the worker.

    The wrapper re-attaches the recorder on the worker thread and opens
    a CPU window there, so sharded work bills its CPU to the request
    that sharded it.  Identity when no recorder is ambient.
    """
    recorder = current_recorder()
    if recorder is None:
        return fn

    def carried(*args, **kwargs):
        with attach_recorder(recorder), recorder.cpu_window():
            return fn(*args, **kwargs)

    return carried


# ---------------------------------------------------------------------------
# Hot-path helpers: one thread-local read when no request is accounted.
# ---------------------------------------------------------------------------
def record_rows(n: int) -> None:
    """Bill ``n`` scanned rows to the current request, if one is accounted."""
    recorder = getattr(_ambient, "recorder", None)
    if recorder is not None and n:
        recorder.add("rows_scanned", n)


def record_sketch_probe(n: int = 1) -> None:
    """Bill ``n`` sketch probes to the current request."""
    recorder = getattr(_ambient, "recorder", None)
    if recorder is not None:
        recorder.add("sketch_probes", n)


def record_candidates(enumerated: int, pruned: int) -> None:
    """Bill an enumeration stage's candidate counts to the current request."""
    recorder = getattr(_ambient, "recorder", None)
    if recorder is not None:
        recorder.add("candidates_enumerated", enumerated)
        if pruned:
            recorder.add("candidates_pruned", pruned)


def record_journal_bytes(n: int) -> None:
    """Bill ``n`` journaled bytes to the current request."""
    recorder = getattr(_ambient, "recorder", None)
    if recorder is not None and n:
        recorder.add("bytes_journaled", n)


def record_cache_probe(hit: bool) -> None:
    """Record the result-cache probe outcome for the current request."""
    recorder = getattr(_ambient, "recorder", None)
    if recorder is not None:
        recorder.add("cache_hits" if hit else "cache_misses", 1)


class CostRecorder:
    """One request's accumulated resource costs (thread-safe)."""

    #: The integer counters, in snapshot order.
    COUNTERS = (
        "rows_scanned",
        "candidates_enumerated",
        "candidates_pruned",
        "sketch_probes",
        "cache_hits",
        "cache_misses",
        "bytes_journaled",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._open_threads: set[int] = set()
        self.cpu_seconds = 0.0
        self.wall_seconds = 0.0
        self.rows_scanned = 0
        self.candidates_enumerated = 0
        self.candidates_pruned = 0
        self.sketch_probes = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.bytes_journaled = 0
        self._started = time.perf_counter()

    def add(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    @contextmanager
    def cpu_window(self) -> Iterator[None]:
        """Accumulate this thread's CPU time over the body.

        Nesting-safe: if this thread already has a window open, the
        inner window is a no-op — the outer window's delta already
        covers the inner body (a serial executor running a shard on the
        submitting thread must not double-bill).
        """
        ident = threading.get_ident()
        with self._lock:
            nested = ident in self._open_threads
            if not nested:
                self._open_threads.add(ident)
        if nested:
            yield
            return
        start = time.thread_time()
        try:
            yield
        finally:
            delta = time.thread_time() - start
            with self._lock:
                self._open_threads.discard(ident)
                self.cpu_seconds += delta

    def finish(self) -> "CostRecorder":
        """Stamp the wall-clock duration; returns ``self`` for chaining."""
        self.wall_seconds = time.perf_counter() - self._started
        return self

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            out: dict[str, Any] = {
                "cpu_seconds": self.cpu_seconds,
                "wall_seconds": self.wall_seconds,
            }
            for name in self.COUNTERS:
                out[name] = getattr(self, name)
        return out


class _Window:
    """Incrementally maintained sums over the last ``capacity`` snapshots."""

    __slots__ = ("snapshots", "sums", "count")

    def __init__(self, capacity: int):
        self.snapshots: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.sums: dict[str, float] = {}
        self.count = 0

    def add(self, snapshot: dict[str, Any]) -> None:
        if len(self.snapshots) == self.snapshots.maxlen:
            oldest = self.snapshots[0]
            for key, value in oldest.items():
                if isinstance(value, (int, float)):
                    self.sums[key] = self.sums.get(key, 0) - value
        self.snapshots.append(snapshot)
        self.count += 1
        for key, value in snapshot.items():
            if isinstance(value, (int, float)):
                self.sums[key] = self.sums.get(key, 0) + value

    def summary(self) -> dict[str, Any]:
        return {
            "requests": len(self.snapshots),
            "requests_total": self.count,
            **{key: self.sums.get(key, 0) for key in ("cpu_seconds", "wall_seconds")},
            **{key: int(self.sums.get(key, 0)) for key in CostRecorder.COUNTERS},
        }


class CostAggregator:
    """Rolling per-key cost windows plus lifetime totals and top-K.

    Owned by the workspace; one ``record`` call per completed request.
    ``window`` bounds both the per-key rolling windows and the recent
    ring the top-K listing sorts.
    """

    def __init__(self, window: int = 256):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        # The tracer's histogram type is reused for the CPU distribution;
        # imported lazily because the tracer imports this module.
        from repro.obs.tracer import _DurationHistogram

        self._lock = threading.Lock()
        self._window = window
        self._datasets: dict[str, _Window] = {}
        self._classes: dict[str, _Window] = {}
        self._recent: deque[dict[str, Any]] = deque(maxlen=window)
        self._totals: dict[str, float] = {}
        self._requests_total = 0
        self._cpu_histogram = _DurationHistogram()

    def record(
        self,
        snapshot: dict[str, Any],
        datasets: Iterable[str],
        classes: Iterable[str] = (),
        trace_id: str | None = None,
    ) -> None:
        datasets = sorted(set(datasets))
        classes = sorted(set(classes))
        entry = dict(snapshot)
        entry["datasets"] = datasets
        entry["insight_classes"] = classes
        if trace_id is not None:
            entry["trace_id"] = trace_id
        with self._lock:
            self._requests_total += 1
            for key, value in snapshot.items():
                if isinstance(value, (int, float)):
                    self._totals[key] = self._totals.get(key, 0) + value
            self._cpu_histogram.observe(float(snapshot.get("cpu_seconds", 0.0)))
            for name in datasets:
                window = self._datasets.get(name)
                if window is None:
                    window = self._datasets[name] = _Window(self._window)
                window.add(snapshot)
            for name in classes:
                window = self._classes.get(name)
                if window is None:
                    window = self._classes[name] = _Window(self._window)
                window.add(snapshot)
            self._recent.append(entry)

    def forget_dataset(self, name: str) -> None:
        """Drop a closed dataset's rolling window (totals stay monotone)."""
        with self._lock:
            self._datasets.pop(name, None)

    def top_requests(self, k: int) -> list[dict[str, Any]]:
        """The ``k`` most CPU-expensive requests in the recent window."""
        with self._lock:
            recent = list(self._recent)
        recent.sort(key=lambda entry: entry.get("cpu_seconds", 0.0), reverse=True)
        return recent[: max(0, k)]

    def snapshot(self, top_k: int = 0) -> dict[str, Any]:
        with self._lock:
            out: dict[str, Any] = {
                "window": self._window,
                "requests_total": self._requests_total,
                "totals": {
                    key: self._totals.get(key, 0)
                    for key in ("cpu_seconds", "wall_seconds", *CostRecorder.COUNTERS)
                },
                "datasets": {
                    name: window.summary()
                    for name, window in sorted(self._datasets.items())
                },
                "classes": {
                    name: window.summary()
                    for name, window in sorted(self._classes.items())
                },
                "cpu_seconds_histogram": self._cpu_histogram.snapshot(),
            }
        if top_k:
            out["top_requests"] = self.top_requests(top_k)
        return out
