"""``repro.obs`` — end-to-end request tracing and structured events.

The observability substrate for the serving stack: a stdlib-only tracing
layer (:mod:`repro.obs.tracer`) whose spans thread through the HTTP
server, admission/coalescing, the workspace, the staged pipeline and the
durable WAL; a structured single-line-JSON event log
(:mod:`repro.obs.events`, logger name ``repro.obs.events``); and the
:class:`~repro.obs.config.ObsConfig` knobs (``REPRO_OBS_*`` env / CLI)
that switch it all on and off.

Design constraints, in order of importance:

* **Near-zero hot-path cost.**  Recording a finished span is one
  thread-local list append — no lock.  The single lock in the package
  (``Tracer._drain_lock``, declared as ``obs.trace`` in the analyzer's
  hierarchy) is taken only when a *root* span completes and the
  thread-local buffers are drained into the trace ring.
* **No dependencies on the layers it observes.**  ``repro.obs`` imports
  only the standard library, so ``repro.core``, ``repro.ingest`` and
  ``repro.service`` can all import it without cycles.
* **Determinism-safe.**  Spans are timed with ``perf_counter``; the
  wall clock appears only on root spans and is injectable.
"""

from repro.obs.config import ObsConfig
from repro.obs.tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    bind,
    carry_current,
    current_span,
    obs_span,
)

__all__ = [
    "NOOP_SPAN",
    "ObsConfig",
    "Span",
    "Tracer",
    "bind",
    "carry_current",
    "current_span",
    "obs_span",
]
