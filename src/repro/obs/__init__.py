"""``repro.obs`` — tracing, structured events, and resource accounting.

The observability substrate for the serving stack: a stdlib-only tracing
layer (:mod:`repro.obs.tracer`) whose spans thread through the HTTP
server, admission/coalescing, the workspace, the staged pipeline and the
durable WAL; a structured single-line-JSON event log
(:mod:`repro.obs.events`, logger name ``repro.obs.events``); per-request
cost attribution and rolling cost windows (:mod:`repro.obs.resources`);
the incremental memory ledger (:mod:`repro.obs.ledger`); watchdogs for
quiet degradation (:mod:`repro.obs.watchdog`); and the
:class:`~repro.obs.config.ObsConfig` knobs (``REPRO_OBS_*`` env / CLI)
that switch it all on and off.

Design constraints, in order of importance:

* **Near-zero hot-path cost.**  Recording a finished span is one
  thread-local list append — no lock.  Cost attribution piggybacks on
  the same ambient channel: each ``record_*`` helper is one
  thread-local read plus a ``None`` check when no request is being
  accounted.
* **No dependencies on the layers it observes.**  ``repro.obs`` imports
  only the standard library (the ledger additionally numpy), so
  ``repro.core``, ``repro.ingest`` and ``repro.service`` can all import
  it without cycles.  The lock-wait watchdog's import of
  ``repro.analysis`` is deferred to installation.
* **Determinism-safe.**  Spans are timed with ``perf_counter``; CPU is
  ``time.thread_time``; the wall clock appears only on root spans and
  is injectable.
"""

from repro.obs.config import ObsConfig
from repro.obs.ledger import MemoryLedger, deep_sizeof, table_bytes
from repro.obs.resources import (
    CostAggregator,
    CostRecorder,
    attach_recorder,
    carry_cost,
    current_recorder,
    record_cache_probe,
    record_candidates,
    record_journal_bytes,
    record_rows,
    record_sketch_probe,
)
from repro.obs.tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    bind,
    carry_current,
    current_span,
    obs_span,
    trace_entry_bytes,
)
from repro.obs.watchdog import (
    LockWaitWatchdog,
    LoopLagMonitor,
    StallDetector,
    install_lock_wait,
    uninstall_lock_wait,
)

__all__ = [
    "NOOP_SPAN",
    "CostAggregator",
    "CostRecorder",
    "LockWaitWatchdog",
    "LoopLagMonitor",
    "MemoryLedger",
    "ObsConfig",
    "Span",
    "StallDetector",
    "Tracer",
    "attach_recorder",
    "bind",
    "carry_cost",
    "carry_current",
    "current_recorder",
    "current_span",
    "deep_sizeof",
    "install_lock_wait",
    "obs_span",
    "record_cache_probe",
    "record_candidates",
    "record_journal_bytes",
    "record_rows",
    "record_sketch_probe",
    "table_bytes",
    "trace_entry_bytes",
    "uninstall_lock_wait",
]
