"""The memory ledger: incremental byte accounting for long-lived state.

Walking a live workspace with ``sys.getsizeof`` on every ``/v1/debug``
read would stall the serving path behind O(heap) traversals, so the
ledger inverts the flow: each owner of long-lived state sizes it **at
its mutation points** — the workspace on engine swap / append /
rebuild, the result cache on insert and evict, the tracer on ring
publish and evict, the journal on segment append and rotation — and the
read side only merges a handful of integer counters.

Two kinds of accounting meet here:

* components the :class:`~repro.service.Workspace` sizes directly
  (per-dataset ``table`` and ``sketches`` bytes) live in a
  :class:`MemoryLedger` instance via :meth:`MemoryLedger.set`;
* components that already own a lock and a counter (the result cache,
  the trace ring, the durable journal) keep their own incremental
  totals and are merged into the ledger snapshot at read time.

:func:`deep_sizeof` is the test oracle: a recursive ``getsizeof`` walk
(numpy-aware, cycle-safe) that the incremental counters are checked
against after append/rebuild/eviction churn.  It is deliberately not
used on any serving path.
"""

from __future__ import annotations

import sys
import threading
from typing import Any

import numpy as np

__all__ = ["MemoryLedger", "deep_sizeof", "table_bytes"]

_MACHINERY_TYPES = (type(threading.Lock()), type(threading.RLock()))


class MemoryLedger:
    """Thread-safe ``(component, dataset) -> bytes`` counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[tuple[str, str | None], int] = {}

    def set(self, component: str, n_bytes: int, dataset: str | None = None) -> None:
        """Record the absolute size of one component (mutation-point call)."""
        with self._lock:
            self._entries[(component, dataset)] = int(n_bytes)

    def add(self, component: str, delta: int, dataset: str | None = None) -> None:
        """Adjust one component's size by ``delta`` bytes."""
        key = (component, dataset)
        with self._lock:
            self._entries[key] = self._entries.get(key, 0) + int(delta)

    def get(self, component: str, dataset: str | None = None) -> int:
        with self._lock:
            return self._entries.get((component, dataset), 0)

    def forget_dataset(self, dataset: str) -> None:
        """Drop every component row for a closed/replaced dataset."""
        with self._lock:
            for key in [key for key in self._entries if key[1] == dataset]:
                del self._entries[key]

    def snapshot(self, extra: dict[str, int] | None = None) -> dict[str, Any]:
        """Aggregate view: per-component totals, per-dataset breakdown.

        ``extra`` merges externally maintained component counters (the
        result cache, the trace ring, the journal) into the same
        document so ``/v1/debug`` reports one complete ledger.
        """
        with self._lock:
            entries = dict(self._entries)
        components: dict[str, int] = {}
        datasets: dict[str, dict[str, int]] = {}
        for (component, dataset), n_bytes in entries.items():
            components[component] = components.get(component, 0) + n_bytes
            if dataset is not None:
                datasets.setdefault(dataset, {})[component] = n_bytes
        for component, n_bytes in (extra or {}).items():
            components[component] = components.get(component, 0) + int(n_bytes)
        return {
            "components": dict(sorted(components.items())),
            "datasets": {
                name: dict(sorted(parts.items()))
                for name, parts in sorted(datasets.items())
            },
            "total_bytes": sum(components.values()),
        }


def table_bytes(table) -> int:
    """Size a :class:`~repro.data.table.DataTable` without a row walk.

    O(columns): numpy *base* allocations (deduplicated — sibling
    columns are often strided views into one shared matrix, and a view
    pins its whole base buffer regardless of its logical ``nbytes``)
    plus category label strings.  The array payloads dominate any real
    table, which is what keeps the incremental ledger within tolerance
    of the recursive :func:`deep_sizeof` oracle, whose array accounting
    this mirrors exactly.
    """
    total = sys.getsizeof(table)
    seen: set[int] = set()

    def count_array(array) -> None:
        nonlocal total
        if array is None:
            return
        base = array.base if array.base is not None else array
        if id(base) in seen:
            return
        seen.add(id(base))
        total += int(base.nbytes)

    for column in table.columns():
        total += sys.getsizeof(column)
        count_array(column.mask)
        count_array(getattr(column, "values", None))
        codes = getattr(column, "codes", None)
        count_array(codes)
        if codes is not None:
            for label in column.categories:
                total += sys.getsizeof(label)
    return total


def deep_sizeof(obj: Any, _seen: set[int] | None = None) -> int:
    """Recursive ``getsizeof`` walk: the ledger's test oracle.

    Numpy-aware (buffer ``nbytes``, counted once per base allocation),
    cycle-safe, and skips machinery that is not data (modules, types,
    functions, locks).  Slow by design — tests only.
    """
    seen = _seen if _seen is not None else set()
    if isinstance(obj, np.ndarray):
        # ``getsizeof`` of a data-owning array already includes its
        # buffer; a view's excludes it.  Count header + buffer exactly
        # once per base allocation, whichever alias is seen first.
        if obj.base is None:
            header = sys.getsizeof(obj) - int(obj.nbytes)
            base = obj
        else:
            header = sys.getsizeof(obj)
            base = obj.base
        total = header
        if id(base) not in seen:
            seen.add(id(base))
            total += int(base.nbytes)
        return total
    marker = id(obj)
    if marker in seen:
        return 0
    seen.add(marker)
    if isinstance(obj, (type, type(sys))) or callable(obj):
        return 0
    if isinstance(obj, _MACHINERY_TYPES):
        return 0
    total = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            total += deep_sizeof(key, seen)
            total += deep_sizeof(value, seen)
        return total
    if isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            total += deep_sizeof(item, seen)
        return total
    if isinstance(obj, (str, bytes, bytearray, int, float, complex, bool)) or obj is None:
        return total
    if hasattr(obj, "__dict__"):
        total += deep_sizeof(vars(obj), seen)
    for slots_cls in type(obj).__mro__:
        for slot in getattr(slots_cls, "__slots__", ()):
            if slot in ("__dict__", "__weakref__"):
                continue
            try:
                value = getattr(obj, slot)
            except AttributeError:
                continue
            total += deep_sizeof(value, seen)
    return total
