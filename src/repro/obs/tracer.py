"""Spans, ambient context and the completed-trace ring.

One :class:`Tracer` (owned by the workspace, shared by the HTTP server)
hands out :class:`Span` objects.  The lifecycle is deliberately
asymmetric between sync and async code:

* **Sync code** uses ``with tracer.span(...)`` (or the module helper
  :func:`obs_span` when it has no tracer reference).  Entering the span
  makes it the thread's *ambient* span, so nested layers — the
  pipeline's stages, the journal — parent to it without any plumbing.
* **Async code** uses :meth:`Tracer.start_span` and must call
  :meth:`Span.end` in a ``finally``.  Manual spans never touch the
  ambient stack: coroutines interleave on one thread, so thread-local
  context on the event loop would cross-wire concurrent requests.
  Parents are passed explicitly instead.  (The ``trace-hygiene`` lint
  rule enforces both disciplines.)

Context crosses thread boundaries explicitly: :func:`bind` pins a given
span as ambient around a callable (the server wraps its
``run_in_executor`` dispatches with it) and :func:`carry_current`
captures the submitting thread's ambient span so ``ParallelExecutor``
workers re-parent to the request that sharded onto them.

Timing is monotonic (``perf_counter``) everywhere; the injectable wall
clock is consulted once per trace, on the root span, so the ranking
core's determinism contract is never in reach.  Each trace owns one
completed-span bucket: the root creates it, children inherit the
reference, and ending a span is a single GIL-atomic ``list.append``
into it — no lock, no registry, no cross-trace bookkeeping.  When a
*root* completes, its bucket is published under the one declared lock
(``obs.trace`` in the analyzer hierarchy) into the bounded ring served
by ``/v1/traces``, per-span-name duration histograms are updated, and a
``slow_request`` event fires if the root exceeded ``slow_ms``.  A trace
whose root never completes holds no tracer state at all — its bucket is
garbage-collected with its spans.  The nested node tree is assembled
lazily, on the first ``trace()`` read — most traces are evicted unread,
and assembly is the most expensive step by far.  Root spans must never
end while any other lock is held — every instrumented root ends after
its layer's locks are released.
"""

from __future__ import annotations

import itertools
import sys
import threading
import time
from collections import deque
from typing import Any, Callable

from repro.obs.config import ObsConfig
from repro.obs.events import emit as _emit_event
from repro.obs.resources import carry_cost

#: Upper bounds (seconds) of per-span duration histogram buckets.
#: Kept value-identical to ``repro.server.metrics.LATENCY_BUCKETS`` (the
#: server renders both through one Prometheus helper) but duplicated
#: here: ``repro.obs`` must not import server modules.
SPAN_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_ambient = threading.local()


def current_span() -> "Span | None":
    """The innermost ambient span on this thread (None outside any)."""
    stack = getattr(_ambient, "stack", None)
    if stack:
        return stack[-1]
    return None


def _push_ambient(span: "Span") -> None:
    stack = getattr(_ambient, "stack", None)
    if stack is None:
        stack = []
        _ambient.stack = stack
    stack.append(span)


def _pop_ambient(span: "Span") -> None:
    stack = getattr(_ambient, "stack", None)
    if stack and stack[-1] is span:
        stack.pop()


class Span:
    """One timed operation in a trace.  Create via the tracer, not directly.

    ``span_id``/``parent_id`` are plain ints here; they are rendered as
    hex strings only when a trace tree is assembled for ``/v1/traces``.
    ``bucket`` is the trace's own completed-span list: the root creates
    it, children inherit the reference, and :meth:`end` appends to it —
    one GIL-atomic append, no lock, no cross-trace bookkeeping.  A trace
    whose root never completes is garbage-collected with its spans; it
    can never leak into the tracer.  The hot-path methods are
    deliberately flat — every helper call costs more than the work it
    wraps at this size.
    """

    __slots__ = ("tracer", "name", "trace_id", "span_id", "parent_id",
                 "attributes", "start_wall", "start_pc", "duration",
                 "bucket", "cost", "_ended", "_pushed")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 span_id: int, parent_id: int | None,
                 attributes: dict[str, Any], start_wall: float | None,
                 start_pc: float, bucket: list):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.start_wall = start_wall  # wall clock; roots only
        self.start_pc = start_pc
        self.bucket = bucket
        self.cost = None  # CostRecorder; published with the trace
        self.duration: float | None = None
        self._ended = False
        self._pushed = False

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_cost(self, recorder) -> None:
        """Attach a request's cost recorder; rides into the trace ring."""
        self.cost = recorder

    def end(self) -> None:
        """Finish the span (idempotent; only the first call records).

        Manual (``start_span``) spans only: never entered as context
        managers, so no ambient bookkeeping here — ``__exit__`` pops its
        own push before delegating.  (The lint's trace-hygiene rule pins
        each creation API to its matching completion shape.)
        """
        if self._ended:
            return
        self._ended = True
        self.duration = self.tracer.clock() - self.start_pc
        # Lock-free hot path: one GIL-atomic append per completed span.
        self.bucket.append(self)
        if self.parent_id is None:
            self.tracer._complete_root(self)

    def __enter__(self) -> "Span":
        self._pushed = True
        stack = getattr(_ambient, "stack", None)
        if stack is None:
            stack = _ambient.stack = []
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._pushed:
            self._pushed = False
            stack = getattr(_ambient, "stack", None)
            if stack and stack[-1] is self:
                stack.pop()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self.end()
        return False


class _NoopSpan:
    """Shared do-nothing span: what a disabled tracer hands out."""

    __slots__ = ()
    tracer = None
    trace_id = None
    span_id = None
    parent_id = None
    name = "noop"
    duration = None
    attributes: dict[str, Any] = {}

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_cost(self, recorder) -> None:
        pass

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class _DurationHistogram:
    """Unlocked fixed-bucket histogram (mutated only under the drain lock).

    ``snapshot()`` is schema-compatible with the server's
    ``LatencyHistogram.snapshot()`` so one Prometheus renderer serves
    both, and additionally reports ``p99_seconds`` and the bucket
    ``bounds`` so dashboards need not hard-code them.
    """

    __slots__ = ("_bounds", "_counts", "_count", "_sum", "_max")

    def __init__(self, bounds: tuple[float, ...] = SPAN_BUCKETS):
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        index = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if seconds <= bound:
                index = i
                break
        self._counts[index] += 1
        self._count += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds

    def _quantile(self, q: float) -> float | None:
        if self._count == 0:
            return None
        target = q * self._count
        cumulative = 0
        for i, bound in enumerate(self._bounds):
            cumulative += self._counts[i]
            if cumulative >= target:
                return bound
        return self._max

    def snapshot(self) -> dict[str, Any]:
        buckets = {
            f"le_{bound:g}": self._counts[i]
            for i, bound in enumerate(self._bounds)
        }
        buckets["le_inf"] = self._counts[-1]
        return {
            "count": self._count,
            "sum_seconds": self._sum,
            "max_seconds": self._max,
            "p50_seconds": self._quantile(0.50),
            "p95_seconds": self._quantile(0.95),
            "p99_seconds": self._quantile(0.99),
            "bounds": list(self._bounds),
            "buckets": buckets,
        }


class Tracer:
    """Span factory, thread-local buffers, and the completed-trace ring."""

    def __init__(self, config: ObsConfig | None = None,
                 wall_clock: Callable[[], float] = time.time,
                 clock: Callable[[], float] = time.perf_counter):
        config = config or ObsConfig()
        self.enabled = config.enabled
        self.ring_capacity = config.ring_capacity
        self.slow_ms = config.slow_ms
        self.account_memory = config.resources_enabled
        self._wall = wall_clock
        #: The monotonic clock (public: :meth:`record_span` callers time
        #: with the same clock spans use, so tests can inject a fake).
        self.clock = clock
        self._ids = itertools.count(1)
        # The package's only lock: a level-30 leaf ("obs.trace") in the
        # declared hierarchy.  Guards the ring, the histograms and the
        # counters; never wraps another lock.
        self._drain_lock = threading.Lock()
        self._ring: deque = deque(maxlen=config.ring_capacity)
        self._histograms: dict[str, _DurationHistogram] = {}
        self._traces_recorded = 0
        self._spans_recorded = 0
        self._ring_evictions = 0
        self._ring_bytes = 0

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    # span() and start_span() construct identically; the two names exist
    # because the *caller-side* discipline differs (with-statement vs
    # try/finally — see the module docstring and the trace-hygiene lint
    # rule).  Their bodies are duplicated rather than shared: on the
    # cached hot path a helper call costs as much as the construction.
    def span(self, name: str, parent: "Span | _NoopSpan | None" = None,
             **attributes: Any):
        """A span to use as a context manager (sync code).

        Without an explicit ``parent`` the thread's ambient span is
        used; with neither, the span roots a new trace.  Disabled
        tracers return the shared no-op span.
        """
        if not self.enabled:
            return NOOP_SPAN
        if parent is None:
            stack = getattr(_ambient, "stack", None)
            parent = stack[-1] if stack else None
        if parent is None or parent.trace_id is None:
            # No (real) parent: root a new trace with a fresh bucket.
            return Span(self, name, format(next(self._ids), "012x"),
                        next(self._ids), None, attributes,
                        self._wall(), self.clock(), [])
        return Span(self, name, parent.trace_id, next(self._ids),
                    parent.span_id, attributes, None, self.clock(),
                    parent.bucket)

    def start_span(self, name: str, parent: "Span | _NoopSpan | None" = None,
                   **attributes: Any):
        """A manually-ended span (async code): ``end()`` it in a finally.

        Never touches the ambient stack — event-loop code must pass
        parents explicitly.
        """
        if not self.enabled:
            return NOOP_SPAN
        if parent is None:
            stack = getattr(_ambient, "stack", None)
            parent = stack[-1] if stack else None
        if parent is None or parent.trace_id is None:
            return Span(self, name, format(next(self._ids), "012x"),
                        next(self._ids), None, attributes,
                        self._wall(), self.clock(), [])
        return Span(self, name, parent.trace_id, next(self._ids),
                    parent.span_id, attributes, None, self.clock(),
                    parent.bucket)

    def record_span(self, name: str, parent: "Span | _NoopSpan | None",
                    start_pc: float, **attributes: Any) -> None:
        """Record an already-elapsed operation as a completed child span.

        For hot paths that should not pay for a span when nothing
        noteworthy happened: read ``tracer.clock()`` before the
        operation, and synthesize the span afterwards only if the
        elapsed time is worth keeping (the server does this for
        ``admission.wait``, which is ~0 on an unloaded server).  No-op
        when disabled or without a real parent — synthesized spans never
        root a trace.
        """
        if not self.enabled or parent is None or parent.trace_id is None:
            return
        span = Span(self, name, parent.trace_id, next(self._ids),
                    parent.span_id, attributes, None, start_pc,
                    parent.bucket)
        span._ended = True
        span.duration = self.clock() - start_pc
        parent.bucket.append(span)

    def configure(self, config: ObsConfig) -> None:
        """Apply a new :class:`ObsConfig` (server startup override)."""
        with self._drain_lock:
            self.enabled = config.enabled
            self.slow_ms = config.slow_ms
            self.account_memory = config.resources_enabled
            if config.ring_capacity != self.ring_capacity:
                self.ring_capacity = config.ring_capacity
                before = len(self._ring)
                self._ring = deque(self._ring, maxlen=config.ring_capacity)
                dropped = before - len(self._ring)
                if dropped > 0:
                    # A shrink evicts the oldest entries silently inside
                    # deque(); re-account them here.
                    self._ring_evictions += dropped
                    self._ring_bytes = sum(
                        entry.get("_bytes", 0) for entry in self._ring
                    )

    def set_slow_ms(self, slow_ms: float) -> float:
        """Set the slow-request threshold; returns the applied value."""
        if slow_ms < 0:
            raise ValueError(f"slow_ms must be >= 0, got {slow_ms}")
        self.slow_ms = float(slow_ms)
        return self.slow_ms

    # ------------------------------------------------------------------
    # Completion (the hot path lives in Span.end(); the root drain here)
    # ------------------------------------------------------------------
    def _complete_root(self, root: Span) -> None:
        slow: dict[str, Any] | None = None
        # Freeze the trace's bucket before publishing: a straggler span
        # ending after its root (a cut-short request) appends to the
        # original list, which nothing references once its spans are
        # gone — it is garbage-collected, never recorded.
        spans = root.bucket[:]
        duration_ms = round((root.duration or 0.0) * 1000.0, 3)
        # The request's cost recorder rides on whichever span the
        # workspace attached it to (usually ``workspace.handle``); the
        # snapshot is taken before the drain lock, like everything else
        # that can be.
        cost: dict[str, Any] | None = None
        for span in spans:
            if span.cost is not None:
                cost = span.cost.snapshot()
                break
        entry = {
            "trace_id": root.trace_id,
            "name": root.name,
            "start_unix": root.start_wall,
            "duration_ms": duration_ms,
            "dataset": root.attributes.get("dataset"),
            "n_spans": len(spans),
            "_root_span": root,
            "_spans": spans,
        }
        if cost is not None:
            entry["cost"] = cost
        entry_bytes = trace_entry_bytes(entry) if self.account_memory else 0
        entry["_bytes"] = entry_bytes
        with self._drain_lock:
            # The tree is NOT assembled here: the ring keeps the raw
            # spans and builds node dicts lazily on the first
            # ``trace()`` read.  Assembly costs more than everything
            # else on this path combined, and most traces are evicted
            # unread — paying it per-request would dominate the cached
            # hot path's tracing overhead.
            if len(self._ring) == self._ring.maxlen:
                # The deque is about to evict its oldest entry silently;
                # count it and return its bytes before the append.
                self._ring_evictions += 1
                self._ring_bytes -= self._ring[0].get("_bytes", 0)
            self._ring.append(entry)
            self._ring_bytes += entry_bytes
            self._traces_recorded += 1
            self._spans_recorded += len(spans)
            for span in spans:
                histogram = self._histograms.get(span.name)
                if histogram is None:
                    histogram = self._histograms[span.name] = _DurationHistogram()
                histogram.observe(span.duration or 0.0)
            if duration_ms >= self.slow_ms:
                slow = {
                    "trace_id": root.trace_id,
                    "name": root.name,
                    "duration_ms": duration_ms,
                    "threshold_ms": self.slow_ms,
                }
                dataset = root.attributes.get("dataset")
                if dataset is not None:
                    slow["dataset"] = dataset
        if slow is not None:
            # Emitted after the drain lock is released: event sinks run
            # arbitrary logging handlers and must not nest under it.
            _emit_event("slow_request", **slow)

    @staticmethod
    def _assemble(root: Span, spans: list[Span]) -> dict[str, Any]:
        """Build the nested node tree for one completed trace (lazy)."""
        nodes: dict[int, dict[str, Any]] = {}
        for span in spans:
            nodes[span.span_id] = {
                "span_id": format(span.span_id, "x"),
                "name": span.name,
                "start_ms": round((span.start_pc - root.start_pc) * 1000.0, 3),
                "duration_ms": round((span.duration or 0.0) * 1000.0, 3),
                "attributes": dict(span.attributes),
                "children": [],
            }
        root_node = nodes[root.span_id]
        for span in sorted(spans, key=lambda s: s.start_pc):
            if span.span_id == root.span_id:
                continue
            parent = nodes.get(span.parent_id)
            if parent is None:
                parent = root_node  # parent lost: keep the span visible
            parent["children"].append(nodes[span.span_id])
        return root_node

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def traces(self, dataset: str | None = None,
               min_duration_ms: float | None = None,
               limit: int | None = None,
               since_ms: float | None = None) -> list[dict[str, Any]]:
        """Summaries of recent completed traces, newest first.

        ``since_ms`` is a Unix-epoch-millisecond cursor: only traces
        whose root started strictly after it are returned, so pollers
        can pass the newest ``start_unix`` they have already seen.
        """
        with self._drain_lock:
            recent = list(self._ring)
        recent.reverse()
        out = []
        for trace in recent:
            if dataset is not None and trace["dataset"] != dataset:
                continue
            if (min_duration_ms is not None
                    and trace["duration_ms"] < min_duration_ms):
                continue
            if (since_ms is not None
                    and trace["start_unix"] * 1000.0 <= since_ms):
                continue
            out.append({key: trace[key] for key in
                        ("trace_id", "name", "start_unix", "duration_ms",
                         "dataset", "n_spans")})
            if limit is not None and len(out) >= limit:
                break
        return out

    def trace(self, trace_id: str) -> dict[str, Any] | None:
        """The full span tree of one completed trace (None if evicted)."""
        with self._drain_lock:
            for record in self._ring:
                if record["trace_id"] == trace_id:
                    if "root" not in record:
                        record["root"] = self._assemble(
                            record.pop("_root_span"), record.pop("_spans"))
                    return record
        return None

    def histograms(self) -> dict[str, dict[str, Any]]:
        """Per-span-name duration histogram snapshots."""
        with self._drain_lock:
            return {name: hist.snapshot()
                    for name, hist in sorted(self._histograms.items())}

    def stats(self) -> dict[str, Any]:
        with self._drain_lock:
            return {
                "enabled": self.enabled,
                "ring_capacity": self.ring_capacity,
                "slow_ms": self.slow_ms,
                "traces_held": len(self._ring),
                "traces_recorded": self._traces_recorded,
                "spans_recorded": self._spans_recorded,
                "ring_evictions": self._ring_evictions,
                "ring_bytes": self._ring_bytes,
            }


def trace_entry_bytes(entry: dict[str, Any]) -> int:
    """Estimate one published trace entry's resident bytes.

    Computed once, at publish time, and stored on the entry so the
    ring's byte counter stays incremental (publish adds, evict
    subtracts).  Counts the per-trace allocations — the entry dict, the
    span objects, their attribute dicts and values — and deliberately
    skips shared interned strings (span names are module-level
    literals).  Tests recompute this same estimate over the live ring
    as the oracle for the incremental counter.
    """
    total = sys.getsizeof(entry)
    for key, value in entry.items():
        if key in ("_root_span", "_spans", "_bytes"):
            continue
        total += sys.getsizeof(key)
        if isinstance(value, dict):
            total += sys.getsizeof(value)
            for inner_key, inner_value in value.items():
                total += sys.getsizeof(inner_key) + sys.getsizeof(inner_value)
        elif value is not None:
            total += sys.getsizeof(value)
    spans = entry.get("_spans", ())
    total += sys.getsizeof(spans)
    for span in spans:
        total += sys.getsizeof(span)
        total += sys.getsizeof(span.attributes)
        for key, value in span.attributes.items():
            total += sys.getsizeof(key)
            if value is not None:
                total += sys.getsizeof(value)
    return total


# ---------------------------------------------------------------------------
# Context propagation helpers
# ---------------------------------------------------------------------------
def obs_span(name: str, **attributes: Any):
    """A child of this thread's ambient span, or a no-op outside any.

    The instrumentation entry point for layers that hold no tracer
    reference (the pipeline's stages, the journal): tracing reaches them
    only when a traced caller is already on the stack.
    """
    parent = current_span()
    if parent is None or parent.tracer is None:
        return NOOP_SPAN
    return parent.tracer.span(name, parent=parent, **attributes)


def bind(span: "Span | _NoopSpan | None", fn: Callable) -> Callable:
    """Wrap ``fn`` so it runs with ``span`` as the ambient span.

    Used at thread-handoff points (``run_in_executor``): the event loop
    holds the span explicitly, the worker thread re-establishes it as
    ambient so everything beneath parents correctly.
    """
    if span is None or span.trace_id is None:
        return fn

    def bound(*args: Any, **kwargs: Any):
        _push_ambient(span)
        try:
            return fn(*args, **kwargs)
        finally:
            _pop_ambient(span)

    return bound


def carry_current(fn: Callable) -> Callable:
    """Capture the *submitting* thread's ambient span into ``fn``.

    ``ParallelExecutor.map`` wraps worker callables with this, so spans
    started inside a worker re-parent to the request that sharded the
    work — not to whatever the pool thread last ran.  The submitting
    thread's ambient :class:`~repro.obs.resources.CostRecorder` rides
    the same handoff (:func:`~repro.obs.resources.carry_cost`), so a
    shard's CPU time bills to the request that sharded it.
    """
    return bind(current_span(), carry_cost(fn))


__all__ = [
    "NOOP_SPAN",
    "SPAN_BUCKETS",
    "Span",
    "Tracer",
    "bind",
    "carry_current",
    "current_span",
    "obs_span",
    "trace_entry_bytes",
]
