"""Watchdogs: detect quiet degradation and say so on the event log.

Three independent detectors, each emitting structured events through
:mod:`repro.obs.events` when a threshold trips and exposing a
``snapshot()`` for ``/v1/debug`` and ``/metrics``:

``LoopLagMonitor``
    An asyncio task that sleeps a fixed interval and measures how late
    the loop woke it — the canonical event-loop responsiveness probe.
    Lag above the threshold emits an ``event_loop_lag`` event.  Owned
    and scheduled by the HTTP server; all state is written from the
    loop thread and read lock-free (GIL-atomic attribute reads).

``StallDetector``
    Deadline tracking for background work (the workspace's maintenance
    rebuilds).  ``watch(...)`` arms a timer; completing the returned
    token before the deadline disarms it, otherwise a ``rebuild_stall``
    event fires.  One daemon :class:`threading.Timer` per watched job —
    rebuilds are rare, so the thread cost is noise.

``LockWaitWatchdog``
    Wraps ``threading.Lock`` / ``threading.RLock`` construction (the
    same factory-patch shape as :class:`repro.analysis.runtime.
    LockTracker`) so blocking acquisitions that had to *wait* past the
    threshold are resolved against the statically extracted site table
    (:func:`repro.analysis.locks.collect_lock_sites`) and reported as
    ``lock_wait`` events naming the declared lock role.  Uncontended
    acquisitions pay one try-acquire and no clock read.  Only locks
    created after installation are timed — install it before building
    the state you want watched (the workspace does this when its
    ``ObsConfig.lock_wait_ms`` is positive).
"""

from __future__ import annotations

import asyncio
import os
import sys
import threading
import time
from collections import deque
from typing import Any

from repro.obs.events import emit

__all__ = [
    "LoopLagMonitor",
    "StallDetector",
    "LockWaitWatchdog",
    "install_lock_wait",
    "uninstall_lock_wait",
]

_MAX_FRAMES = 20


class LoopLagMonitor:
    """Samples event-loop scheduling lag from inside the loop."""

    def __init__(self, threshold_ms: float = 100.0, interval: float = 0.25):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.threshold_ms = float(threshold_ms)
        self.interval = float(interval)
        self.samples = 0
        self.trips = 0
        self.last_lag_seconds = 0.0
        self.max_lag_seconds = 0.0

    async def run(self) -> None:
        """Sample until cancelled (the server owns the task lifecycle)."""
        while True:
            started = time.perf_counter()
            await asyncio.sleep(self.interval)
            lag = max(0.0, time.perf_counter() - started - self.interval)
            self.observe(lag)

    def observe(self, lag_seconds: float) -> None:
        """Record one lag sample (separated from ``run`` for tests)."""
        self.samples += 1
        self.last_lag_seconds = lag_seconds
        if lag_seconds > self.max_lag_seconds:
            self.max_lag_seconds = lag_seconds
        if self.threshold_ms > 0 and lag_seconds * 1000.0 >= self.threshold_ms:
            self.trips += 1
            emit(
                "event_loop_lag",
                lag_ms=round(lag_seconds * 1000.0, 3),
                threshold_ms=self.threshold_ms,
                interval_seconds=self.interval,
            )

    def snapshot(self) -> dict[str, Any]:
        return {
            "threshold_ms": self.threshold_ms,
            "interval_seconds": self.interval,
            "samples": self.samples,
            "trips": self.trips,
            "last_lag_seconds": self.last_lag_seconds,
            "max_lag_seconds": self.max_lag_seconds,
        }


class _StallToken:
    """Handle for one watched job; ``done()`` disarms the deadline."""

    __slots__ = ("_detector", "_timer", "_name", "_completed")

    def __init__(self, detector: "StallDetector | None", timer, name: str):
        self._detector = detector
        self._timer = timer
        self._name = name
        self._completed = False

    def done(self) -> None:
        if self._completed:
            return
        self._completed = True
        if self._timer is not None:
            self._timer.cancel()
        if self._detector is not None:
            self._detector._finish(self._name)


_NOOP_TOKEN = _StallToken(None, None, "")
_NOOP_TOKEN._completed = True


class StallDetector:
    """Deadline watchdog for background jobs (maintenance rebuilds)."""

    def __init__(self, deadline_seconds: float = 30.0, event: str = "rebuild_stall"):
        self.deadline_seconds = float(deadline_seconds)
        self.event = event
        self._lock = threading.Lock()
        self._active: dict[str, float] = {}
        self._stalled: dict[str, float] = {}
        self._trips = 0
        self._watched_total = 0

    def watch(self, name: str, **details: Any) -> _StallToken:
        """Arm the deadline for one job; complete the token to disarm."""
        if self.deadline_seconds <= 0:
            return _NOOP_TOKEN
        started = time.perf_counter()
        timer = threading.Timer(
            self.deadline_seconds, self._fire, args=(name, started, details)
        )
        timer.daemon = True
        with self._lock:
            self._watched_total += 1
            self._active[name] = started
        timer.start()
        return _StallToken(self, timer, name)

    def _fire(self, name: str, started: float, details: dict[str, Any]) -> None:
        elapsed = time.perf_counter() - started
        with self._lock:
            if name not in self._active:
                return
            self._trips += 1
            self._stalled[name] = elapsed
        emit(
            self.event,
            name=name,
            elapsed_seconds=round(elapsed, 3),
            deadline_seconds=self.deadline_seconds,
            **details,
        )

    def _finish(self, name: str) -> None:
        with self._lock:
            self._active.pop(name, None)
            self._stalled.pop(name, None)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "deadline_seconds": self.deadline_seconds,
                "active": len(self._active),
                "watched_total": self._watched_total,
                "trips": self._trips,
                "stalled": sorted(self._stalled),
            }


class _WaitTimedLock:
    """Proxy over a real lock that times *contended* blocking acquires."""

    __slots__ = ("_inner", "_watchdog")

    def __init__(self, inner, watchdog: "LockWaitWatchdog"):
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "_watchdog", watchdog)

    def acquire(self, blocking: bool = True, timeout: float = -1):
        if not blocking:
            return self._inner.acquire(blocking, timeout)
        # Uncontended fast path: no clock read at all.
        if self._inner.acquire(False):
            return True
        started = time.perf_counter()
        ok = self._inner.acquire(True, timeout)
        waited = time.perf_counter() - started
        if ok and waited * 1000.0 >= self._watchdog.threshold_ms:
            self._watchdog._on_wait(waited)
        return ok

    def release(self):
        self._inner.release()

    def __enter__(self):
        return self.acquire()

    def __exit__(self, exc_type, exc, tb):
        self.release()
        return False

    def locked(self):
        return self._inner.locked()

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def __repr__(self):
        return f"<wait-timed {self._inner!r}>"


class LockWaitWatchdog:
    """Reports lock acquisitions that waited past the threshold."""

    def __init__(self, threshold_ms: float = 50.0):
        if threshold_ms <= 0:
            raise ValueError(f"threshold_ms must be > 0, got {threshold_ms}")
        self.threshold_ms = float(threshold_ms)
        # Created before install() patches the factories, so the state
        # lock itself is never one of our timed proxies (no recursion).
        self._lock = threading.Lock()
        self._trips = 0
        self._unattributed = 0
        self._recent: deque[dict[str, Any]] = deque(maxlen=8)
        self._sites: dict[tuple[str, int], Any] = {}
        self._files: set[str] = set()
        self._realpaths: dict[str, str] = {}
        self._installed = False
        self._orig_lock = None
        self._orig_rlock = None

    # ------------------------------------------------------------------
    # Installation (same factory-patch shape as analysis.runtime)
    # ------------------------------------------------------------------
    def install(self, roots=None) -> "LockWaitWatchdog":
        from pathlib import Path

        from repro.analysis.locks import collect_lock_sites
        from repro.analysis.project import DEFAULT_CONFIG

        if roots is None:
            import repro

            roots = [Path(repro.__file__).resolve().parent]
        self._sites = collect_lock_sites(roots, DEFAULT_CONFIG)
        self._files = {path for path, _line in self._sites}
        if self._installed:
            return self
        self._orig_lock = threading.Lock
        self._orig_rlock = threading.RLock
        watchdog = self

        def make_lock():
            return _WaitTimedLock(watchdog._orig_lock(), watchdog)

        def make_rlock():
            return _WaitTimedLock(watchdog._orig_rlock(), watchdog)

        threading.Lock = make_lock  # type: ignore[assignment]
        threading.RLock = make_rlock  # type: ignore[assignment]
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        threading.Lock = self._orig_lock  # type: ignore[assignment]
        threading.RLock = self._orig_rlock  # type: ignore[assignment]
        self._installed = False

    # ------------------------------------------------------------------
    # Wait reporting
    # ------------------------------------------------------------------
    def _realpath(self, filename: str) -> str:
        cached = self._realpaths.get(filename)
        if cached is None:
            cached = os.path.realpath(filename)
            self._realpaths[filename] = cached
        return cached

    def _resolve(self) -> tuple[str | None, str]:
        frame = sys._getframe(2)  # _resolve <- _on_wait <- acquire
        for _ in range(_MAX_FRAMES):
            if frame is None:
                break
            filename = self._realpath(frame.f_code.co_filename)
            if filename in self._files:
                site = self._sites.get((filename, frame.f_lineno))
                if site is not None and site.lock_id is not None:
                    return site.lock_id, f"{site.path}:{site.line}"
                return None, ""
            frame = frame.f_back
        return None, ""

    def _on_wait(self, waited: float) -> None:
        role, site = self._resolve()
        if role is None:
            # Only report locks the site table can name (third-party and
            # test-helper locks stay out, mirroring the runtime tracker).
            with self._lock:
                self._unattributed += 1
            return
        trip = {
            "lock": role,
            "site": site,
            "wait_ms": round(waited * 1000.0, 3),
        }
        with self._lock:
            self._trips += 1
            self._recent.append(trip)
        emit("lock_wait", threshold_ms=self.threshold_ms, **trip)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "threshold_ms": self.threshold_ms,
                "installed": self._installed,
                "trips": self._trips,
                "unattributed": self._unattributed,
                "recent": list(self._recent),
            }


_lock_wait_singleton: LockWaitWatchdog | None = None


def install_lock_wait(threshold_ms: float) -> LockWaitWatchdog | None:
    """Install (or reuse) the process-wide lock-wait watchdog.

    Returns ``None`` when ``threshold_ms`` is not positive — the
    watchdog is strictly opt-in; the default configuration never
    patches lock construction.
    """
    global _lock_wait_singleton
    if threshold_ms <= 0:
        return None
    if _lock_wait_singleton is None:
        _lock_wait_singleton = LockWaitWatchdog(threshold_ms=threshold_ms).install()
    else:
        _lock_wait_singleton.threshold_ms = float(threshold_ms)
    return _lock_wait_singleton


def uninstall_lock_wait() -> None:
    global _lock_wait_singleton
    if _lock_wait_singleton is not None:
        _lock_wait_singleton.uninstall()
        _lock_wait_singleton = None
