"""The structured event log: single-line JSON through stdlib logging.

Every operationally interesting state change — a slow request, a
background-rebuild swap, a generation rotation, an admission rejection,
a pipeline-poisoning fsync failure — goes through :func:`emit`, which
renders one JSON object per line on the ``repro.obs.events`` logger.
Consumers attach an ordinary ``logging`` handler; nothing is emitted
(and no JSON is serialized) unless the logger is enabled for INFO, so
an unconfigured process pays one level check per event.

The line format is stable: keys are sorted, the event name is under
``"event"`` and the wall-clock emission time under ``"ts"`` (epoch
seconds).  Values that are not JSON-native are stringified rather than
raised on — an event sink must never take down the write path it is
reporting about.
"""

from __future__ import annotations

import json
import logging
import time
from typing import Any

#: The logger every structured event goes through.
logger = logging.getLogger("repro.obs.events")


def emit(event: str, **fields: Any) -> None:
    """Emit one structured event as a single JSON line.

    ``fields`` become top-level keys; ``event`` and ``ts`` are reserved
    (a field named ``event`` would be overwritten).
    """
    if not logger.isEnabledFor(logging.INFO):
        return
    payload = dict(fields)
    payload["event"] = event
    payload["ts"] = round(time.time(), 6)
    logger.info("%s", json.dumps(payload, sort_keys=True, default=str))


__all__ = ["emit", "logger"]
