"""Observability configuration: the ``REPRO_OBS_*`` knob surface.

:class:`ObsConfig` rides on both :class:`~repro.service.Workspace`
(which owns the tracer) and :class:`~repro.server.ServerConfig` (which
applies it to the served workspace), mirroring the server config's
env/CLI conventions: every field reads from ``REPRO_OBS_<FIELD>`` and
has a ``--obs-*`` flag.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, fields
from typing import Any, Mapping

_TRUTHY = {"1", "true", "yes", "on"}
_FALSY = {"0", "false", "no", "off"}


def _parse_bool(name: str, raw: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in _TRUTHY:
        return True
    if lowered in _FALSY:
        return False
    raise ValueError(f"{name}: expected a boolean, got {raw!r}")


@dataclass(frozen=True)
class ObsConfig:
    """Tracing + event-log settings (on by default).

    ``enabled``       — record spans at all; off turns every tracer call
                        into a no-op (the <3% budget becomes ~0%).
    ``ring_capacity`` — completed root traces kept for ``/v1/traces``.
    ``slow_ms``       — root spans at least this slow emit a
                        ``slow_request`` event through the
                        ``repro.obs.events`` logger.
    ``resources_enabled`` — per-request cost attribution and the memory
                        ledger (the ``/v1/debug`` surface); off removes
                        the recorder from the hot path entirely.
    ``cost_window``   — requests retained per rolling cost window (and
                        in the recent ring behind the top-K listing).
    ``debug_top_k``   — most-expensive recent requests ``/v1/debug``
                        lists.
    ``loop_lag_ms``   — event-loop lag threshold for the server's
                        ``event_loop_lag`` watchdog event; 0 samples
                        without ever tripping.
    ``rebuild_deadline_s`` — background rebuilds slower than this emit a
                        ``rebuild_stall`` event; 0 disables the
                        detector.
    ``lock_wait_ms``  — blocking lock acquisitions that waited at least
                        this long emit a ``lock_wait`` event; 0 (the
                        default) never patches lock construction.
    """

    enabled: bool = True
    ring_capacity: int = 256
    slow_ms: float = 500.0
    resources_enabled: bool = True
    cost_window: int = 256
    debug_top_k: int = 10
    loop_lag_ms: float = 100.0
    rebuild_deadline_s: float = 30.0
    lock_wait_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.ring_capacity < 1:
            raise ValueError(
                f"ring_capacity must be >= 1, got {self.ring_capacity}"
            )
        if self.slow_ms < 0:
            raise ValueError(f"slow_ms must be >= 0, got {self.slow_ms}")
        if self.cost_window < 1:
            raise ValueError(
                f"cost_window must be >= 1, got {self.cost_window}"
            )
        if self.debug_top_k < 0:
            raise ValueError(
                f"debug_top_k must be >= 0, got {self.debug_top_k}"
            )
        for name in ("loop_lag_ms", "rebuild_deadline_s", "lock_wait_ms"):
            if getattr(self, name) < 0:
                raise ValueError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )

    # ------------------------------------------------------------------
    # Environment / CLI
    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "ObsConfig":
        if env is None:
            import os

            env = os.environ
        values: dict[str, Any] = {}
        for spec in fields(cls):
            key = f"REPRO_OBS_{spec.name.upper()}"
            raw = env.get(key)
            if raw is None or raw == "":
                continue
            if spec.name in ("enabled", "resources_enabled"):
                values[spec.name] = _parse_bool(key, raw)
            elif spec.name in ("ring_capacity", "cost_window", "debug_top_k"):
                values[spec.name] = int(raw)
            else:
                values[spec.name] = float(raw)
        return cls(**values)

    @classmethod
    def add_cli_arguments(cls, parser: argparse.ArgumentParser,
                          base: "ObsConfig | None" = None) -> None:
        """Register ``--obs-*`` flags, defaulting from ``base`` (or env)."""
        if base is None:
            base = cls.from_env()
        group = parser.add_argument_group("observability")
        group.add_argument(
            "--obs-enabled", dest="obs_enabled", metavar="BOOL",
            default=base.enabled, type=lambda raw: _parse_bool("--obs-enabled", raw),
            help=f"record request traces (default: {base.enabled})",
        )
        group.add_argument(
            "--obs-ring-capacity", dest="obs_ring_capacity", type=int,
            default=base.ring_capacity, metavar="N",
            help=f"completed traces kept for /v1/traces "
                 f"(default: {base.ring_capacity})",
        )
        group.add_argument(
            "--obs-slow-ms", dest="obs_slow_ms", type=float,
            default=base.slow_ms, metavar="MS",
            help=f"slow-request event threshold in ms "
                 f"(default: {base.slow_ms})",
        )
        group.add_argument(
            "--obs-resources-enabled", dest="obs_resources_enabled",
            metavar="BOOL", default=base.resources_enabled,
            type=lambda raw: _parse_bool("--obs-resources-enabled", raw),
            help=f"per-request cost attribution and the memory ledger "
                 f"(default: {base.resources_enabled})",
        )
        group.add_argument(
            "--obs-cost-window", dest="obs_cost_window", type=int,
            default=base.cost_window, metavar="N",
            help=f"requests retained per rolling cost window "
                 f"(default: {base.cost_window})",
        )
        group.add_argument(
            "--obs-debug-top-k", dest="obs_debug_top_k", type=int,
            default=base.debug_top_k, metavar="K",
            help=f"most-expensive recent requests listed by /v1/debug "
                 f"(default: {base.debug_top_k})",
        )
        group.add_argument(
            "--obs-loop-lag-ms", dest="obs_loop_lag_ms", type=float,
            default=base.loop_lag_ms, metavar="MS",
            help=f"event-loop lag watchdog threshold in ms "
                 f"(default: {base.loop_lag_ms})",
        )
        group.add_argument(
            "--obs-rebuild-deadline-s", dest="obs_rebuild_deadline_s",
            type=float, default=base.rebuild_deadline_s, metavar="S",
            help=f"background-rebuild stall deadline in seconds; 0 "
                 f"disables (default: {base.rebuild_deadline_s})",
        )
        group.add_argument(
            "--obs-lock-wait-ms", dest="obs_lock_wait_ms", type=float,
            default=base.lock_wait_ms, metavar="MS",
            help=f"lock-wait watchdog threshold in ms; 0 disables "
                 f"(default: {base.lock_wait_ms})",
        )

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "ObsConfig":
        return cls(
            enabled=args.obs_enabled,
            ring_capacity=args.obs_ring_capacity,
            slow_ms=args.obs_slow_ms,
            resources_enabled=args.obs_resources_enabled,
            cost_window=args.obs_cost_window,
            debug_top_k=args.obs_debug_top_k,
            loop_lag_ms=args.obs_loop_lag_ms,
            rebuild_deadline_s=args.obs_rebuild_deadline_s,
            lock_wait_ms=args.obs_lock_wait_ms,
        )

    def as_dict(self) -> dict[str, Any]:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}


__all__ = ["ObsConfig"]
