"""Observability configuration: the ``REPRO_OBS_*`` knob surface.

:class:`ObsConfig` rides on both :class:`~repro.service.Workspace`
(which owns the tracer) and :class:`~repro.server.ServerConfig` (which
applies it to the served workspace), mirroring the server config's
env/CLI conventions: every field reads from ``REPRO_OBS_<FIELD>`` and
has a ``--obs-*`` flag.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, fields
from typing import Any, Mapping

_TRUTHY = {"1", "true", "yes", "on"}
_FALSY = {"0", "false", "no", "off"}


def _parse_bool(name: str, raw: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in _TRUTHY:
        return True
    if lowered in _FALSY:
        return False
    raise ValueError(f"{name}: expected a boolean, got {raw!r}")


@dataclass(frozen=True)
class ObsConfig:
    """Tracing + event-log settings (on by default).

    ``enabled``       — record spans at all; off turns every tracer call
                        into a no-op (the <3% budget becomes ~0%).
    ``ring_capacity`` — completed root traces kept for ``/v1/traces``.
    ``slow_ms``       — root spans at least this slow emit a
                        ``slow_request`` event through the
                        ``repro.obs.events`` logger.
    """

    enabled: bool = True
    ring_capacity: int = 256
    slow_ms: float = 500.0

    def __post_init__(self) -> None:
        if self.ring_capacity < 1:
            raise ValueError(
                f"ring_capacity must be >= 1, got {self.ring_capacity}"
            )
        if self.slow_ms < 0:
            raise ValueError(f"slow_ms must be >= 0, got {self.slow_ms}")

    # ------------------------------------------------------------------
    # Environment / CLI
    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "ObsConfig":
        if env is None:
            import os

            env = os.environ
        values: dict[str, Any] = {}
        for spec in fields(cls):
            key = f"REPRO_OBS_{spec.name.upper()}"
            raw = env.get(key)
            if raw is None or raw == "":
                continue
            if spec.name == "enabled":
                values[spec.name] = _parse_bool(key, raw)
            elif spec.name == "ring_capacity":
                values[spec.name] = int(raw)
            else:
                values[spec.name] = float(raw)
        return cls(**values)

    @classmethod
    def add_cli_arguments(cls, parser: argparse.ArgumentParser,
                          base: "ObsConfig | None" = None) -> None:
        """Register ``--obs-*`` flags, defaulting from ``base`` (or env)."""
        if base is None:
            base = cls.from_env()
        group = parser.add_argument_group("observability")
        group.add_argument(
            "--obs-enabled", dest="obs_enabled", metavar="BOOL",
            default=base.enabled, type=lambda raw: _parse_bool("--obs-enabled", raw),
            help=f"record request traces (default: {base.enabled})",
        )
        group.add_argument(
            "--obs-ring-capacity", dest="obs_ring_capacity", type=int,
            default=base.ring_capacity, metavar="N",
            help=f"completed traces kept for /v1/traces "
                 f"(default: {base.ring_capacity})",
        )
        group.add_argument(
            "--obs-slow-ms", dest="obs_slow_ms", type=float,
            default=base.slow_ms, metavar="MS",
            help=f"slow-request event threshold in ms "
                 f"(default: {base.slow_ms})",
        )

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "ObsConfig":
        return cls(
            enabled=args.obs_enabled,
            ring_capacity=args.obs_ring_capacity,
            slow_ms=args.obs_slow_ms,
        )

    def as_dict(self) -> dict[str, Any]:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}


__all__ = ["ObsConfig"]
