"""Incremental sketch maintenance: absorb appends without rebuilding.

The sketches in :mod:`repro.sketch` are *mergeable* — that is the whole
point of single-pass summaries (paper section 3) — and this module turns
that property into a live-update path.  For a validated
:class:`~repro.ingest.delta.DeltaBatch` it

1. builds **per-column sketch partials** over just the delta rows
   (:func:`build_delta_partials`, fanned out over the engine's
   :class:`~repro.core.executor.Executor` exactly like the base
   preprocessing), then
2. **merges** them into copies of the live store's sketches and packages
   the result as a brand-new :class:`~repro.sketch.store.SketchStore`
   over the grown table (:func:`merge_delta`).

Per-sketch-type merge semantics:

=================  =========================================================
moments            running sums add exactly (merge is lossless)
quantile (GK)      tuple interleave + compress; rank error stays ≤ ε·n
count-min          counter tables add; overestimate bound ε·n preserved
Misra–Gries        counter union + (k+1)-th-largest reduction; undercount
                   bound n/capacity preserved
entropy            Space-Saving head merge + distinct-bucket union
reservoir sample   algorithm-R advance over the appended row indices — each
                   new row enters with probability capacity/(rows so far),
                   keeping the maintained row sample uniform (correct
                   weighting) over the grown table
hyperplane         **not merged**: signatures come from one shared
                   hyperplane draw over a fixed row count, so they go
                   *stale* under appends — correlation estimates ignore
                   delta rows until the accuracy budget (below) forces a
                   full rebuild
=================  =========================================================

The **accuracy budget** bounds that staleness: once the rows absorbed by
delta merges since the last full build exceed
``rebuild_fraction × base_rows``, :func:`should_rebuild` tells the
workspace to pay for one full preprocess instead of another merge.  The
copy-on-merge discipline is what makes the swap safe: the old store's
sketch objects are never mutated, so queries holding the previous engine
snapshot keep reading a consistent view.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, replace as dataclass_replace

import numpy as np

from repro.core.executor import Executor
from repro.data.table import DataTable
from repro.errors import IngestError
from repro.ingest.log import IngestLog
from repro.sketch.countmin import CountMinSketch
from repro.sketch.entropy import EntropySketch
from repro.sketch.frequent import MisraGriesSketch
from repro.sketch.moments import MomentSketch
from repro.sketch.quantile import QuantileSketch
from repro.sketch.reservoir import advance_row_indices
from repro.sketch.store import ColumnSketches, SketchStore


@dataclass(frozen=True)
class IngestConfig:
    """Tuning knobs for the live-ingestion subsystem.

    Parameters
    ----------
    rebuild_fraction:
        The accuracy budget: when the rows absorbed by delta merges since
        the last full build would exceed this fraction of the base row
        count, a full sketch rebuild is due (refreshing the hyperplane
        signatures and the quantile summaries' compression).  ``0``
        rebuilds on every append; ``float("inf")`` never rebuilds.
    background_rebuild:
        How the budget-triggered rebuild is paid for.  ``True`` (the
        default) schedules it off the append path: the triggering append
        still returns ``applied="delta_merge"`` and a worker thread
        rebuilds from a snapshot of the table, atomically swapping the
        fresh engine in (minting a sequence number of its own) while
        appends keep delta-merging.  ``False`` keeps the historical
        synchronous behavior: the triggering append blocks on the
        rebuild and returns ``applied="rebuild"``.
    fsync:
        Whether the durable journal (``Workspace(data_dir=...)``)
        fsyncs every committed record before acknowledging the append.
        ``True`` (the default) means an acknowledged append survives a
        machine crash; ``False`` trades that for append throughput
        (records still survive a *process* crash — the OS page cache
        holds them).  Ignored without a ``data_dir``.
    group_commit:
        Amortize journal fsyncs across concurrent appenders.  With
        ``True`` an append writes and flushes its record under the
        dataset's entry lock as before, but the fsync happens in a
        per-dataset commit pipeline: one appender becomes the *leader*,
        issues a single fsync covering every record queued so far, and
        acknowledges all of them at once.  Durability semantics are
        unchanged — no append returns before its bytes are stable — but
        N concurrent appenders pay ~1 fsync instead of N.  Ignored
        unless ``fsync`` is also ``True`` (there is nothing to
        amortize) or without a ``data_dir``.
    max_group_delay:
        How long (seconds) a group-commit leader with no companions may
        linger before fsyncing, giving racing appenders a chance to
        join its group.  ``0`` (the default) fsyncs immediately —
        grouping then emerges naturally from fsync latency, adding no
        latency to isolated appends.  Positive values trade single
        -append latency for larger groups under bursty concurrency.
    """

    rebuild_fraction: float = 0.5
    background_rebuild: bool = True
    fsync: bool = True
    group_commit: bool = False
    max_group_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.rebuild_fraction < 0:
            raise ValueError(
                f"rebuild_fraction must be >= 0, got {self.rebuild_fraction}"
            )
        if self.max_group_delay < 0:
            raise ValueError(
                f"max_group_delay must be >= 0, got {self.max_group_delay}"
            )


def should_rebuild(log: IngestLog, incoming_rows: int,
                   config: IngestConfig) -> bool:
    """Does absorbing ``incoming_rows`` more delta rows exhaust the budget?"""
    if log.base_rows <= 0:
        # No full build has been accounted yet (e.g. appends before the
        # engine ever built); there is nothing stale to refresh.
        return False
    budget = config.rebuild_fraction * log.base_rows
    return (log.rows_since_rebuild + incoming_rows) > budget


# ---------------------------------------------------------------------------
# Delta partials
# ---------------------------------------------------------------------------
def build_delta_partials(
    delta_table: DataTable,
    store: SketchStore,
    executor: Executor,
) -> dict[str, ColumnSketches]:
    """Per-column sketch partials over just the delta rows.

    Each partial mirrors the *shape* of the base store's bundle for that
    column (a numeric column that is not discrete in the base gets no
    frequent/entropy/count-min partial), and is built with the base
    config's parameters so every merge passes the sketches'
    compatibility checks.  Column builds fan out over ``executor``; each
    column's work is independent, so parallel and serial builds are
    identical.
    """
    names = [
        name for name in delta_table.column_names() if store.has_column(name)
    ]
    indexed = list(enumerate(names))
    bundles = executor.map(
        lambda item: _build_column_partial(delta_table, store, item[1], item[0]),
        indexed,
    )
    return {name: bundle for name, bundle in zip(names, bundles)}


def _build_column_partial(
    delta_table: DataTable, store: SketchStore, name: str, index: int
) -> ColumnSketches:
    config = store.config
    base = store.column_sketches(name)
    partial = ColumnSketches(name=name)
    column = delta_table.column(name)
    if base.moments is not None or base.quantiles is not None:
        values = delta_table.numeric_column(name).valid_values()
        if base.moments is not None:
            moments = MomentSketch()
            moments.update_array(values)
            partial.moments = moments
        if base.quantiles is not None:
            quantiles = QuantileSketch(epsilon=config.quantile_epsilon)
            if values.size > config.quantile_sample_cap:
                # Mirror the base build's sampling policy; the stream
                # position (rows already absorbed) keys the RNG so
                # repeated large appends draw independent samples.
                rng = np.random.default_rng(
                    [config.seed, index, store.table.n_rows]
                )
                sampled = rng.choice(
                    values, size=config.quantile_sample_cap, replace=False
                )
                quantiles.update_array(sampled)
            else:
                quantiles.update_array(values)
            partial.quantiles = quantiles
    needs_labels = (base.frequent is not None or base.entropy is not None
                    or base.countmin is not None)
    if needs_labels:
        labels = [label for label in column.to_list() if label is not None]
        if base.frequent is not None:
            frequent = MisraGriesSketch(capacity=config.frequent_capacity)
            frequent.update_many(labels)
            partial.frequent = frequent
        if base.entropy is not None:
            entropy = EntropySketch(capacity=config.entropy_capacity,
                                    seed=config.seed)
            entropy.update_many(labels)
            partial.entropy = entropy
        if base.countmin is not None:
            countmin = CountMinSketch(width=config.countmin_width,
                                      depth=config.countmin_depth,
                                      seed=config.seed)
            countmin.update_many(labels)
            partial.countmin = countmin
    return partial


# ---------------------------------------------------------------------------
# Merge
# ---------------------------------------------------------------------------
def merge_delta(
    store: SketchStore,
    new_table: DataTable,
    delta_rows: int,
    partials: dict[str, ColumnSketches],
) -> SketchStore:
    """A new store over ``new_table`` with the partials merged in.

    Copy-on-merge: every sketch that absorbs a partial is deep-copied
    first, so the input store — possibly still being read by in-flight
    queries — is never mutated.  Sketches without a partial (and the
    immutable hyperplane signatures) are shared between the old and new
    store.  The uniform row sample advances by algorithm R over the
    appended row indices, keeping it uniform over the grown table.
    """
    if new_table.n_rows != store.table.n_rows + delta_rows:
        raise IngestError(
            f"merge_delta row accounting is off: base {store.table.n_rows} + "
            f"delta {delta_rows} != new table {new_table.n_rows}"
        )
    start = time.perf_counter()
    config = store.config
    columns: dict[str, ColumnSketches] = {}
    for name, base in store.column_map().items():
        partial = partials.get(name)
        if partial is None:
            columns[name] = base
            continue
        merged = ColumnSketches(name=name, hyperplane=base.hyperplane)
        for attribute in ColumnSketches.MERGEABLE:
            base_sketch = getattr(base, attribute)
            delta_sketch = getattr(partial, attribute)
            if base_sketch is None or delta_sketch is None:
                setattr(merged, attribute, base_sketch)
                continue
            combined = copy.deepcopy(base_sketch)
            combined.merge(delta_sketch)
            setattr(merged, attribute, combined)
        columns[name] = merged

    n_seen = store.table.n_rows
    rng = np.random.default_rng([config.seed, n_seen])
    sample_indices = advance_row_indices(
        store.sample_indices, n_seen=n_seen, n_new=delta_rows,
        capacity=config.sample_capacity, rng=rng,
    )

    stats = dataclass_replace(
        store.stats,
        per_stage_seconds=dict(store.stats.per_stage_seconds),
        n_rows=new_table.n_rows,
        delta_rows=store.stats.delta_rows + delta_rows,
        delta_batches=store.stats.delta_batches + 1,
    )
    stats.total_sketch_bytes = sum(
        bundle.memory_bytes() for bundle in columns.values()
    )
    stats.per_stage_seconds["delta_merge"] = time.perf_counter() - start

    return SketchStore.from_parts(
        table=new_table,
        config=config,
        executor=store.executor,
        columns=columns,
        sketcher=store.sketcher,
        sample_indices=sample_indices,
        stats=stats,
    )


__all__ = [
    "IngestConfig",
    "build_delta_partials",
    "merge_delta",
    "should_rebuild",
]
