"""Validated append batches: the unit of live ingestion.

A :class:`DeltaBatch` is a set of appended rows checked against the
target dataset's schema *before* anything touches the serving path:

* **arity** — every record must be a mapping whose keys are a subset of
  the schema's columns; unknown columns reject the batch (a typo'd
  column name must not silently create a hole of missing values);
* **types** — values must parse under the column's
  :class:`~repro.data.schema.ColumnKind` rules (``parse_number`` for
  numeric columns, ``parse_boolean`` for boolean ones); a numeric column
  receiving ``"abc"`` rejects the batch rather than coercing to NaN;
* **missing values** — ``None``, absent keys and the standard missing
  tokens (:data:`repro.data.schema.MISSING_TOKENS`) are allowed and
  become masked entries, exactly as a fresh load would treat them.

Validation is all-or-nothing: one bad record rejects the whole batch
with a :class:`~repro.errors.DeltaValidationError` listing the per-row
problems, so a client can fix and resubmit without wondering which rows
landed.  A validated batch materialises as a
:class:`~repro.data.table.DataTable` with the dataset's exact schema
(kinds forced, never re-inferred — a delta of integer-looking strings in
a categorical column stays categorical).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.errors import DeltaValidationError
from repro.data.column import column_from_raw
from repro.data.schema import (
    ColumnKind,
    Schema,
    is_missing_token,
    parse_boolean,
    parse_number,
)
from repro.data.table import DataTable

#: Refuse pathologically large single batches; callers should chunk.
MAX_BATCH_ROWS = 100_000


@dataclass(frozen=True)
class DeltaBatch:
    """A schema-validated batch of rows to append to one dataset.

    Build via :meth:`from_records`; the ``table`` attribute holds the
    rows as a :class:`DataTable` whose schema matches the target
    dataset's column names and kinds, ready for
    :meth:`DataTable.concat`.
    """

    dataset: str
    table: DataTable

    @property
    def n_rows(self) -> int:
        return self.table.n_rows

    @classmethod
    def from_records(
        cls,
        dataset: str,
        records: Sequence[Mapping[str, Any]],
        schema: Schema,
    ) -> "DeltaBatch":
        """Validate ``records`` against ``schema`` and materialise them.

        Raises :class:`DeltaValidationError` carrying every problem found
        (not just the first), so clients get one round trip of feedback.
        """
        problems: list[str] = []
        if not isinstance(records, Sequence) or isinstance(records, (str, bytes)):
            raise DeltaValidationError(
                dataset, ["rows must be a list of record objects"]
            )
        if not records:
            raise DeltaValidationError(dataset, ["batch contains no rows"])
        if len(records) > MAX_BATCH_ROWS:
            raise DeltaValidationError(
                dataset,
                [f"batch has {len(records)} rows; the per-batch limit is "
                 f"{MAX_BATCH_ROWS} (split into smaller appends)"],
            )
        names = schema.names()
        known = set(names)
        columns: dict[str, list[Any]] = {name: [] for name in names}
        for index, record in enumerate(records):
            if not isinstance(record, Mapping):
                problems.append(f"row {index}: not a record object")
                continue
            unknown = [key for key in record if key not in known]
            if unknown:
                problems.append(
                    f"row {index}: unknown column(s) {sorted(unknown)}"
                )
                continue
            for name in names:
                value = record.get(name)
                kind = schema[name].kind
                problem = _check_value(kind, value)
                if problem is not None:
                    problems.append(
                        f"row {index}, column {name!r}: {problem}"
                    )
                else:
                    columns[name].append(value)
        if problems:
            # Any problem rejects the whole batch, so the (possibly
            # ragged) accumulated columns are never materialised.
            raise DeltaValidationError(dataset, problems)
        built = [
            column_from_raw(name, columns[name], schema[name].kind)
            for name in names
        ]
        return cls(dataset=dataset, table=DataTable(built, name=f"{dataset}-delta"))

    def to_records(self) -> list[dict[str, Any]]:
        """The validated rows (None marks missing values)."""
        return self.table.to_records()


def _check_value(kind: ColumnKind, value: Any) -> str | None:
    """Return a problem description, or None when the value is admissible."""
    if is_missing_token(value):
        return None
    if kind is ColumnKind.NUMERIC:
        if parse_number(value) is None:
            return f"value {value!r} is not numeric"
        return None
    if kind is ColumnKind.BOOLEAN:
        if parse_boolean(value) is None:
            return f"value {value!r} is not boolean"
        return None
    # Categorical columns accept any scalar; reject containers, which
    # almost always indicate a malformed payload rather than a label.
    if isinstance(value, (list, tuple, dict, set)):
        return f"value of type {type(value).__name__} is not a categorical label"
    return None


__all__ = ["DeltaBatch", "MAX_BATCH_ROWS"]
