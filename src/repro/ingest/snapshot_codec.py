"""Binary columnar snapshot codec for the durable ingestion journal.

Snapshots used to be one canonical-JSON journal record per generation
(``snapshot-<version>.json``).  That is robust but slow and large for
wide numeric tables: every float costs ~18 text bytes to serialize and a
full JSON parse to restore, and restart replay time is dominated by it.
This module packs the same snapshot payload into a binary columnar
container (``snapshot-<version>.bin``):

* a **versioned header** (magic, format version, section count);
* **section 0**: the snapshot payload minus the bulk per-column arrays,
  as canonical JSON (the same canonicalization as
  :func:`repro.ingest.durable.encode_record`), plus a block directory
  describing the stripped arrays;
* **one section per column**: numeric columns as a missing-value bitmap
  followed by struct-packed float64 values, categorical/boolean columns
  as struct-packed int64 codes (their category lists, being small and
  already JSON values, stay in section 0).

Every section is individually zlib-compressed and CRC-checked, and every
length field is bounds-checked, so any truncation or corruption — at any
byte offset — raises :class:`SnapshotDecodeError` instead of yielding a
wrong table.  The journal treats that exactly like a torn JSON snapshot:
the generation is declared damaged and rotated away.

The codec is **pure bytes → dict**: it never touches the filesystem.
All file I/O (tmp-file + fsync + rename discipline) stays in
:mod:`repro.ingest.durable`, which also keeps the durability-protocol
lint rule's single-owner invariant intact.

Fidelity is exact, not approximate: float64 values and int64 codes
round-trip bit-for-bit through :mod:`struct`, and ``None`` (missing)
entries are carried in the bitmap, so ``decode_snapshot(
encode_snapshot(payload))`` compares equal to ``payload`` — the restored
table and sketch payloads are byte-identical to what the JSON path
produces.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "SnapshotDecodeError",
    "decode_snapshot",
    "encode_snapshot",
]

#: File magic: RePro Snapshot Columnar.
MAGIC = b"RPSC"

#: Bump on any incompatible layout change; readers reject unknown
#: versions rather than guessing.
FORMAT_VERSION = 1

#: ``magic | format version | section count``.
_FILE_HEADER = struct.Struct(">4sHH")

#: Per-section frame: ``compressed length | raw length | crc32`` of the
#: compressed bytes (checked before decompression is attempted).
_SECTION_HEADER = struct.Struct(">III")

#: Refuse absurd section lengths outright — a corrupted length field
#: must not make the reader try to allocate gigabytes.
MAX_SECTION_BYTES = 1 << 31

#: Key under which the block directory travels inside section 0.  The
#: leading underscore keeps it out of any plausible payload namespace;
#: decode strips it again.
_BLOCKS_KEY = "_blocks"

#: zlib levels: metadata JSON compresses well and is small (go for
#: ratio); packed float blocks are large and nearly incompressible (go
#: for speed).
_META_LEVEL = 6
_BLOCK_LEVEL = 1


class SnapshotDecodeError(Exception):
    """A binary snapshot is truncated, corrupted, or of an unknown format."""


# ---------------------------------------------------------------------------
# Encode
# ---------------------------------------------------------------------------
def _pack_values(values: list[Any]) -> bytes:
    """Numeric column block: missing bitmap + float64 values.

    ``None`` entries set their bitmap bit and pack a NaN placeholder;
    real (non-missing) NaN/inf values pass through the float64 lanes
    untouched, so the bitmap — not the payload — is the single source of
    truth for missingness.
    """
    n = len(values)
    bitmap = bytearray((n + 7) // 8)
    floats = [0.0] * n
    for index, value in enumerate(values):
        if value is None:
            bitmap[index >> 3] |= 1 << (index & 7)
            floats[index] = float("nan")
        else:
            floats[index] = value
    return bytes(bitmap) + struct.pack(f">{n}d", *floats)


def _unpack_values(block: bytes, n: int) -> list[Any]:
    bitmap_size = (n + 7) // 8
    if len(block) != bitmap_size + 8 * n:
        raise SnapshotDecodeError(
            f"numeric block holds {len(block)} bytes, expected "
            f"{bitmap_size + 8 * n} for {n} values"
        )
    bitmap = block[:bitmap_size]
    floats = struct.unpack(f">{n}d", block[bitmap_size:])
    return [
        None if bitmap[index >> 3] & (1 << (index & 7)) else floats[index]
        for index in range(n)
    ]


def _pack_codes(codes: list[int]) -> bytes:
    """Categorical/boolean column block: struct-packed int64 codes."""
    return struct.pack(f">{len(codes)}q", *codes)


def _unpack_codes(block: bytes, n: int) -> list[int]:
    if len(block) != 8 * n:
        raise SnapshotDecodeError(
            f"code block holds {len(block)} bytes, expected {8 * n} "
            f"for {n} codes"
        )
    return list(struct.unpack(f">{n}q", block))


def encode_snapshot(payload: dict[str, Any]) -> bytes:
    """Pack a snapshot payload dict into the binary columnar container.

    ``payload`` is the exact dict the journal used to serialize as JSON
    (``type``/``version``/``seq``/counters/``table``/optional
    ``engine_config``).  Only the bulk per-column arrays move into
    binary sections; everything else rides in the canonical-JSON
    metadata section, so ``decode_snapshot`` returns an equal dict.
    """
    meta: dict[str, Any] = dict(payload)
    blocks: list[dict[str, Any]] = []
    sections: list[tuple[bytes, int]] = []  # (raw bytes, zlib level)

    table = payload.get("table")
    if isinstance(table, dict) and isinstance(table.get("columns"), list):
        stripped_columns = []
        for index, spec in enumerate(table["columns"]):
            if not isinstance(spec, dict):
                stripped_columns.append(spec)
                continue
            stripped = dict(spec)
            if "values" in stripped:
                values = stripped.pop("values")
                blocks.append(
                    {"column": index, "key": "values", "n": len(values)}
                )
                sections.append((_pack_values(values), _BLOCK_LEVEL))
            elif "codes" in stripped:
                codes = stripped.pop("codes")
                blocks.append(
                    {"column": index, "key": "codes", "n": len(codes)}
                )
                sections.append((_pack_codes(codes), _BLOCK_LEVEL))
            stripped_columns.append(stripped)
        stripped_table = dict(table)
        stripped_table["columns"] = stripped_columns
        meta["table"] = stripped_table

    meta[_BLOCKS_KEY] = blocks
    meta_bytes = json.dumps(
        meta, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    sections.insert(0, (meta_bytes, _META_LEVEL))

    parts = [_FILE_HEADER.pack(MAGIC, FORMAT_VERSION, len(sections))]
    for raw, level in sections:
        compressed = zlib.compress(raw, level)
        parts.append(
            _SECTION_HEADER.pack(
                len(compressed), len(raw), zlib.crc32(compressed)
            )
        )
        parts.append(compressed)
    return b"".join(parts)


# ---------------------------------------------------------------------------
# Decode
# ---------------------------------------------------------------------------
def _read_sections(data: bytes) -> list[bytes]:
    size = len(data)
    if size < _FILE_HEADER.size:
        raise SnapshotDecodeError("truncated header")
    magic, version, n_sections = _FILE_HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise SnapshotDecodeError(f"bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise SnapshotDecodeError(f"unsupported format version {version}")
    sections: list[bytes] = []
    offset = _FILE_HEADER.size
    for index in range(n_sections):
        if offset + _SECTION_HEADER.size > size:
            raise SnapshotDecodeError(f"truncated section {index} header")
        compressed_len, raw_len, checksum = _SECTION_HEADER.unpack_from(
            data, offset
        )
        offset += _SECTION_HEADER.size
        if compressed_len > MAX_SECTION_BYTES or raw_len > MAX_SECTION_BYTES:
            raise SnapshotDecodeError(f"section {index} length out of range")
        if offset + compressed_len > size:
            raise SnapshotDecodeError(f"truncated section {index} body")
        compressed = data[offset : offset + compressed_len]
        offset += compressed_len
        if zlib.crc32(compressed) != checksum:
            raise SnapshotDecodeError(f"section {index} CRC mismatch")
        try:
            raw = zlib.decompress(compressed)
        except zlib.error as exc:
            raise SnapshotDecodeError(
                f"section {index} does not decompress: {exc}"
            ) from exc
        if len(raw) != raw_len:
            raise SnapshotDecodeError(
                f"section {index} decompressed to {len(raw)} bytes, "
                f"header declared {raw_len}"
            )
        sections.append(raw)
    if offset != size:
        raise SnapshotDecodeError(
            f"{size - offset} trailing bytes after the last section"
        )
    return sections


def decode_snapshot(data: bytes) -> dict[str, Any]:
    """Unpack :func:`encode_snapshot` output back into the payload dict.

    Raises :class:`SnapshotDecodeError` on any structural damage —
    truncation at any byte offset, a flipped bit anywhere (CRC), an
    unknown format version, or metadata that does not describe the
    binary sections it travels with.
    """
    sections = _read_sections(data)
    if not sections:
        raise SnapshotDecodeError("no sections")
    try:
        meta = json.loads(sections[0].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise SnapshotDecodeError(f"metadata section: {exc}") from exc
    if not isinstance(meta, dict):
        raise SnapshotDecodeError("metadata section is not an object")
    blocks = meta.pop(_BLOCKS_KEY, None)
    if not isinstance(blocks, list):
        raise SnapshotDecodeError("metadata lacks the block directory")
    if len(blocks) != len(sections) - 1:
        raise SnapshotDecodeError(
            f"block directory lists {len(blocks)} blocks, container "
            f"holds {len(sections) - 1}"
        )

    table = meta.get("table")
    columns = (
        table.get("columns")
        if isinstance(table, dict) and isinstance(table.get("columns"), list)
        else None
    )
    for block, raw in zip(blocks, sections[1:]):
        if not isinstance(block, dict):
            raise SnapshotDecodeError("malformed block directory entry")
        index = block.get("column")
        key = block.get("key")
        n = block.get("n")
        if (
            columns is None
            or not isinstance(index, int)
            or not 0 <= index < len(columns)
            or not isinstance(columns[index], dict)
            or key not in ("values", "codes")
            or not isinstance(n, int)
            or n < 0
        ):
            raise SnapshotDecodeError("block directory does not match table")
        if key == "values":
            columns[index]["values"] = _unpack_values(raw, n)
        else:
            columns[index]["codes"] = _unpack_codes(raw, n)
    return meta
