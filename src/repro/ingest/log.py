"""The ingest journal: monotone sequence numbers and append provenance.

Every dataset carries an :class:`IngestLog`.  Each accepted append is
journalled as an :class:`IngestRecord` with a **monotone, gap-free
sequence number**, so a dataset's identity for caching and provenance is
the pair ``(version, seq)``:

* ``version`` bumps on reload / re-registration (a new *generation* of
  the data — the journal resets with it);
* ``seq`` bumps on every append within a generation.

A response stamped ``(version, seq)`` therefore names the exact
ingestion state it was computed from: the base load identified by
``version`` plus the first ``seq`` journalled appends.  The log also
accumulates the ingestion counters (rows appended, delta merges, full
rebuilds) surfaced by ``Workspace.ingest_stats`` and the server's
``/metrics``.

The log is deliberately not thread-safe on its own: every mutation
happens under the owning dataset entry's lock (the same single-flight
lock that guards engine swaps), which is what makes an append's
journal-write and engine-swap atomic together.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

#: How an accepted append was absorbed into the serving state.
APPLIED_DELTA_MERGE = "delta_merge"   # sketch partials merged into the store
APPLIED_REBUILD = "rebuild"           # accuracy budget exhausted: full rebuild
APPLIED_DEFERRED = "deferred"         # no engine/store yet: rows concat only


@dataclass(frozen=True)
class IngestRecord:
    """One journalled append."""

    seq: int
    n_rows: int
    applied: str
    timestamp: float
    #: Total table rows after this append (provenance for debugging).
    total_rows: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "n_rows": self.n_rows,
            "applied": self.applied,
            "timestamp": self.timestamp,
            "total_rows": self.total_rows,
        }


@dataclass
class IngestLog:
    """Append journal for one dataset generation."""

    records: list[IngestRecord] = field(default_factory=list)
    #: Rows absorbed by delta merges since the last full build — the
    #: accuracy-budget numerator.
    rows_since_rebuild: int = 0
    #: Table size at the last full (re)build — the budget denominator.
    base_rows: int = 0
    rows_appended: int = 0
    delta_merges: int = 0
    rebuilds: int = 0
    #: Rebuilds that ran off the append path (a subset of ``rebuilds``).
    bg_rebuilds: int = 0
    #: Sequence number the in-memory record list starts counting from.
    #: Normally 0; a log restored from a durable snapshot starts at the
    #: snapshot's sequence number (the compacted history is not kept).
    base_seq: int = 0

    @property
    def seq(self) -> int:
        """The current sequence number (0 before any append)."""
        return self.records[-1].seq if self.records else self.base_seq

    def append(self, n_rows: int, applied: str, total_rows: int,
               timestamp: float | None = None) -> IngestRecord:
        """Journal one accepted append; returns the minted record.

        ``timestamp`` lets the durable-journal replay path reproduce the
        original record times instead of stamping replay time.
        """
        record = IngestRecord(
            seq=self.seq + 1,
            n_rows=n_rows,
            applied=applied,
            timestamp=time.time() if timestamp is None else timestamp,
            total_rows=total_rows,
        )
        self.records.append(record)
        self.rows_appended += n_rows
        if applied == APPLIED_REBUILD:
            self.rebuilds += 1
            self.rows_since_rebuild = 0
            self.base_rows = total_rows
        else:
            if applied == APPLIED_DELTA_MERGE:
                self.delta_merges += 1
            self.rows_since_rebuild += n_rows
        return record

    def record_swap(self, catchup_rows: int, base_rows: int, total_rows: int,
                    timestamp: float | None = None) -> IngestRecord:
        """Journal an off-path rebuild swapping in (a background rebuild).

        Mints a sequence number of its own — the swap changes the
        serving engine, so ``(version, seq)`` must move with it or two
        different engine states would share one cache/provenance
        identity.  ``catchup_rows`` is how many appended rows were
        delta-merged onto the fresh store at swap time (they still count
        against the accuracy budget; ``base_rows`` is the row count the
        fresh sketches were built over).
        """
        record = IngestRecord(
            seq=self.seq + 1,
            n_rows=0,
            applied=APPLIED_REBUILD,
            timestamp=time.time() if timestamp is None else timestamp,
            total_rows=total_rows,
        )
        self.records.append(record)
        self.rebuilds += 1
        self.bg_rebuilds += 1
        self.rows_since_rebuild = catchup_rows
        self.base_rows = base_rows
        return record

    def mark_rebuilt(self, total_rows: int) -> None:
        """Reset the accuracy budget after an out-of-band full build.

        Called when the engine is (re)built from the full table outside
        the append path — a lazy first build or an explicit reload — so
        the budget starts counting from the freshly sketched base.
        """
        self.rows_since_rebuild = 0
        self.base_rows = total_rows

    def counters(self) -> dict[str, int]:
        """The ingestion counters (merged into ops surfaces)."""
        return {
            "seq": self.seq,
            "rows_appended": self.rows_appended,
            "delta_merges": self.delta_merges,
            "rebuilds": self.rebuilds,
            "bg_rebuilds": self.bg_rebuilds,
            "rows_since_rebuild": self.rows_since_rebuild,
            "base_rows": self.base_rows,
        }

    def tail(self, n: int = 10) -> list[dict[str, Any]]:
        """The most recent ``n`` journal records, oldest first."""
        return [record.as_dict() for record in self.records[-n:]]


__all__ = [
    "APPLIED_DEFERRED",
    "APPLIED_DELTA_MERGE",
    "APPLIED_REBUILD",
    "IngestLog",
    "IngestRecord",
]
