"""The durable ingestion journal: on-disk WAL, snapshots and restart replay.

Everything :mod:`repro.ingest` journals in memory — the monotone
``(version, seq)`` identity and the delta batches behind it — is lost on
restart, which silently breaks the cache-key and provenance contract the
serving stack relies on.  This module makes the journal **persistent**:

* **Record container** — every journal entry is a length-prefixed,
  CRC-32-checksummed record (:func:`encode_record`) holding one
  canonical-JSON payload.  The reader (:func:`scan_records`) is
  *tolerant*: a torn or corrupted tail — a crash mid-write, a truncated
  copy, a flipped byte — stops the scan at the last complete record
  instead of raising, so recovery never invents data and never fails on
  the exact failure it exists for.

* **Segment files** — each dataset directory holds per-generation
  segment files (``journal-<version>-<base_seq>.seg``).  A segment opens
  with a generation-header record; append/build/swap records follow.
  Rotating to a new generation (reload / re-registration) creates and
  fsyncs the *new* segment **before** the in-memory swap and only then
  deletes the old ones, so a crash anywhere in the window can never
  replay a previous generation's deltas onto the new version.

* **Snapshots + compaction** — a full sketch rebuild makes the engine
  state a pure function of ``(rows[:base_rows], rows[base_rows:])``, so
  right after one the journal writes a per-generation
  ``snapshot-<version>.json`` (the table in
  columnar form plus the ingest counters, atomically via
  ``write-tmp + fsync + rename``) and truncates the replayed records by
  starting a fresh segment.  Replay cost is therefore bounded by the
  accuracy budget, not by dataset lifetime.

* **Replay** — :func:`replay_state` folds a loaded
  :class:`DurableState` back into exactly the ``(table, engine,
  IngestLog)`` an uninterrupted process would hold: deferred appends
  concat rows, delta-merge records rebuild the per-column partials and
  merge them (same RNG seeds — the streams are keyed by table sizes, not
  wall clock), rebuild/swap records re-run the deterministic full build.
  Byte-identical responses after restart are the tested contract, not a
  best effort.

The :class:`~repro.service.workspace.Workspace` drives all of this via
its ``data_dir`` argument; this module owns the file format and the
deterministic state reconstruction.
"""

from __future__ import annotations

import json
import os
import re
import struct
import threading
import zlib
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import Any, Callable, Iterator
from urllib.parse import quote, unquote

import numpy as np

from repro.errors import IngestError
from repro.obs import events as obs_events
from repro.obs.resources import record_journal_bytes
from repro.core.engine import EngineConfig, Foresight
from repro.core.executor import ExecutorConfig
from repro.core.neighborhood import NeighborhoodConfig
from repro.sketch.store import SketchStoreConfig
from repro.data.column import (
    BooleanColumn,
    CategoricalColumn,
    Column,
    NumericColumn,
)
from repro.data.schema import ColumnKind, Field
from repro.data.table import DataTable
from repro.ingest.delta import DeltaBatch
from repro.ingest.log import (
    APPLIED_DELTA_MERGE,
    APPLIED_REBUILD,
    IngestLog,
)
from repro.ingest.maintenance import build_delta_partials, merge_delta
from repro.ingest.snapshot_codec import (
    SnapshotDecodeError,
    decode_snapshot,
    encode_snapshot,
)

#: Journal record types (the ``"type"`` key of every record payload).
RECORD_GENERATION = "gen"     # segment header: names the generation
RECORD_APPEND = "append"      # one accepted append, rows included
RECORD_BUILD = "build"        # cold engine build froze the deferred rows
RECORD_SWAP = "swap"          # background rebuild swapped a fresh engine in

#: On-disk names.  Snapshots are **per generation** — the snapshot for a
#: new version must never overwrite the old generation's only durable
#: copy before the new generation's segment exists, so each lives in its
#: own file and stale ones are deleted only after the rotation is safe.
_SEGMENT_RE = re.compile(r"^journal-(\d{8})-(\d{10})\.seg$")
_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.(?:bin|json)$")


def snapshot_filename(version: int) -> str:
    """The (binary columnar) snapshot file for generation ``version``."""
    return f"snapshot-{version:08d}.bin"


def legacy_snapshot_filename(version: int) -> str:
    """The pre-codec JSON snapshot name — read-compat fallback only.

    Directories written before the binary columnar codec hold
    ``snapshot-<version>.json`` (one canonical-JSON journal record).
    They restore exactly as before; the next compaction writes the
    binary form and retires the JSON file.
    """
    return f"snapshot-{version:08d}.json"

#: Record header: big-endian (payload_length, crc32(payload)).
_HEADER = struct.Struct(">II")

#: Refuse absurd record lengths outright — a corrupted length field must
#: not make the reader try to allocate gigabytes.
MAX_RECORD_BYTES = 256 * 1024 * 1024


# ---------------------------------------------------------------------------
# Record container
# ---------------------------------------------------------------------------
def encode_record(payload: dict[str, Any]) -> bytes:
    """One journal record: ``length | crc32 | canonical JSON payload``."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def scan_records(data: bytes) -> Iterator[tuple[dict[str, Any], int, int]]:
    """Yield ``(payload, start_offset, end_offset)`` for each valid record.

    Stops — without raising — at the first torn, truncated or corrupted
    record: a header that doesn't fit, a body shorter than its declared
    length, a CRC mismatch, or an undecodable payload all end the scan.
    The last yielded record's ``end_offset`` is the clean truncation
    point for repair.
    """
    offset = 0
    size = len(data)
    while offset + _HEADER.size <= size:
        length, checksum = _HEADER.unpack_from(data, offset)
        body_start = offset + _HEADER.size
        if length > MAX_RECORD_BYTES or body_start + length > size:
            return
        body = data[body_start : body_start + length]
        if zlib.crc32(body) != checksum:
            return
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        end = body_start + length
        yield payload, offset, end
        offset = end


def decode_records(data: bytes) -> tuple[list[dict[str, Any]], int]:
    """All complete records in ``data`` plus the clean-tail offset."""
    records: list[dict[str, Any]] = []
    clean = 0
    for payload, _start, end in scan_records(data):
        records.append(payload)
        clean = end
    return records, clean


def segment_filename(version: int, base_seq: int) -> str:
    """The segment file holding generation ``version`` records > ``base_seq``."""
    return f"journal-{version:08d}-{base_seq:010d}.seg"


# ---------------------------------------------------------------------------
# Table snapshots (columnar, exact)
# ---------------------------------------------------------------------------
def table_to_payload(table: DataTable) -> dict[str, Any]:
    """A JSON-safe columnar image of ``table`` that restores byte-exactly.

    Numeric columns store their float64 values (``None`` for missing —
    JSON float text round-trips ``float64`` exactly); categorical
    columns store codes *plus the category list in order*, so category
    order — which downstream enumeration may iterate — survives even
    when it is not first-appearance order.
    """
    columns: list[dict[str, Any]] = []
    for column in table.columns():
        spec: dict[str, Any] = {
            "name": column.name,
            "kind": column.kind.value,
            "description": column.field.description,
            "unit": column.field.unit,
            "tags": list(column.field.tags),
        }
        if isinstance(column, NumericColumn):
            spec["values"] = column.to_list()
        elif isinstance(column, BooleanColumn):
            spec["codes"] = column.codes.tolist()
        elif isinstance(column, CategoricalColumn):
            spec["codes"] = column.codes.tolist()
            spec["categories"] = column.categories
        else:  # pragma: no cover - no other column kinds exist
            raise IngestError(
                f"cannot snapshot column type {type(column).__name__}"
            )
        columns.append(spec)
    return {"name": table.name, "n_rows": table.n_rows, "columns": columns}


def table_from_payload(payload: dict[str, Any]) -> DataTable:
    """Rebuild the exact :class:`DataTable` from :func:`table_to_payload`."""
    columns: list[Column] = []
    for spec in payload["columns"]:
        kind = ColumnKind(spec["kind"])
        column_field = Field(
            name=spec["name"],
            kind=kind,
            description=spec.get("description", ""),
            unit=spec.get("unit", ""),
            tags=tuple(spec.get("tags", ())),
        )
        if kind is ColumnKind.NUMERIC:
            raw = spec["values"]
            values = np.array(
                [np.nan if value is None else float(value) for value in raw],
                dtype=np.float64,
            )
            mask = np.array([value is None for value in raw], dtype=bool)
            columns.append(NumericColumn(column_field, values, mask))
        elif kind is ColumnKind.BOOLEAN:
            codes = np.asarray(spec["codes"], dtype=np.int64)
            columns.append(BooleanColumn(column_field, codes))
        else:
            codes = np.asarray(spec["codes"], dtype=np.int64)
            columns.append(
                CategoricalColumn(column_field, codes, spec["categories"])
            )
    return DataTable(columns, name=payload.get("name", "dataset"))


# ---------------------------------------------------------------------------
# Engine configuration (persisted inside snapshots)
# ---------------------------------------------------------------------------
def engine_config_to_payload(config: EngineConfig) -> dict[str, Any]:
    """A JSON image of the result-affecting engine configuration.

    Persisted inside a dataset's snapshot so a restart rebuilds a
    custom-configured dataset under the exact config it was registered
    with — sketch seeds, capacities and mode all change what a query
    returns, so restoring under the workspace default would silently
    break byte-identical recovery.  The executor is deliberately
    excluded: worker count is a per-process runtime property documented
    not to change any output byte.
    """
    return {
        "mode": config.mode,
        "default_top_k": config.default_top_k,
        "max_candidates_triples": config.max_candidates_triples,
        "sketch": {f.name: getattr(config.sketch, f.name)
                   for f in dataclass_fields(SketchStoreConfig)},
        "neighborhood": {f.name: getattr(config.neighborhood, f.name)
                         for f in dataclass_fields(NeighborhoodConfig)},
    }


def engine_config_from_payload(
    payload: dict[str, Any],
    executor: ExecutorConfig | None = None,
) -> EngineConfig:
    """Rebuild the :class:`EngineConfig` written by
    :func:`engine_config_to_payload`.

    Unknown keys are ignored (an older build reading a newer snapshot
    must not crash on a knob it doesn't have); missing keys keep their
    defaults.  ``executor`` supplies the owning workspace's execution
    config — the one dimension intentionally not persisted.
    """
    def _known(cls: type, raw: Any) -> dict[str, Any]:
        names = {f.name for f in dataclass_fields(cls)}
        return {key: value for key, value in dict(raw or {}).items()
                if key in names}

    base = EngineConfig()
    config = EngineConfig(
        mode=str(payload.get("mode", base.mode)),
        default_top_k=int(payload.get("default_top_k", base.default_top_k)),
        max_candidates_triples=int(
            payload.get("max_candidates_triples", base.max_candidates_triples)
        ),
        sketch=SketchStoreConfig(
            **_known(SketchStoreConfig, payload.get("sketch"))
        ),
        neighborhood=NeighborhoodConfig(
            **_known(NeighborhoodConfig, payload.get("neighborhood"))
        ),
    )
    if executor is not None:
        config.executor = executor
    return config


# ---------------------------------------------------------------------------
# Durable state (what a load reconstructs from disk)
# ---------------------------------------------------------------------------
@dataclass
class DurableState:
    """Everything the journal knows about one dataset."""

    version: int
    #: The compaction snapshot (payload of ``snapshot-<version>.json``),
    #: or None
    #: when recovery starts from the registered loader's base table.
    snapshot: dict[str, Any] | None
    #: Replayable records of the current generation, contiguous, with
    #: seq above the snapshot's.
    records: list[dict[str, Any]] = field(default_factory=list)
    #: True when a torn/corrupt tail (or stale later segments) was found
    #: and will be dropped on repair.
    damaged: bool = False
    #: The engine-config payload persisted for this generation, already
    #: resolved: the snapshot's copy when a snapshot exists, else the
    #: segment header's (which exists so a custom config survives a
    #: crash *before* the first compaction snapshot).  None means the
    #: workspace default applied.
    engine_config: dict[str, Any] | None = None

    @property
    def seq(self) -> int:
        """The last durable sequence number."""
        for record in reversed(self.records):
            if record["type"] in (RECORD_APPEND, RECORD_SWAP):
                return int(record["seq"])
        if self.snapshot is not None:
            return int(self.snapshot["seq"])
        return 0


class _CommitPipeline:
    """Group-commit state for one dataset's journal.

    Tickets are dense integers: ``issued`` counts records written and
    flushed to the tail segment (in file order — issuance happens under
    the dataset's entry lock), ``synced`` is the highest ticket covered
    by a completed fsync.  ``leader`` marks an fsync in flight;
    ``failed`` poisons the pipeline after an unsuccessful fsync until
    the generation rotates.  The condition is a leaf in the declared
    lock hierarchy (``journal.commit``, level 30): it is taken under
    the workspace entry lock on write paths and bare during ticket
    waits, and never wraps another lock.
    """

    __slots__ = ("cond", "issued", "synced", "leader", "failed",
                 "commits", "records", "max_group")

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.issued = 0
        self.synced = 0
        self.leader = False
        self.failed: BaseException | None = None
        # Counters (reported by DatasetJournal.group_commit_stats).
        self.commits = 0
        self.records = 0
        self.max_group = 0


class CommitTicket:
    """A claim on a future group fsync, returned by journal appends.

    The append's bytes are already written and flushed when the ticket
    exists; :meth:`wait` blocks until an fsync covers them (raising if
    the group fsync failed — the append is then *not* acknowledged).
    Callers wait after releasing the dataset's entry lock, so one
    leader's fsync can acknowledge every appender queued behind it.
    """

    __slots__ = ("_journal", "_name", "_pipeline", "_number")

    def __init__(self, journal: "DatasetJournal", name: str,
                 pipeline: _CommitPipeline, number: int):
        self._journal = journal
        self._name = name
        self._pipeline = pipeline
        self._number = number

    def wait(self) -> str:
        """Block until this append's bytes are stable (or raise).

        Returns the role this waiter played in the group fsync —
        ``"leader"`` (it issued the fsync), ``"follower"`` (it slept
        while another waiter's fsync covered it) or ``"covered"`` (a
        completed fsync already covered it on arrival) — so tracing can
        show who paid for durability.
        """
        return self._journal._wait_for_commit(
            self._name, self._pipeline, self._number
        )


class DatasetJournal:
    """Per-workspace manager of the on-disk dataset journals.

    One instance owns a ``data_dir``; each dataset gets a subdirectory
    (URL-quoted name, so any registrable name maps to a filesystem-safe,
    injective path).  All mutating calls for one dataset happen under
    that dataset's workspace entry lock, so this class only guards its
    own handle table and the per-dataset group-commit pipelines (whose
    ticket waits deliberately run *outside* the entry lock).
    """

    def __init__(self, root: str | Path, fsync: bool = True,
                 group_commit: bool = False,
                 max_group_delay: float = 0.0):
        self.root = Path(root)
        self.fsync = fsync
        # Without per-record fsync there is nothing to amortize.
        self.group_commit = bool(group_commit and fsync)
        self.max_group_delay = max_group_delay
        self.root.mkdir(parents=True, exist_ok=True)
        self._handles: dict[str, Any] = {}
        self._pipelines: dict[str, _CommitPipeline] = {}
        # Per-dataset on-disk bytes, maintained incrementally: appends
        # add record lengths; rotations (rare, already O(directory))
        # rescan.  Reads (the memory ledger) never touch the filesystem.
        self._disk: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def _dir(self, name: str) -> Path:
        return self.root / quote(name, safe="")

    def dataset_names(self) -> list[str]:
        """Datasets with any durable state, in directory order."""
        names = []
        for child in sorted(self.root.iterdir()):
            if child.is_dir() and any(
                _SEGMENT_RE.match(p.name) or _SNAPSHOT_RE.match(p.name)
                for p in child.iterdir()
            ):
                names.append(unquote(child.name))
        return names

    def has_state(self, name: str) -> bool:
        directory = self._dir(name)
        if not directory.is_dir():
            return False
        return any(
            _SEGMENT_RE.match(p.name) or _SNAPSHOT_RE.match(p.name)
            for p in directory.iterdir()
        )

    def _segments(self, name: str) -> list[tuple[int, int, Path]]:
        """All ``(version, base_seq, path)`` segments, sorted."""
        directory = self._dir(name)
        if not directory.is_dir():
            return []
        found = []
        for path in directory.iterdir():
            match = _SEGMENT_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), int(match.group(2)), path))
        return sorted(found)

    def _snapshots(self, name: str) -> list[tuple[int, Path]]:
        """All ``(version, path)`` snapshot files, sorted."""
        directory = self._dir(name)
        if not directory.is_dir():
            return []
        found = []
        for path in directory.iterdir():
            match = _SNAPSHOT_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return sorted(found)

    # ------------------------------------------------------------------
    # Loading + repair
    # ------------------------------------------------------------------
    def load(self, name: str, repair: bool = False) -> DurableState | None:
        """Reconstruct the dataset's durable state from disk.

        Reads the newest generation's segments, tolerating a torn or
        corrupted tail by stopping at the last complete record.  With
        ``repair=True`` the torn tail is truncated away and stale files
        (older generations, unusable later segments, an out-of-date
        snapshot) are deleted, leaving the directory ready for appends.
        """
        segments = self._segments(name)
        snapshots = self._snapshots(name)
        if not segments:
            if not snapshots:
                return None
            # A crash between the snapshot rename and the compaction
            # segment left the snapshot orphaned: the dataset must stay
            # appendable, so repair recreates its generation segment.
            version, _path = snapshots[-1]
            snapshot = self._read_snapshot(name, version)
            if snapshot is None:
                # The snapshot file exists but is corrupt: its rows are
                # gone and nothing of this generation can replay.
                # Restarting the SAME version at seq 0 would re-mint
                # (version, seq) identities already acknowledged for
                # different data — rotate to a fresh generation instead.
                if repair:
                    self.begin_generation(name, version + 1)
                return DurableState(version=version + 1, snapshot=None,
                                    damaged=True)
            if repair:
                self.begin_generation(name, version,
                                      base_seq=int(snapshot["seq"]),
                                      engine_config=snapshot.get(
                                          "engine_config"))
            return DurableState(version=version, snapshot=snapshot,
                                engine_config=snapshot.get("engine_config"))
        # The newest generation *with a segment* wins.  A newer
        # snapshot-only version is a crashed rotation that never started
        # its segment: the operation was never acknowledged, so the old
        # generation — still fully intact — is the correct state.
        version = max(entry[0] for entry in segments)
        current = [entry for entry in segments if entry[0] == version]
        stale_paths = [entry[2] for entry in segments if entry[0] != version]
        stale_paths += [path for v, path in snapshots if v != version]
        snapshot = self._read_snapshot(name, version)
        snapshot_seq = int(snapshot["seq"]) if snapshot is not None else 0
        #: The generation HAS a snapshot file but it is unreadable: the
        #: compacted rows are lost, so every surviving record is
        #: unanchored — and pretending the generation starts at seq 0
        #: would re-mint identities already acknowledged for different
        #: data.  Handled below by rotating to a fresh generation.
        snapshot_corrupt = snapshot is None and any(
            v == version for v, _path in snapshots
        )

        records: list[dict[str, Any]] = []
        expected_seq = snapshot_seq
        damaged = False
        truncate_at: tuple[Path, int] | None = None
        unusable: list[Path] = []
        stopped = False
        generation_config: dict[str, Any] | None = None
        for index, (_version, base_seq, path) in enumerate(current):
            if stopped:
                unusable.append(path)
                damaged = True
                continue
            data = path.read_bytes()
            segment_records, clean = decode_records(data)
            if clean < len(data):
                damaged = True
                truncate_at = (path, clean)
                stopped = True  # later segments can't follow a torn tail
            if not segment_records:
                if index == 0 and clean == 0:
                    # The generation header itself is unreadable: nothing
                    # of this generation is trustworthy.
                    unusable.append(path)
                    stopped = True
                continue
            header = segment_records[0]
            if (header.get("type") != RECORD_GENERATION
                    or int(header.get("version", -1)) != version):
                damaged = True
                unusable.append(path)
                stopped = True
                continue
            if generation_config is None:
                generation_config = header.get("engine_config")
            for record in segment_records[1:]:
                kind = record.get("type")
                if kind in (RECORD_APPEND, RECORD_SWAP):
                    seq = int(record.get("seq", -1))
                    if seq <= expected_seq:
                        continue  # pre-snapshot record in a stale segment
                    if seq != expected_seq + 1:
                        # A gap means records were lost mid-journal:
                        # everything after the gap is unusable.
                        damaged = True
                        stopped = True
                        break
                    expected_seq = seq
                    records.append(record)
                elif kind == RECORD_BUILD:
                    if int(record.get("seq", -1)) > snapshot_seq:
                        records.append(record)
                else:
                    continue  # unknown record types are skipped, not fatal

        if snapshot_corrupt:
            # Rotation deletes every old segment and the corrupt
            # snapshot; the bumped version guarantees no (version, seq)
            # pair ever names two different states.
            if repair:
                self.begin_generation(name, version + 1,
                                      engine_config=generation_config)
            return DurableState(version=version + 1, snapshot=None,
                                damaged=True,
                                engine_config=generation_config)
        if repair:
            if truncate_at is not None:
                path, clean = truncate_at
                with open(path, "r+b") as handle:
                    handle.truncate(clean)
                    handle.flush()
                    os.fsync(handle.fileno())
            for path in unusable + stale_paths:
                self._remove(path)
            self._fsync_dir(self._dir(name))
            if not any(v == version for v, _s, _p in self._segments(name)):
                # Every segment of the surviving generation was unusable
                # (e.g. a destroyed header): start a fresh one at the
                # recovered position so appends have somewhere to land.
                self.begin_generation(
                    name, version, base_seq=expected_seq,
                    engine_config=(snapshot.get("engine_config")
                                   if snapshot is not None
                                   else generation_config),
                )
        return DurableState(
            version=version, snapshot=snapshot, records=records,
            damaged=damaged,
            engine_config=(snapshot.get("engine_config")
                           if snapshot is not None else generation_config),
        )

    def _read_snapshot(self, name: str,
                       version: int) -> dict[str, Any] | None:
        directory = self._dir(name)
        binary = directory / snapshot_filename(version)
        try:
            data = binary.read_bytes()
        except OSError:
            data = None
        if data is not None:
            # A present-but-undecodable binary snapshot is corruption,
            # not a reason to fall back: a leftover same-version .json
            # may sit at an older seq than the segment's base_seq and
            # would replay into a gap.  Returning None routes into the
            # corrupt-snapshot rotation instead.
            try:
                payload = decode_snapshot(data)
            except SnapshotDecodeError:
                return None
            if (payload.get("type") != "snapshot"
                    or int(payload.get("version", -1)) != version):
                return None
            return payload
        legacy = directory / legacy_snapshot_filename(version)
        try:
            data = legacy.read_bytes()
        except OSError:
            return None
        records, _clean = decode_records(data)
        if (not records or records[0].get("type") != "snapshot"
                or int(records[0].get("version", -1)) != version):
            return None
        return records[0]

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def begin_generation(self, name: str, version: int,
                         base_seq: int = 0,
                         engine_config: dict[str, Any] | None = None) -> None:
        """Rotate to a fresh generation: new segment first, cleanup after.

        The new segment (with its generation-header record) is written
        and fsynced — file and directory — *before* any old file is
        touched, so recovery always finds either the old generation
        intact or the new one started; never a mix.  Cleanup then drops
        other generations' segments and snapshots (snapshots are
        per-generation files, so the new generation's own snapshot — if
        compaction just wrote it — survives untouched).

        ``engine_config`` (an :func:`engine_config_to_payload` dict)
        rides in the generation header so a custom-configured dataset
        whose process dies before its first compaction snapshot still
        replays under the config its journalled history was produced
        with.
        """
        directory = self._dir(name)
        directory.mkdir(parents=True, exist_ok=True)
        old_segments = [path for _v, _s, path in self._segments(name)]
        old_snapshots = [path for v, path in self._snapshots(name)
                         if v != version]
        self._close_handle(name)
        path = directory / segment_filename(version, base_seq)
        handle = open(path, "ab")
        header: dict[str, Any] = {
            "type": RECORD_GENERATION, "version": version,
            "base_seq": base_seq,
        }
        if engine_config is not None:
            header["engine_config"] = engine_config
        try:
            handle.write(encode_record(header))
            handle.flush()
            os.fsync(handle.fileno())
        except BaseException:
            # Failure-atomic, like append(): a partial segment with a
            # torn header must not survive — recovery would take it as
            # the newest generation, declare it unusable, and delete the
            # still-intact previous generation with it.
            try:
                handle.close()
            except OSError:  # pragma: no cover - close failure is benign
                pass
            self._remove(path)
            raise
        self._fsync_dir(directory)
        for old in old_segments:
            if old != path:
                self._remove(old)
        for old in old_snapshots:
            self._remove(old)
        self._fsync_dir(directory)
        self._handles[name] = handle
        self._rescan_disk(name)
        pipeline = self._pipelines.get(name)
        if pipeline is not None:
            with pipeline.cond:
                # Fresh generation, fresh tail: un-poison the commit
                # pipeline and settle its ledger.  Failed-era tickets
                # already raised to their appenders and the old segment
                # is gone; successful-era tickets were drained by the
                # _close_handle above.
                pipeline.failed = None
                pipeline.synced = pipeline.issued
                pipeline.cond.notify_all()

    def append(self, name: str,
               payload: dict[str, Any]) -> CommitTicket | None:
        """Commit one record to the dataset's tail segment.

        Failure-atomic: if the write/flush/fsync fails partway (ENOSPC,
        I/O error), the segment is truncated back to its pre-append
        length before the error propagates.  Torn bytes must never stay
        in the file — a later successful append would land *after* them,
        and replay (which stops at the first damage) would silently drop
        it despite its acknowledgement.

        With ``group_commit`` the fsync is deferred: the record is
        written and flushed here (under the caller's entry lock, so
        tickets are issued in file order) and a :class:`CommitTicket`
        is returned.  The caller must ``wait()`` on it — after
        releasing the entry lock — before acknowledging the append;
        one waiter's fsync then covers every ticket behind it.
        Without group commit the fsync happens inline and the return
        value is ``None``.
        """
        pipeline = self._pipeline(name) if self.group_commit else None
        if pipeline is not None:
            with pipeline.cond:
                if pipeline.failed is not None:
                    raise IngestError(
                        f"journal for dataset {name!r} is failed after "
                        "an unsuccessful group fsync; reload to rotate "
                        "the generation"
                    ) from pipeline.failed
        handle = self._handle(name)
        record = encode_record(payload)
        start = handle.tell()
        try:
            handle.write(record)
            handle.flush()
            if pipeline is None and self.fsync:
                os.fsync(handle.fileno())
        except OSError:
            try:
                handle.truncate(start)
                handle.flush()
                os.fsync(handle.fileno())
            except OSError:
                # Can't prove the tail is clean: drop the handle so the
                # next open goes through load(repair=True)'s scan.
                self._close_handle(name)
            raise
        usage = self._disk.get(name)
        if usage is None:
            self._rescan_disk(name)  # first sight; includes this record
        else:
            usage["journal_bytes"] += len(record)
        record_journal_bytes(len(record))
        if pipeline is None:
            return None
        with pipeline.cond:
            pipeline.issued += 1
            return CommitTicket(self, name, pipeline, pipeline.issued)

    def sync(self, name: str) -> None:
        """Force the dataset's journal to stable storage (flush + fsync).

        Under group commit this first drains the commit pipeline:
        every outstanding ticket is covered by an fsync (this thread
        acting as leader if none is in flight) before the handle-level
        fsync below, so a flush racing concurrent appends returns only
        once everything written so far is stable — and raises, rather
        than lies, if the pipeline is poisoned by a failed fsync.
        """
        self._drain(name)
        handle = self._handles.get(name)
        if handle is None:
            tail = self._tail_segment(name)
            if tail is None:
                return
            with open(tail, "rb") as reader:
                os.fsync(reader.fileno())
            return
        handle.flush()
        os.fsync(handle.fileno())

    def write_snapshot(self, name: str, payload: dict[str, Any]) -> None:
        """Atomically persist a compaction snapshot and truncate the journal.

        The snapshot is written to its generation's own file (temp +
        fsync + rename); only then does a fresh segment (based at the
        snapshot's seq) replace the replayed ones and delete other
        generations' files.  Because snapshots are per-generation, a
        crash at any point leaves a recoverable combination: the old
        generation fully intact (its snapshot untouched, the new one
        ignored as segment-less), or the new one started.
        """
        version = int(payload["version"])
        directory = self._dir(name)
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / snapshot_filename(version)
        temporary = directory / (snapshot_filename(version) + ".tmp")
        try:
            with open(temporary, "wb") as handle:
                handle.write(encode_snapshot(payload))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temporary, target)
        except BaseException:
            self._remove(temporary)  # recovery ignores .tmp, but be tidy
            raise
        self._fsync_dir(directory)
        # A pre-codec .json snapshot of this generation is superseded by
        # the durable .bin; drop it so discovery never sees two files
        # for one version.
        self._remove(directory / legacy_snapshot_filename(version))
        self.begin_generation(name, version, base_seq=int(payload["seq"]),
                              engine_config=payload.get("engine_config"))

    def close(self) -> None:
        for name in list(self._handles):
            self._close_handle(name)

    # ------------------------------------------------------------------
    # Disk-byte accounting (feeds the memory ledger)
    # ------------------------------------------------------------------
    def _rescan_disk(self, name: str) -> dict[str, int]:
        """Recount one dataset's on-disk bytes from the directory.

        Called only at rotation points (``begin_generation``, first
        sight of a dataset) — never on the read path — so the usage
        dict stays a pure counter read for ``disk_usage``.
        """
        journal_bytes = 0
        for _version, _base_seq, path in self._segments(name):
            try:
                journal_bytes += path.stat().st_size
            except OSError:  # pragma: no cover - racing deletion
                pass
        snapshot_bytes = 0
        for _version, path in self._snapshots(name):
            try:
                snapshot_bytes += path.stat().st_size
            except OSError:  # pragma: no cover - racing deletion
                pass
        usage = {"journal_bytes": journal_bytes,
                 "snapshot_bytes": snapshot_bytes}
        self._disk[name] = usage
        return usage

    def disk_usage(self, name: str | None = None) -> dict[str, int]:
        """Incrementally maintained on-disk bytes (journal + snapshots).

        With a ``name``, that dataset's usage (scanning it on first
        sight); without one, totals across every dataset already seen.
        """
        if name is not None:
            usage = self._disk.get(name)
            if usage is None:
                usage = self._rescan_disk(name)
            return dict(usage)
        # The totals path must count recovered-but-untouched datasets
        # too: right after a restart nothing has been appended yet, so
        # ``self._disk`` is empty and /v1/debug + Prometheus would read
        # 0 disk bytes until first access.  Scan the directory listing
        # for unseen datasets (a one-time cost per dataset; the usage
        # row is cached afterwards).
        for unseen in self.dataset_names():
            if unseen not in self._disk:
                self._rescan_disk(unseen)
        totals = {"journal_bytes": 0, "snapshot_bytes": 0}
        for usage in self._disk.values():
            totals["journal_bytes"] += usage["journal_bytes"]
            totals["snapshot_bytes"] += usage["snapshot_bytes"]
        return totals

    def forget_disk_usage(self, name: str) -> None:
        """Drop a closed dataset's usage row."""
        self._disk.pop(name, None)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _handle(self, name: str):
        handle = self._handles.get(name)
        if handle is None:
            tail = self._tail_segment(name)
            if tail is None:
                raise IngestError(
                    f"dataset {name!r} has no journal segment; "
                    "begin_generation must run before appends"
                )
            handle = open(tail, "ab")
            self._handles[name] = handle
        return handle

    def _tail_segment(self, name: str) -> Path | None:
        segments = self._segments(name)
        return segments[-1][2] if segments else None

    def _close_handle(self, name: str) -> None:
        # Settle outstanding group-commit tickets while the handle is
        # still open: every append acknowledged-to-be gets its fsync
        # (or its failure) before the file goes away.  Failures are not
        # re-raised here — close/rotation paths must make progress, and
        # the affected appenders already saw the error via their
        # tickets.
        self._drain(name, raise_failed=False)
        self._drop_handle(name)

    def _drop_handle(self, name: str) -> None:
        handle = self._handles.pop(name, None)
        if handle is not None:
            try:
                handle.close()
            except OSError:  # pragma: no cover - close failure is benign
                pass

    # ------------------------------------------------------------------
    # Group commit
    # ------------------------------------------------------------------
    def _pipeline(self, name: str) -> _CommitPipeline:
        pipeline = self._pipelines.get(name)
        if pipeline is None:
            # setdefault: dict ops are atomic, so racing first appends
            # for one dataset still converge on a single pipeline.
            pipeline = self._pipelines.setdefault(name, _CommitPipeline())
        return pipeline

    def _drain(self, name: str, raise_failed: bool = True) -> None:
        """Fsync every outstanding group-commit ticket for ``name``.

        Acts as leader if no fsync is in flight; returns once
        everything issued so far is stable.  A poisoned pipeline
        raises (``raise_failed``) or is left for the next generation
        rotation to reset.
        """
        pipeline = self._pipelines.get(name)
        if pipeline is None:
            return
        with pipeline.cond:
            if pipeline.failed is not None:
                if raise_failed:
                    raise IngestError(
                        f"journal for dataset {name!r} is failed after "
                        "an unsuccessful group fsync"
                    ) from pipeline.failed
                return
            if pipeline.synced >= pipeline.issued:
                return
            target = pipeline.issued
        try:
            self._wait_for_commit(name, pipeline, target)
        except IngestError:
            if raise_failed:
                raise

    def _wait_for_commit(self, name: str, pipeline: _CommitPipeline,
                         number: int) -> str:
        """Block until ticket ``number`` is covered by a completed fsync.

        Leader/follower: the first waiter whose ticket is not yet
        synced and who finds no fsync in flight becomes the leader —
        it fsyncs once, covering every ticket issued so far, and wakes
        the rest; followers sleep on the condition.  A failed fsync
        poisons the pipeline (outstanding and future appends fail
        until the generation rotates) and drops the handle: the
        unproven tail must go through ``load(repair=True)``'s scan,
        never be appended to again.

        Returns the waiter's role: ``"leader"``, ``"follower"`` or
        ``"covered"`` (already stable on arrival).
        """
        role = "covered"
        while True:
            with pipeline.cond:
                if pipeline.synced >= number:
                    return role
                if pipeline.failed is not None:
                    raise IngestError(
                        f"group commit failed for dataset {name!r}"
                    ) from pipeline.failed
                if pipeline.leader:
                    role = "follower"
                    pipeline.cond.wait()
                    continue
                role = "leader"
                pipeline.leader = True
                if self.max_group_delay > 0 and pipeline.issued <= number:
                    # Alone so far: linger briefly so racing appenders
                    # can join this group.
                    pipeline.cond.wait(self.max_group_delay)
                target = pipeline.issued
                handle = self._handles.get(name)
            # The fsync itself runs outside the condition so appenders
            # keep writing, flushing and queueing behind it.  A missing
            # handle means a drain-and-close already made these bytes
            # stable (rotation paths drain before dropping the handle).
            error: BaseException | None = None
            if handle is not None:
                try:
                    os.fsync(handle.fileno())
                except (OSError, ValueError) as exc:
                    error = exc
            if error is not None:
                # Pipeline poisoning is an operational incident worth a
                # structured event; emitted before taking the condition
                # back so event sinks never run under it.
                obs_events.emit(
                    "fsync_failure", dataset=name, error=repr(error),
                )
            with pipeline.cond:
                pipeline.leader = False
                if error is not None:
                    pipeline.failed = error
                    pipeline.cond.notify_all()
                    self._drop_handle(name)
                    raise IngestError(
                        f"group commit failed for dataset {name!r}"
                    ) from error
                group = target - pipeline.synced
                pipeline.synced = target
                if group > 0:
                    pipeline.commits += 1
                    pipeline.records += group
                    pipeline.max_group = max(pipeline.max_group, group)
                pipeline.cond.notify_all()
                if pipeline.synced >= number:
                    return role

    def group_commit_stats(self) -> dict[str, Any]:
        """Aggregate group-commit counters across datasets.

        ``commits`` is the number of group fsyncs issued, ``records``
        the appends they covered; ``fsyncs_saved`` is their difference
        — the fsyncs per-record commit would have paid on the same
        history.  ``max_group_size`` is the largest single group.
        """
        commits = records = max_group = 0
        for pipeline in list(self._pipelines.values()):
            with pipeline.cond:
                commits += pipeline.commits
                records += pipeline.records
                max_group = max(max_group, pipeline.max_group)
        return {
            "enabled": self.group_commit,
            "commits": commits,
            "records": records,
            "fsyncs_saved": records - commits,
            "max_group_size": max_group,
        }

    @staticmethod
    def _remove(path: Path) -> None:
        try:
            path.unlink()
        except FileNotFoundError:
            pass

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - non-POSIX fallback
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - some filesystems refuse
            pass
        finally:
            os.close(fd)


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------
@dataclass
class ReplayOutcome:
    """What :func:`replay_state` reconstructed."""

    table: DataTable
    engine: Foresight | None
    log: IngestLog
    #: Engine builds performed during replay (for the entry's counters).
    engine_builds: int = 0
    #: Whether the registered loader ran (0 when a snapshot supplied rows).
    loads: int = 0


def rebuild_with_catchup(
    full_table: DataTable,
    prefix_table: DataTable,
    make_engine: Callable[[DataTable], Foresight],
) -> Foresight:
    """A fresh engine over ``full_table`` whose sketches were rebuilt from
    ``prefix_table`` and delta-merged over the remaining rows.

    This is the single code path behind both a live background-rebuild
    swap (where ``prefix_table`` is the table snapshot the worker built
    from) and its journal replay (where the prefix is re-sliced from the
    grown table) — sharing it is what makes the two byte-identical.
    """
    n_total = full_table.n_rows
    n_prefix = prefix_table.n_rows
    fresh = make_engine(prefix_table)
    if fresh.store is None or n_total <= n_prefix:
        if n_total <= n_prefix and fresh.table is full_table:
            return fresh
        return Foresight(
            full_table,
            registry=fresh.registry,
            config=fresh.config,
            preprocess=False,
            store=fresh.store,
            executor=fresh.executor,
        )
    delta_table = full_table.take(np.arange(n_prefix, n_total))
    partials = build_delta_partials(delta_table, fresh.store, fresh.executor)
    store = merge_delta(fresh.store, full_table, n_total - n_prefix, partials)
    return Foresight(
        full_table,
        registry=fresh.registry,
        config=fresh.config,
        preprocess=False,
        store=store,
        executor=fresh.executor,
    )


def _log_from_snapshot(snapshot: dict[str, Any]) -> IngestLog:
    counters = snapshot.get("counters", {})
    return IngestLog(
        base_seq=int(snapshot["seq"]),
        rows_since_rebuild=int(counters.get("rows_since_rebuild", 0)),
        base_rows=int(counters.get("base_rows", 0)),
        rows_appended=int(counters.get("rows_appended", 0)),
        delta_merges=int(counters.get("delta_merges", 0)),
        rebuilds=int(counters.get("rebuilds", 0)),
        bg_rebuilds=int(counters.get("bg_rebuilds", 0)),
    )


def replay_counters(state: DurableState) -> IngestLog:
    """The :class:`IngestLog` a full replay would produce — counters only.

    Walks the records without touching tables or sketches, so a restored
    dataset can report its exact ``(version, seq)`` identity and
    ingestion counters immediately while the expensive state
    reconstruction (:func:`replay_state`) is deferred to first use.
    """
    log = (IngestLog() if state.snapshot is None
           else _log_from_snapshot(state.snapshot))
    for record in state.records:
        kind = record["type"]
        if kind == RECORD_APPEND:
            log.append(int(record["n_rows"]), record["applied"],
                       int(record["total_rows"]),
                       timestamp=record.get("ts"))
        elif kind == RECORD_BUILD:
            log.mark_rebuilt(int(record["total_rows"]))
        elif kind == RECORD_SWAP:
            base_rows = int(record["built_from_rows"])
            total_rows = int(record["total_rows"])
            log.record_swap(max(0, total_rows - base_rows), base_rows,
                            total_rows, timestamp=record.get("ts"))
    return log


class ReplayMachine:
    """Applies journal records to live ``(table, engine, log)`` state.

    This is :func:`replay_state`'s record loop factored into an object
    that can be fed records *incrementally* — restart replay constructs
    one and drains a loaded :class:`DurableState` through it; a
    replication replica constructs one over its materialised state and
    feeds it records as they stream in from the primary.  Both paths run
    the exact same code, which is what makes a tailing replica
    byte-identical to a restarted primary at the same ``(version, seq)``.

    ``engine`` may start ``None``: the first record that needs sketches
    (a delta-merge append, or a build marker) triggers a deterministic
    cold build over the pre-append table, exactly as replay does.
    """

    __slots__ = ("dataset", "table", "engine", "log", "make_engine",
                 "engine_builds")

    def __init__(
        self,
        dataset: str,
        table: DataTable,
        log: IngestLog,
        make_engine: Callable[[DataTable], Foresight],
        engine: Foresight | None = None,
    ):
        self.dataset = dataset
        self.table = table
        self.engine = engine
        self.log = log
        self.make_engine = make_engine
        self.engine_builds = 0

    def apply(self, record: dict[str, Any]) -> None:
        """Fold one journal record into the state (mutates in place)."""
        kind = record["type"]
        if kind == RECORD_APPEND:
            batch = DeltaBatch.from_records(
                self.dataset, record["rows"], self.table.schema
            )
            new_table = self.table.concat(batch.table)
            applied = record["applied"]
            if applied == APPLIED_DELTA_MERGE:
                if self.engine is None:
                    # The engine existed live (a cold build at seq 0
                    # needs no marker) — rebuild it over the same rows.
                    self.engine = self.make_engine(self.table)
                    self.engine_builds += 1
                    self.log.mark_rebuilt(self.table.n_rows)
                store = self.engine.store
                if store is None:  # pragma: no cover - defensive
                    raise IngestError(
                        f"journal for {self.dataset!r} delta-merges into "
                        "an exact-mode engine"
                    )
                partials = build_delta_partials(
                    batch.table, store, self.engine.executor
                )
                new_store = merge_delta(
                    store, new_table, batch.n_rows, partials
                )
                self.engine = Foresight(
                    new_table,
                    registry=self.engine.registry,
                    config=self.engine.config,
                    preprocess=False,
                    store=new_store,
                    executor=self.engine.executor,
                )
            elif applied == APPLIED_REBUILD:
                self.engine = self.make_engine(new_table)
                self.engine_builds += 1
            # APPLIED_DEFERRED: rows extend the table; the engine (if it
            # was an exact-mode swap live) rebuilds lazily over the same
            # rows, which is byte-identical for exact mode.
            self.table = new_table
            self.log.append(batch.n_rows, applied, self.table.n_rows,
                            timestamp=record.get("ts"))
        elif kind == RECORD_BUILD:
            if self.engine is None:
                self.engine = self.make_engine(self.table)
                self.engine_builds += 1
            self.log.mark_rebuilt(self.table.n_rows)
        elif kind == RECORD_SWAP:
            base_rows = int(record["built_from_rows"])
            prefix = (
                self.table if base_rows >= self.table.n_rows
                else self.table.take(np.arange(base_rows))
            )
            self.engine = rebuild_with_catchup(
                self.table, prefix, self.make_engine
            )
            self.engine_builds += 1
            self.log.record_swap(
                max(0, self.table.n_rows - base_rows), base_rows,
                self.table.n_rows, timestamp=record.get("ts"),
            )


def replay_state(
    dataset: str,
    state: DurableState,
    base_table: Callable[[], DataTable] | None,
    make_engine: Callable[[DataTable], Foresight],
) -> ReplayOutcome:
    """Fold a :class:`DurableState` back into live serving state.

    ``base_table`` supplies the generation's base rows when no snapshot
    exists (the registered loader); ``make_engine`` builds a fresh engine
    for a table exactly the way the owning workspace would (same config
    resolution), so replayed builds match live builds byte for byte.
    """
    builds = 0
    loads = 0
    engine: Foresight | None = None
    if state.snapshot is not None:
        snapshot = state.snapshot
        table = table_from_payload(snapshot["table"])
        log = _log_from_snapshot(snapshot)
        if snapshot.get("engine_built"):
            base_rows = int(snapshot.get("base_rows", table.n_rows))
            prefix = (
                table if base_rows >= table.n_rows
                else table.take(np.arange(base_rows))
            )
            engine = rebuild_with_catchup(table, prefix, make_engine)
            builds += 1
    else:
        if base_table is None:
            raise IngestError(
                f"dataset {dataset!r} has journalled appends but no snapshot "
                "and no loader to supply its base rows"
            )
        table = base_table()
        loads = 1
        log = IngestLog()

    machine = ReplayMachine(dataset, table, log, make_engine, engine=engine)
    for record in state.records:
        machine.apply(record)
    return ReplayOutcome(
        table=machine.table, engine=machine.engine, log=machine.log,
        engine_builds=builds + machine.engine_builds, loads=loads,
    )


# ---------------------------------------------------------------------------
# Replication feed
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FeedPosition:
    """A replica's cursor into one dataset's journal: ``(version, seq)``.

    The token form ``"<version>:<seq>"`` travels in the
    ``?from=`` query parameter of the HTTP journal endpoint.
    """

    version: int
    seq: int

    def token(self) -> str:
        return f"{self.version}:{self.seq}"

    @classmethod
    def parse(cls, token: str) -> "FeedPosition":
        version_text, sep, seq_text = token.partition(":")
        if not sep:
            raise ValueError(
                f"feed position must be '<version>:<seq>', got {token!r}"
            )
        return cls(version=int(version_text), seq=int(seq_text))


@dataclass
class FeedBatch:
    """One :meth:`JournalFeed.poll` answer.

    Either a **reset** (``reset`` holds a full :class:`DurableState` the
    replica must bootstrap from — late join, generation change, or a
    cursor the journal can no longer serve incrementally) or an
    **incremental** batch (``records`` are contiguous journal records
    strictly after the polled position).  ``position`` is the cursor
    after applying the batch; ``primary_seq`` is the primary's durable
    tip at scan time, so ``primary_seq - position.seq`` is the replica's
    remaining lag; ``more`` says the batch was cut at ``max_records``
    and another poll will make immediate progress.
    """

    dataset: str
    reset: DurableState | None
    records: list[dict[str, Any]]
    position: FeedPosition
    more: bool
    primary_seq: int


def durable_state_to_payload(state: DurableState) -> dict[str, Any]:
    """A JSON-safe image of a :class:`DurableState` (for the HTTP feed)."""
    return {
        "version": state.version,
        "snapshot": state.snapshot,
        "records": list(state.records),
        "damaged": state.damaged,
        "engine_config": state.engine_config,
    }


def durable_state_from_payload(payload: dict[str, Any]) -> DurableState:
    """Rebuild the :class:`DurableState` from
    :func:`durable_state_to_payload`."""
    return DurableState(
        version=int(payload["version"]),
        snapshot=payload.get("snapshot"),
        records=list(payload.get("records") or []),
        damaged=bool(payload.get("damaged", False)),
        engine_config=payload.get("engine_config"),
    )


class JournalFeed:
    """A tailable, read-only view of a data directory's journals.

    The primary's WAL *is* the replication stream: the feed serves the
    same CRC'd records :class:`DatasetJournal` wrote, positioned by a
    ``(version, seq)`` cursor, with a full :class:`DurableState`
    bootstrap whenever incremental delivery is impossible — a late
    joiner (no cursor), a generation change (reload / re-registration
    bumped the version), compaction that truncated records the cursor
    still needed, or a cursor *ahead* of the primary's durable tip
    (the primary lost acknowledged-to-the-feed bytes, e.g. a
    failure-atomic append truncation raced a poll; the replica must
    re-anchor rather than diverge).

    The feed is stateless (cursors are caller-owned) and never writes:
    ``load`` runs with ``repair=False``, so a feed polling a live
    primary's directory can never race its owner's mutations — the
    worst case is reading a torn tail, which :func:`scan_records`
    already treats as "not yet written".
    """

    def __init__(self, root: str | Path,
                 journal: DatasetJournal | None = None):
        self._journal = (journal if journal is not None
                         else DatasetJournal(root, fsync=False))

    def dataset_names(self) -> list[str]:
        """Datasets with durable state (what a replica should tail)."""
        return self._journal.dataset_names()

    def poll(self, name: str, position: FeedPosition | None = None,
             max_records: int = 512) -> FeedBatch | None:
        """Records after ``position``, or a bootstrap reset, or ``None``.

        ``None`` means the dataset has no durable state at all (never
        registered on the primary, or dropped).  Without a ``position``
        the answer is always a reset.  ``max_records`` bounds one
        incremental batch; the cut is extended through trailing build
        markers so a build is never separated from the append at its
        seq (re-sending it would double-count a rebuild in the
        replica's counters).
        """
        if max_records < 1:
            raise IngestError(f"max_records must be >= 1, got {max_records}")
        if position is not None:
            try:
                batch = self._incremental(name, position, max_records)
            except OSError:
                # Segment deleted mid-read (compaction/rotation race):
                # fall through to a fresh bootstrap of the new state.
                batch = None
            if batch is not None:
                return batch
        return self._bootstrap(name)

    def _bootstrap(self, name: str) -> FeedBatch | None:
        state = self._journal.load(name, repair=False)
        if state is None:
            return None
        return FeedBatch(
            dataset=name, reset=state, records=[],
            position=FeedPosition(state.version, state.seq),
            more=False, primary_seq=state.seq,
        )

    def _incremental(self, name: str, position: FeedPosition,
                     max_records: int) -> FeedBatch | None:
        """An incremental batch after ``position``, or ``None`` for reset."""
        segments = self._journal._segments(name)
        if not segments:
            return None
        version = max(entry[0] for entry in segments)
        if version != position.version:
            return None
        current = [entry for entry in segments if entry[0] == version]
        anchor = current[0][1]
        if position.seq < anchor:
            # Compaction moved the generation's base past the cursor:
            # the records between are gone from disk.
            return None
        kept: list[dict[str, Any]] = []
        expected = position.seq
        tip = anchor
        for _version, _base_seq, path in current:
            data = path.read_bytes()
            segment_records, _clean = decode_records(data)
            if (not segment_records
                    or segment_records[0].get("type") != RECORD_GENERATION):
                return None  # unreadable header: let load() adjudicate
            for record in segment_records[1:]:
                kind = record.get("type")
                if kind in (RECORD_APPEND, RECORD_SWAP):
                    seq = int(record.get("seq", -1))
                    tip = max(tip, seq)
                    if seq <= expected:
                        continue  # already applied by this replica
                    if seq != expected + 1:
                        return None  # gap: replica must re-bootstrap
                    expected = seq
                    kept.append(record)
                elif kind == RECORD_BUILD:
                    if int(record.get("seq", -1)) > position.seq:
                        kept.append(record)
        if position.seq > tip:
            # The cursor is ahead of everything on disk: the primary
            # regressed under us — re-anchor via bootstrap.
            return None
        cut = len(kept)
        if cut > max_records:
            cut = max_records
            while cut < len(kept) and kept[cut].get("type") == RECORD_BUILD:
                cut += 1
        batch_records = kept[:cut]
        more = cut < len(kept)
        new_seq = position.seq
        for record in reversed(batch_records):
            if record["type"] in (RECORD_APPEND, RECORD_SWAP):
                new_seq = int(record["seq"])
                break
        return FeedBatch(
            dataset=name, reset=None, records=batch_records,
            position=FeedPosition(version, new_seq), more=more,
            primary_seq=tip,
        )


__all__ = [
    "CommitTicket",
    "DatasetJournal",
    "DurableState",
    "FeedBatch",
    "FeedPosition",
    "JournalFeed",
    "MAX_RECORD_BYTES",
    "RECORD_APPEND",
    "RECORD_BUILD",
    "RECORD_GENERATION",
    "RECORD_SWAP",
    "ReplayMachine",
    "ReplayOutcome",
    "decode_records",
    "durable_state_from_payload",
    "durable_state_to_payload",
    "encode_record",
    "engine_config_from_payload",
    "engine_config_to_payload",
    "rebuild_with_catchup",
    "replay_counters",
    "replay_state",
    "legacy_snapshot_filename",
    "scan_records",
    "segment_filename",
    "snapshot_filename",
    "table_from_payload",
    "table_to_payload",
]
