"""Live datasets: append-only ingestion and incremental sketch maintenance.

This package makes a served dataset *live* — a hybrid update/analytics
path in the spirit of HTAP designs: appends land continuously without
stalling (or invalidating) the analytical path, because every sketch the
preprocessing step builds is mergeable.

The pieces, bottom-up:

* :class:`DeltaBatch` — a batch of appended rows validated against the
  dataset schema (type / arity / missing-value rules from
  :mod:`repro.data`); rejection is all-or-nothing with per-row problems;
* :func:`build_delta_partials` / :func:`merge_delta` — per-column sketch
  partials over just the delta rows (parallelised via the engine's
  executor), copy-merged into a brand-new
  :class:`~repro.sketch.store.SketchStore` so in-flight readers never
  observe a mutation;
* :class:`IngestConfig` / :func:`should_rebuild` — the accuracy budget:
  hyperplane signatures go stale under appends, and once accumulated
  delta rows exceed ``rebuild_fraction`` of the base rows, the next
  append pays for a full rebuild instead of a merge;
* :class:`IngestLog` — the append journal minting monotone sequence
  numbers, making a dataset's cache/provenance identity the pair
  ``(version, seq)``;
* :class:`DatasetJournal` / :func:`replay_state`
  (:mod:`repro.ingest.durable`) — the on-disk write-ahead journal:
  length-prefixed, checksummed, fsync-on-commit records persisting every
  append (rows included), compaction snapshots, and the deterministic
  restart replay that reconstructs the exact ``(version, seq)`` identity
  and sketch state an uninterrupted process would hold, tolerating a
  torn or corrupted tail by recovering to the last complete record.

``Workspace.append`` (:mod:`repro.service.workspace`) orchestrates these
under the dataset's single-flight lock, and the HTTP transport exposes
them as ``PUT /v1/datasets/{name}``, ``POST /v1/datasets/{name}/rows``
and ``POST /v1/datasets/{name}/reload``.
"""

from repro.errors import DeltaValidationError, IngestError
from repro.ingest.delta import DeltaBatch, MAX_BATCH_ROWS
from repro.ingest.durable import (
    CommitTicket,
    DatasetJournal,
    DurableState,
    decode_records,
    encode_record,
    replay_state,
)
from repro.ingest.snapshot_codec import (
    SnapshotDecodeError,
    decode_snapshot,
    encode_snapshot,
)
from repro.ingest.log import (
    APPLIED_DEFERRED,
    APPLIED_DELTA_MERGE,
    APPLIED_REBUILD,
    IngestLog,
    IngestRecord,
)
from repro.ingest.maintenance import (
    IngestConfig,
    build_delta_partials,
    merge_delta,
    should_rebuild,
)

__all__ = [
    "APPLIED_DEFERRED",
    "APPLIED_DELTA_MERGE",
    "APPLIED_REBUILD",
    "CommitTicket",
    "DatasetJournal",
    "DeltaBatch",
    "DeltaValidationError",
    "DurableState",
    "IngestConfig",
    "IngestError",
    "IngestLog",
    "IngestRecord",
    "MAX_BATCH_ROWS",
    "SnapshotDecodeError",
    "build_delta_partials",
    "decode_records",
    "decode_snapshot",
    "encode_record",
    "encode_snapshot",
    "merge_delta",
    "replay_state",
    "should_rebuild",
]
