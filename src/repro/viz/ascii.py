"""ASCII renderers for visualization specs.

The examples and the benchmark harness run in a terminal, so every
:class:`~repro.viz.spec.VisualizationSpec` can be rendered as plain text:
bar/histogram/Pareto charts as horizontal bars, box plots as a whisker
diagram, scatter plots as a character grid, heat maps as a shaded matrix.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.viz.spec import VisualizationSpec

_SHADES = " .:-=+*#%@"


def render(spec: VisualizationSpec, width: int = 60, height: int = 18) -> str:
    """Render any spec to ASCII (dispatches on ``spec.mark``)."""
    mark = spec.mark
    if mark in ("bar", "pareto"):
        return _render_bars(spec, width=width)
    if mark == "boxplot":
        return _render_boxplot(spec, width=width)
    if mark == "point":
        return _render_scatter(spec, width=width, height=height)
    if mark == "rect":
        return _render_heatmap(spec)
    if mark == "line":
        return _render_scatter(spec, width=width, height=height, marker="*")
    return f"{spec.title}\n(no ASCII renderer for mark {mark!r})"


def _bar_line(label: str, value: float, max_value: float, width: int,
              label_width: int, suffix: str = "") -> str:
    bar_length = 0 if max_value <= 0 else int(round(width * value / max_value))
    bar = "#" * bar_length
    return f"{label:<{label_width}} |{bar:<{width}}| {value:g}{suffix}"


def _render_bars(spec: VisualizationSpec, width: int = 50) -> str:
    data = spec.data
    if not data:
        return f"{spec.title}\n(empty)"
    # Pick the label field (nominal x) and the value field (quantitative y).
    x_field = spec.encoding.get("x", {}).get("field")
    y_field = spec.encoding.get("y", {}).get("field")
    labels = []
    values = []
    for record in data:
        label = record.get(x_field)
        if isinstance(label, float):
            label = f"{label:g}"
        labels.append(str(label))
        values.append(float(record.get(y_field, 0.0)))
    label_width = min(max(len(label) for label in labels), 24)
    labels = [label[:label_width] for label in labels]
    max_value = max(values) if values else 0.0
    lines = [spec.title, "-" * len(spec.title)]
    for label, value in zip(labels, values):
        lines.append(_bar_line(label, value, max_value, width, label_width))
    return "\n".join(lines)


def _render_boxplot(spec: VisualizationSpec, width: int = 60) -> str:
    if not spec.data:
        return f"{spec.title}\n(empty)"
    record = spec.data[0]
    low = float(record["min"])
    high = float(record["max"])
    span = high - low or 1.0

    def pos(value: float) -> int:
        return int(round((float(value) - low) / span * (width - 1)))

    line = [" "] * width
    lw, uw = pos(record["lower_whisker"]), pos(record["upper_whisker"])
    q1, q3 = pos(record["q1"]), pos(record["q3"])
    med = pos(record["median"])
    for i in range(lw, uw + 1):
        line[i] = "-"
    for i in range(q1, q3 + 1):
        line[i] = "="
    line[lw] = "|"
    line[uw] = "|"
    line[med] = "M"
    n_outliers = spec.metadata.get("n_outliers", 0)
    lines = [
        spec.title,
        "-" * len(spec.title),
        "".join(line),
        f"min={low:g}  q1={record['q1']:g}  median={record['median']:g}  "
        f"q3={record['q3']:g}  max={high:g}  outliers={n_outliers}",
    ]
    return "\n".join(lines)


def _render_scatter(spec: VisualizationSpec, width: int = 60, height: int = 18,
                    marker: str = "o") -> str:
    data = spec.data
    if not data:
        return f"{spec.title}\n(empty)"
    x_field = spec.encoding["x"]["field"]
    y_field = spec.encoding["y"]["field"]
    xs = np.asarray([float(r[x_field]) for r in data])
    ys = np.asarray([float(r[y_field]) for r in data])
    x_span = xs.max() - xs.min() or 1.0
    y_span = ys.max() - ys.min() or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int(round((x - xs.min()) / x_span * (width - 1)))
        row = height - 1 - int(round((y - ys.min()) / y_span * (height - 1)))
        grid[row][col] = marker
    # Overlay the first line layer (best-fit line) if present.
    for layer in spec.layers:
        if layer.get("mark") != "line":
            continue
        values = layer.get("data", {}).get("values", [])
        if len(values) < 2:
            continue
        lx = [float(v[x_field]) for v in values]
        ly = [float(v[y_field]) for v in values]
        for t in np.linspace(0.0, 1.0, width * 2):
            x = lx[0] + t * (lx[-1] - lx[0])
            y = ly[0] + t * (ly[-1] - ly[0])
            if not (ys.min() <= y <= ys.max()):
                continue
            col = int(round((x - xs.min()) / x_span * (width - 1)))
            row = height - 1 - int(round((y - ys.min()) / y_span * (height - 1)))
            if grid[row][col] == " ":
                grid[row][col] = "."
    lines = [spec.title, "-" * len(spec.title)]
    lines.extend("".join(row) for row in grid)
    lines.append(f"x: {x_field} [{xs.min():g}, {xs.max():g}]   "
                 f"y: {y_field} [{ys.min():g}, {ys.max():g}]")
    return "\n".join(lines)


def _render_heatmap(spec: VisualizationSpec) -> str:
    data = spec.data
    if not data:
        return f"{spec.title}\n(empty)"
    value_field = spec.encoding["color"]["field"]
    rows = []
    columns = []
    for record in data:
        if record["row"] not in rows:
            rows.append(record["row"])
        if record["column"] not in columns:
            columns.append(record["column"])
    matrix: dict[tuple[str, str], float] = {
        (record["row"], record["column"]): float(record[value_field]) for record in data
    }
    label_width = min(max(len(str(r)) for r in rows), 12)
    lines = [spec.title, "-" * len(spec.title)]
    header = " " * (label_width + 1) + " ".join(str(c)[:2].rjust(2) for c in columns)
    lines.append(header)
    for row_name in rows:
        cells = []
        for col_name in columns:
            value = matrix.get((row_name, col_name), 0.0)
            shade = _SHADES[int(round(abs(value) * (len(_SHADES) - 1)))]
            sign = "-" if value < -0.05 else " "
            cells.append(sign + shade)
        lines.append(str(row_name)[:label_width].ljust(label_width) + " " + " ".join(cells))
    return "\n".join(lines)


def render_table(rows: list[Mapping[str, Any]], columns: list[str] | None = None) -> str:
    """Render a list of records as a fixed-width text table (benchmark output)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    formatted: list[list[str]] = []
    for row in rows:
        formatted.append([_format_cell(row.get(column)) for column in columns])
    widths = [
        max(len(column), *(len(record[i]) for record in formatted))
        for i, column in enumerate(columns)
    ]
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    lines = [header, separator]
    for record in formatted:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(record, widths)))
    return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
