"""Chart builders: one per visualization method named in the paper.

Section 2.2 assigns a preferred visualization to each insight:

* Dispersion / Skew / Heavy Tails  -> histogram
* Outliers                         -> box-and-whisker plot
* Heterogeneous Frequencies        -> Pareto chart
* Linear Relationship              -> scatter plot with best-fit line
* overview (Figure 2)              -> correlation heat map

These builders take value arrays (or a table column) plus the relevant
statistics and produce :class:`~repro.viz.spec.VisualizationSpec` objects.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import VisualizationError
from repro.stats.correlation import LinearFit, linear_fit
from repro.stats.frequency import FrequencyEntry, frequency_table
from repro.stats.histogram import histogram
from repro.stats.quantiles import five_number_summary
from repro.stats.outliers import detect_outliers
from repro.viz.spec import VisualizationSpec, encoding_channel, records_from_arrays


def histogram_spec(
    values: np.ndarray, name: str, bins: int | None = None, title: str | None = None,
) -> VisualizationSpec:
    """Histogram of a numeric column (dispersion / skew / heavy-tails insights)."""
    bars = histogram(values, bins=bins)
    data = [
        {
            "bin_start": b.left,
            "bin_end": b.right,
            "bin_center": b.center,
            "count": b.count,
            "frequency": b.frequency,
        }
        for b in bars
    ]
    return VisualizationSpec(
        mark="bar",
        title=title or f"Distribution of {name}",
        data=data,
        encoding={
            "x": encoding_channel("bin_center", "quantitative", bin={"binned": True}),
            "x2": encoding_channel("bin_end", "quantitative"),
            "y": encoding_channel("count", "quantitative"),
        },
        metadata={"column": name, "n_bins": len(bars)},
    )


def boxplot_spec(
    values: np.ndarray, name: str, detector: str = "iqr", title: str | None = None,
) -> VisualizationSpec:
    """Box-and-whisker plot of a numeric column (outlier insight)."""
    summary = five_number_summary(values)
    low_whisker, high_whisker = summary.whiskers()
    outliers = detect_outliers(values, detector)
    data = [
        {
            "column": name,
            "min": summary.minimum,
            "q1": summary.q1,
            "median": summary.median,
            "q3": summary.q3,
            "max": summary.maximum,
            "lower_whisker": low_whisker,
            "upper_whisker": high_whisker,
        }
    ]
    outlier_layer = {
        "mark": "point",
        "data": {
            "values": [
                {"column": name, "value": float(v)} for v in outliers.values.tolist()
            ]
        },
        "encoding": {
            "x": encoding_channel("column", "nominal"),
            "y": encoding_channel("value", "quantitative"),
        },
    }
    return VisualizationSpec(
        mark="boxplot",
        title=title or f"Outliers in {name}",
        data=data,
        encoding={
            "x": encoding_channel("column", "nominal"),
            "y": encoding_channel("median", "quantitative"),
        },
        layers=[outlier_layer],
        metadata={
            "column": name,
            "n_outliers": outliers.count,
            "detector": outliers.detector,
        },
    )


def pareto_spec(
    labels: Sequence[object], name: str, max_categories: int = 20,
    title: str | None = None, table: list[FrequencyEntry] | None = None,
) -> VisualizationSpec:
    """Pareto chart of a categorical column (heterogeneous-frequencies insight)."""
    entries = table if table is not None else frequency_table(labels)
    shown = entries[:max_categories]
    data = [
        {
            "label": e.label,
            "count": e.count,
            "frequency": e.frequency,
            "cumulative_frequency": e.cumulative_frequency,
        }
        for e in shown
    ]
    cumulative_layer = {
        "mark": "line",
        "data": {"values": data},
        "encoding": {
            "x": encoding_channel("label", "nominal", sort="-y"),
            "y": encoding_channel("cumulative_frequency", "quantitative"),
        },
    }
    return VisualizationSpec(
        mark="pareto",
        title=title or f"Value frequencies of {name}",
        data=data,
        encoding={
            "x": encoding_channel("label", "nominal", sort="-y"),
            "y": encoding_channel("count", "quantitative"),
        },
        layers=[cumulative_layer],
        metadata={
            "column": name,
            "n_categories_total": len(entries),
            "n_categories_shown": len(shown),
        },
    )


def scatter_spec(
    x: np.ndarray, y: np.ndarray, x_name: str, y_name: str,
    fit: LinearFit | None = None, max_points: int = 2000, seed: int = 0,
    title: str | None = None,
) -> VisualizationSpec:
    """Scatter plot with best-fit line (linear-relationship insight)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    keep = ~(np.isnan(x) | np.isnan(y))
    x, y = x[keep], y[keep]
    if x.size == 0:
        raise VisualizationError(
            f"no complete points to plot for ({x_name!r}, {y_name!r})"
        )
    if fit is None:
        fit = linear_fit(x, y)
    if x.size > max_points:
        rng = np.random.default_rng(seed)
        indices = rng.choice(x.size, size=max_points, replace=False)
        x_plot, y_plot = x[indices], y[indices]
    else:
        x_plot, y_plot = x, y
    data = records_from_arrays(**{x_name: x_plot, y_name: y_plot})
    line_x = np.array([float(x.min()), float(x.max())])
    line_y = fit.predict(line_x)
    fit_layer = {
        "mark": "line",
        "data": {"values": records_from_arrays(**{x_name: line_x, y_name: line_y})},
        "encoding": {
            "x": encoding_channel(x_name, "quantitative"),
            "y": encoding_channel(y_name, "quantitative"),
        },
    }
    return VisualizationSpec(
        mark="point",
        title=title or f"{y_name} vs {x_name} (r = {fit.r:+.2f})",
        data=data,
        encoding={
            "x": encoding_channel(x_name, "quantitative"),
            "y": encoding_channel(y_name, "quantitative"),
        },
        layers=[fit_layer],
        metadata={
            "x": x_name,
            "y": y_name,
            "pearson_r": fit.r,
            "slope": fit.slope,
            "intercept": fit.intercept,
            "n_points_plotted": int(x_plot.size),
            "n_points_total": int(x.size),
        },
    )


def grouped_scatter_spec(
    x: np.ndarray, y: np.ndarray, labels: Sequence[object],
    x_name: str, y_name: str, group_name: str,
    max_points: int = 2000, seed: int = 0, title: str | None = None,
) -> VisualizationSpec:
    """Scatter plot coloured by a categorical column (segmentation insight)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    labels = list(labels)
    keep = [
        i for i in range(x.size)
        if not (np.isnan(x[i]) or np.isnan(y[i]) or labels[i] is None)
    ]
    if not keep:
        raise VisualizationError(
            f"no complete points to plot for ({x_name!r}, {y_name!r}, {group_name!r})"
        )
    if len(keep) > max_points:
        rng = np.random.default_rng(seed)
        keep = list(rng.choice(keep, size=max_points, replace=False))
    data = [
        {x_name: float(x[i]), y_name: float(y[i]), group_name: str(labels[i])}
        for i in keep
    ]
    return VisualizationSpec(
        mark="point",
        title=title or f"{y_name} vs {x_name} by {group_name}",
        data=data,
        encoding={
            "x": encoding_channel(x_name, "quantitative"),
            "y": encoding_channel(y_name, "quantitative"),
            "color": encoding_channel(group_name, "nominal"),
        },
        metadata={"x": x_name, "y": y_name, "group": group_name,
                  "n_points_plotted": len(data)},
    )


def heatmap_spec(
    matrix: np.ndarray, names: Sequence[str], value_name: str = "correlation",
    title: str | None = None,
) -> VisualizationSpec:
    """Heat map of a square matrix over attributes (Figure 2 overview)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise VisualizationError("heatmap requires a square matrix")
    if matrix.shape[0] != len(names):
        raise VisualizationError("names length must match matrix size")
    data = []
    for i, row_name in enumerate(names):
        for j, col_name in enumerate(names):
            value = float(matrix[i, j])
            data.append(
                {
                    "row": row_name,
                    "column": col_name,
                    value_name: value,
                    "magnitude": abs(value),
                }
            )
    return VisualizationSpec(
        mark="rect",
        title=title or f"Pairwise {value_name} overview",
        data=data,
        encoding={
            "x": encoding_channel("column", "nominal"),
            "y": encoding_channel("row", "nominal"),
            "color": encoding_channel(value_name, "quantitative",
                                      scale={"domain": [-1, 1]}),
            "size": encoding_channel("magnitude", "quantitative"),
        },
        metadata={"n_attributes": len(names), "value": value_name},
    )


def bar_spec(
    labels: Sequence[str], values: Sequence[float], name: str,
    value_name: str = "value", title: str | None = None,
) -> VisualizationSpec:
    """Simple bar chart (used by overview visualizations of univariate insights)."""
    if len(labels) != len(values):
        raise VisualizationError("labels and values must have equal length")
    data = [
        {name: str(label), value_name: float(value)}
        for label, value in zip(labels, values)
    ]
    return VisualizationSpec(
        mark="bar",
        title=title or f"{value_name} by {name}",
        data=data,
        encoding={
            "x": encoding_channel(name, "nominal", sort="-y"),
            "y": encoding_channel(value_name, "quantitative"),
        },
        metadata={"n_bars": len(data)},
    )
