"""Declarative visualization specifications.

Foresight's front end renders one preferred chart per insight class
(histogram, box-and-whisker, Pareto chart, scatter plot with best-fit line,
heat map).  The research content is *which* chart gets built for *which*
attribute tuple with *what* derived data; the rendering itself is
presentation.  A :class:`VisualizationSpec` therefore captures a chart as a
plain, JSON-serialisable dictionary in a Vega-Lite-flavoured structure:
``mark``, ``encoding`` and inline ``data``.  The ASCII renderer
(:mod:`repro.viz.ascii`) can draw any spec in a terminal, which is what the
examples and benchmarks use.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence


@dataclass
class VisualizationSpec:
    """A declarative chart specification.

    Attributes
    ----------
    mark:
        Chart mark: ``"bar"``, ``"boxplot"``, ``"point"``, ``"rect"``,
        ``"line"`` or ``"pareto"``.
    title:
        Human-readable chart title.
    data:
        Inline data: a list of records (dictionaries).
    encoding:
        Mapping of visual channels (``x``, ``y``, ``color``, ``size``, ...)
        to field definitions (``{"field": ..., "type": ...}``).
    layers:
        Optional extra layers (e.g. the best-fit line over a scatter plot),
        each itself a ``{"mark": ..., "data": ..., "encoding": ...}`` dict.
    metadata:
        Free-form extras (insight name, metric value, attribute names).
    """

    mark: str
    title: str
    data: list[dict[str, Any]] = field(default_factory=list)
    encoding: dict[str, dict[str, Any]] = field(default_factory=dict)
    layers: list[dict[str, Any]] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Full spec as a plain dictionary (JSON-serialisable)."""
        spec: dict[str, Any] = {
            "mark": self.mark,
            "title": self.title,
            "data": {"values": self.data},
            "encoding": self.encoding,
        }
        if self.layers:
            spec["layer"] = self.layers
        if self.metadata:
            spec["usermeta"] = self.metadata
        return spec

    def to_json(self, indent: int | None = 2) -> str:
        """Spec serialised as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=float)

    # -- small helpers used by tests/examples --------------------------------
    def field_names(self) -> list[str]:
        """Names of fields referenced by the encoding channels."""
        names = []
        for channel in self.encoding.values():
            name = channel.get("field")
            if name is not None and name not in names:
                names.append(name)
        return names

    def n_points(self) -> int:
        return len(self.data)


def encoding_channel(field_name: str, field_type: str, **extra: Any) -> dict[str, Any]:
    """Build one encoding channel definition."""
    channel: dict[str, Any] = {"field": field_name, "type": field_type}
    channel.update(extra)
    return channel


def records_from_arrays(**arrays: Sequence[Any]) -> list[dict[str, Any]]:
    """Zip equally-long arrays into a list of records."""
    names = list(arrays)
    if not names:
        return []
    lengths = {len(values) for values in arrays.values()}
    if len(lengths) != 1:
        raise ValueError("all arrays must have equal length")
    size = lengths.pop()
    return [
        {name: _plain(arrays[name][i]) for name in names}
        for i in range(size)
    ]


def _plain(value: Any) -> Any:
    """Convert NumPy scalars to plain Python values for JSON serialisation."""
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (ValueError, AttributeError):
            return value
    return value


def spec_summary(spec: VisualizationSpec | Mapping[str, Any]) -> str:
    """One-line description of a spec, used in carousel printouts."""
    if isinstance(spec, VisualizationSpec):
        mark, title, n = spec.mark, spec.title, spec.n_points()
    else:
        mark = str(spec.get("mark", "?"))
        title = str(spec.get("title", ""))
        n = len(spec.get("data", {}).get("values", []))
    return f"[{mark}] {title} ({n} marks)"
