"""Visualization specs (Vega-Lite flavoured dicts) and ASCII renderers."""

from repro.viz.spec import (
    VisualizationSpec,
    encoding_channel,
    records_from_arrays,
    spec_summary,
)
from repro.viz.charts import (
    bar_spec,
    boxplot_spec,
    grouped_scatter_spec,
    heatmap_spec,
    histogram_spec,
    pareto_spec,
    scatter_spec,
)
from repro.viz.ascii import render, render_table

__all__ = [
    "VisualizationSpec",
    "bar_spec",
    "boxplot_spec",
    "encoding_channel",
    "grouped_scatter_spec",
    "heatmap_spec",
    "histogram_spec",
    "pareto_spec",
    "records_from_arrays",
    "render",
    "render_table",
    "scatter_spec",
    "spec_summary",
]
