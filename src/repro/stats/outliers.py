"""Outlier detection and the Outlier insight metric.

The paper (section 2.2, insight 4) measures the presence and significance of
extreme outliers by applying a *user-configurable* outlier-detection
algorithm and computing the **average standardized distance** of the
detected outliers from the mean (distance in standard deviations).  This
module provides three standard detectors (z-score, IQR fences, MAD) behind a
common interface, plus the metric itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.errors import EmptyColumnError


def _clean(values: np.ndarray, minimum: int = 3) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size < minimum:
        raise EmptyColumnError(
            f"need at least {minimum} non-missing values, got {values.size}"
        )
    return values


@dataclass(frozen=True)
class OutlierResult:
    """Result of running an outlier detector on a numeric column."""

    indices: np.ndarray
    values: np.ndarray
    n_total: int
    detector: str

    @property
    def count(self) -> int:
        return int(self.indices.size)

    @property
    def fraction(self) -> float:
        return self.count / self.n_total if self.n_total else 0.0


class OutlierDetector(Protocol):
    """A detector maps a clean value array to a boolean outlier mask."""

    def __call__(self, values: np.ndarray) -> np.ndarray: ...


def zscore_detector(threshold: float = 3.0) -> Callable[[np.ndarray], np.ndarray]:
    """Flag values more than ``threshold`` standard deviations from the mean."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")

    def detect(values: np.ndarray) -> np.ndarray:
        sigma = np.std(values)
        if sigma == 0.0:
            return np.zeros(values.shape, dtype=bool)
        return np.abs(values - np.mean(values)) > threshold * sigma

    detect.__name__ = f"zscore(threshold={threshold})"
    return detect


def iqr_detector(k: float = 1.5) -> Callable[[np.ndarray], np.ndarray]:
    """Tukey's fences: flag values beyond Q1 - k*IQR or Q3 + k*IQR."""
    if k <= 0:
        raise ValueError("k must be positive")

    def detect(values: np.ndarray) -> np.ndarray:
        q1, q3 = np.quantile(values, [0.25, 0.75])
        iqr = q3 - q1
        if iqr == 0.0:
            return np.zeros(values.shape, dtype=bool)
        return (values < q1 - k * iqr) | (values > q3 + k * iqr)

    detect.__name__ = f"iqr(k={k})"
    return detect


def mad_detector(threshold: float = 3.5) -> Callable[[np.ndarray], np.ndarray]:
    """Flag values whose modified z-score (based on the MAD) exceeds threshold."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")

    def detect(values: np.ndarray) -> np.ndarray:
        median = np.median(values)
        mad = np.median(np.abs(values - median))
        if mad == 0.0:
            return np.zeros(values.shape, dtype=bool)
        modified_z = 0.6745 * (values - median) / mad
        return np.abs(modified_z) > threshold

    detect.__name__ = f"mad(threshold={threshold})"
    return detect


_NAMED_DETECTORS: dict[str, Callable[[], Callable[[np.ndarray], np.ndarray]]] = {
    "zscore": zscore_detector,
    "iqr": iqr_detector,
    "mad": mad_detector,
}


def get_detector(name: str, **kwargs) -> Callable[[np.ndarray], np.ndarray]:
    """Look up a detector by name (``zscore``, ``iqr`` or ``mad``)."""
    if name not in _NAMED_DETECTORS:
        raise ValueError(
            f"unknown outlier detector {name!r}; available: {sorted(_NAMED_DETECTORS)}"
        )
    return _NAMED_DETECTORS[name](**kwargs)


def detect_outliers(
    values: np.ndarray, detector: Callable[[np.ndarray], np.ndarray] | str = "iqr",
    **detector_kwargs,
) -> OutlierResult:
    """Run a detector and return the outlier indices and values."""
    x = _clean(values)
    if isinstance(detector, str):
        detector = get_detector(detector, **detector_kwargs)
    mask = np.asarray(detector(x), dtype=bool)
    indices = np.flatnonzero(mask)
    return OutlierResult(
        indices=indices,
        values=x[indices].copy(),
        n_total=int(x.size),
        detector=getattr(detector, "__name__", detector.__class__.__name__),
    )


def average_standardized_distance(
    values: np.ndarray, detector: Callable[[np.ndarray], np.ndarray] | str = "iqr",
    **detector_kwargs,
) -> float:
    """The Outlier insight ranking metric.

    Average distance of detected outliers from the column mean, measured in
    standard deviations.  Columns with no detected outliers (or zero
    standard deviation) score 0.0.
    """
    x = _clean(values)
    result = detect_outliers(x, detector, **detector_kwargs)
    if result.count == 0:
        return 0.0
    sigma = np.std(x)
    if sigma == 0.0:
        return 0.0
    distances = np.abs(result.values - np.mean(x)) / sigma
    return float(np.mean(distances))


def outlier_strength(
    values: np.ndarray, detector: Callable[[np.ndarray], np.ndarray] | str = "iqr",
    **detector_kwargs,
) -> tuple[float, OutlierResult]:
    """Metric and detection result together (used by the insight class)."""
    x = _clean(values)
    result = detect_outliers(x, detector, **detector_kwargs)
    sigma = np.std(x)
    if result.count == 0 or sigma == 0.0:
        return 0.0, result
    distances = np.abs(result.values - np.mean(x)) / sigma
    return float(np.mean(distances)), result
