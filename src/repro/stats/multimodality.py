"""Multimodality measures.

The paper lists multimodality among its additional insight classes.  The
ranking metric used here is a combination of:

* the number of modes found by kernel-density / histogram peak counting,
* the prominence of the secondary mode relative to the primary mode.

A strictly unimodal column scores 0; a clean, well-separated bimodal column
scores close to 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EmptyColumnError
from repro.stats.histogram import histogram_counts


def _clean(values: np.ndarray, minimum: int = 5) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size < minimum:
        raise EmptyColumnError(
            f"need at least {minimum} non-missing values, got {values.size}"
        )
    return values


@dataclass(frozen=True)
class ModeInfo:
    """A detected mode: its location and its (smoothed) density height."""

    location: float
    height: float


def _smooth(counts: np.ndarray, passes: int = 2) -> np.ndarray:
    """Simple 1-2-1 smoothing of histogram counts to suppress noise peaks."""
    smoothed = counts.astype(np.float64)
    kernel = np.array([1.0, 2.0, 1.0]) / 4.0
    for _ in range(passes):
        padded = np.pad(smoothed, 1, mode="edge")
        smoothed = np.convolve(padded, kernel, mode="valid")
    return smoothed


def find_modes(
    values: np.ndarray, bins: int | None = None, min_relative_height: float = 0.1
) -> list[ModeInfo]:
    """Locate modes as local maxima of a smoothed histogram.

    A local maximum counts as a mode only if its height is at least
    ``min_relative_height`` times the height of the tallest mode, which
    filters sampling noise.
    """
    x = _clean(values)
    if np.unique(x).size == 1:
        return [ModeInfo(location=float(x[0]), height=1.0)]
    counts, edges = histogram_counts(x, bins=bins)
    smoothed = _smooth(counts)
    centers = 0.5 * (edges[:-1] + edges[1:])
    peaks: list[ModeInfo] = []
    for i in range(smoothed.size):
        left = smoothed[i - 1] if i > 0 else -np.inf
        right = smoothed[i + 1] if i < smoothed.size - 1 else -np.inf
        if smoothed[i] > left and smoothed[i] >= right and smoothed[i] > 0:
            peaks.append(ModeInfo(location=float(centers[i]), height=float(smoothed[i])))
    if not peaks:
        # Completely flat histogram: report the global maximum bin.
        i = int(np.argmax(smoothed))
        peaks = [ModeInfo(location=float(centers[i]), height=float(smoothed[i]))]
    tallest = max(peak.height for peak in peaks)
    peaks = [p for p in peaks if p.height >= min_relative_height * tallest]
    peaks.sort(key=lambda p: -p.height)
    return peaks


def mode_count(values: np.ndarray, bins: int | None = None) -> int:
    """Number of detected modes."""
    return len(find_modes(values, bins=bins))


def bimodality_coefficient(values: np.ndarray) -> float:
    """Sarle's bimodality coefficient in (0, 1]; > 0.555 suggests bimodality."""
    x = _clean(values)
    n = x.size
    sigma = np.std(x)
    if sigma == 0.0:
        return 0.0
    centered = x - np.mean(x)
    skew = float(np.mean(centered**3) / sigma**3)
    kurt = float(np.mean(centered**4) / sigma**4)
    denominator = kurt + 3.0 * (n - 1) ** 2 / ((n - 2) * (n - 3)) if n > 3 else kurt
    if denominator == 0.0:
        return 0.0
    return float((skew**2 + 1.0) / denominator)


def multimodality_strength(values: np.ndarray, bins: int | None = None) -> float:
    """The Multimodality insight ranking metric, in [0, 1].

    0 for unimodal columns.  For multimodal columns the score is the
    relative prominence of the second-highest mode (its height divided by
    the primary mode's height), scaled by how many extra modes exist, so
    clean bimodal mixtures with comparable masses score near 1.
    """
    modes = find_modes(values, bins=bins)
    if len(modes) < 2:
        return 0.0
    primary, secondary = modes[0], modes[1]
    prominence = secondary.height / primary.height if primary.height > 0 else 0.0
    extra_modes_bonus = min(len(modes) - 1, 3) / 3.0
    return float(min(1.0, 0.7 * prominence + 0.3 * extra_modes_bonus))
