"""Exact quantiles and order statistics.

These are the exact counterparts of :mod:`repro.sketch.quantile`; the
benchmark harness compares sketch estimates against these functions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EmptyColumnError


def _clean(values: np.ndarray, minimum: int = 1) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size < minimum:
        raise EmptyColumnError(
            f"need at least {minimum} non-missing values, got {values.size}"
        )
    return values


def quantile(values: np.ndarray, q: float) -> float:
    """The q-th quantile (0 <= q <= 1), linear interpolation."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    return float(np.quantile(_clean(values), q))


def quantiles(values: np.ndarray, qs: list[float]) -> list[float]:
    """Multiple quantiles at once."""
    x = _clean(values)
    return [float(np.quantile(x, q)) for q in qs]


def median(values: np.ndarray) -> float:
    """The median (0.5 quantile)."""
    return quantile(values, 0.5)


def iqr(values: np.ndarray) -> float:
    """Interquartile range Q3 - Q1."""
    x = _clean(values)
    q1, q3 = np.quantile(x, [0.25, 0.75])
    return float(q3 - q1)


def rank_of(values: np.ndarray, value: float) -> int:
    """Number of values <= ``value`` (the rank the quantile sketch estimates)."""
    x = _clean(values)
    return int(np.sum(x <= value))


@dataclass
class FiveNumberSummary:
    """Tukey's five-number summary, the data behind a box-and-whisker plot."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def whiskers(self, k: float = 1.5) -> tuple[float, float]:
        """Whisker positions at Q1 - k*IQR and Q3 + k*IQR, clipped to data range."""
        low = max(self.minimum, self.q1 - k * self.iqr)
        high = min(self.maximum, self.q3 + k * self.iqr)
        return low, high

    def as_dict(self) -> dict[str, float]:
        return {
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
        }


def five_number_summary(values: np.ndarray) -> FiveNumberSummary:
    """Compute min, Q1, median, Q3, max."""
    x = _clean(values)
    q1, med, q3 = np.quantile(x, [0.25, 0.5, 0.75])
    return FiveNumberSummary(
        minimum=float(np.min(x)),
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=float(np.max(x)),
    )


def trimmed_mean(values: np.ndarray, proportion: float = 0.1) -> float:
    """Mean after trimming ``proportion`` of mass from each tail."""
    if not 0.0 <= proportion < 0.5:
        raise ValueError("proportion must be in [0, 0.5)")
    x = np.sort(_clean(values))
    cut = int(np.floor(proportion * x.size))
    trimmed = x[cut: x.size - cut] if cut else x
    return float(np.mean(trimmed))


def quantile_skewness(values: np.ndarray) -> float:
    """Bowley's quantile-based skewness in [-1, 1] (robust alternative to γ₁)."""
    x = _clean(values)
    q1, med, q3 = np.quantile(x, [0.25, 0.5, 0.75])
    denom = q3 - q1
    if denom == 0.0:
        return 0.0
    return float((q3 + q1 - 2.0 * med) / denom)
