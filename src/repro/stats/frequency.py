"""Frequency statistics for categorical / discrete columns.

Implements the Heterogeneous-Frequencies insight metric from the paper:
``RelFreq(k, c)``, the total relative frequency of the ``k`` most frequent
values of a column, plus supporting statistics (entropy, normalised entropy,
Gini impurity and full frequency tables used by the Pareto chart).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import math

import numpy as np

from repro.errors import EmptyColumnError


@dataclass(frozen=True)
class FrequencyEntry:
    """One row of a frequency table."""

    label: str
    count: int
    frequency: float
    cumulative_frequency: float


def _count_labels(labels: Iterable[object]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for label in labels:
        if label is None:
            continue
        key = str(label)
        counts[key] = counts.get(key, 0) + 1
    return counts


def frequency_table(labels: Iterable[object]) -> list[FrequencyEntry]:
    """Full descending frequency table (the data behind a Pareto chart)."""
    counts = _count_labels(labels)
    if not counts:
        raise EmptyColumnError("no non-missing labels to count")
    total = sum(counts.values())
    ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    entries: list[FrequencyEntry] = []
    cumulative = 0.0
    for label, count in ordered:
        frequency = count / total
        cumulative += frequency
        entries.append(
            FrequencyEntry(
                label=label,
                count=count,
                frequency=frequency,
                cumulative_frequency=min(cumulative, 1.0),
            )
        )
    return entries


def relative_frequency_topk(labels: Iterable[object], k: int = 3) -> float:
    """``RelFreq(k, c)``: total relative frequency of the k most frequent values.

    This is the paper's ranking metric for the Heterogeneous-Frequencies
    insight.  Values close to 1 with many distinct categories indicate a few
    dominant heavy hitters; values near ``k / #categories`` indicate a flat
    distribution.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    table = frequency_table(labels)
    top = table[: min(k, len(table))]
    return float(sum(entry.frequency for entry in top))


def heavy_hitters(labels: Iterable[object], threshold: float = 0.1) -> list[FrequencyEntry]:
    """Entries whose relative frequency is at least ``threshold``."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    return [entry for entry in frequency_table(labels) if entry.frequency >= threshold]


def shannon_entropy(labels: Iterable[object], base: float = 2.0) -> float:
    """Shannon entropy of the empirical label distribution."""
    counts = _count_labels(labels)
    if not counts:
        raise EmptyColumnError("no non-missing labels to count")
    total = sum(counts.values())
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log(p, base)
    return entropy


def normalized_entropy(labels: Iterable[object]) -> float:
    """Entropy divided by log(#categories); in [0, 1], 1 = uniform.

    ``1 - normalized_entropy`` is an alternative heterogeneity metric:
    heavily skewed frequency distributions have low normalised entropy.
    """
    counts = _count_labels(labels)
    if not counts:
        raise EmptyColumnError("no non-missing labels to count")
    if len(counts) <= 1:
        return 1.0 if len(counts) == 1 else 0.0
    return shannon_entropy(counts_to_labels(counts)) / math.log2(len(counts))


def counts_to_labels(counts: dict[str, int]) -> list[str]:
    """Expand a counts dictionary back into a label list (for reuse of APIs)."""
    labels: list[str] = []
    for label, count in counts.items():
        labels.extend([label] * count)
    return labels


def gini_impurity(labels: Iterable[object]) -> float:
    """Gini impurity 1 - Σ p²; 0 for a single-valued column."""
    counts = _count_labels(labels)
    if not counts:
        raise EmptyColumnError("no non-missing labels to count")
    total = sum(counts.values())
    return 1.0 - sum((count / total) ** 2 for count in counts.values())


def distinct_count(labels: Iterable[object]) -> int:
    """Number of distinct non-missing labels."""
    return len(_count_labels(labels))


def mode(labels: Iterable[object]) -> str:
    """The most frequent label (ties broken lexicographically)."""
    return frequency_table(labels)[0].label


def numeric_value_frequencies(values: Sequence[float] | np.ndarray) -> list[FrequencyEntry]:
    """Frequency table for a discrete numeric column.

    The Heterogeneous-Frequencies insight also applies to discrete numeric
    columns (paper section 2.2, insight 5); this helper renders their values
    as labels so the same table/metric code applies.
    """
    array = np.asarray(values, dtype=np.float64)
    array = array[~np.isnan(array)]
    labels = [
        str(int(value)) if float(value).is_integer() else f"{value:g}" for value in array
    ]
    return frequency_table(labels)
