"""General statistical dependence measures.

The paper lists "general statistical dependencies" among its additional
insight classes.  These metrics quantify association beyond linear
correlation:

* mutual information between two discretised/categorical columns;
* normalised mutual information (symmetric uncertainty);
* Cramér's V from the chi-square statistic of a contingency table;
* the correlation ratio η² between a categorical and a numeric column.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.errors import EmptyColumnError


def contingency_table(x_labels: Sequence[object], y_labels: Sequence[object]) -> np.ndarray:
    """Joint count table of two label sequences (missing rows dropped)."""
    if len(x_labels) != len(y_labels):
        raise ValueError("label sequences must have equal length")
    pairs = [
        (str(a), str(b))
        for a, b in zip(x_labels, y_labels)
        if a is not None and b is not None
    ]
    if not pairs:
        raise EmptyColumnError("no complete label pairs")
    x_levels = sorted({a for a, _ in pairs})
    y_levels = sorted({b for _, b in pairs})
    x_index = {label: i for i, label in enumerate(x_levels)}
    y_index = {label: j for j, label in enumerate(y_levels)}
    table = np.zeros((len(x_levels), len(y_levels)), dtype=np.float64)
    for a, b in pairs:
        table[x_index[a], y_index[b]] += 1.0
    return table


def chi_square(table: np.ndarray) -> float:
    """Pearson chi-square statistic of a contingency table."""
    table = np.asarray(table, dtype=np.float64)
    total = table.sum()
    if total == 0:
        raise EmptyColumnError("empty contingency table")
    row = table.sum(axis=1, keepdims=True)
    col = table.sum(axis=0, keepdims=True)
    expected = row @ col / total
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(expected > 0, (table - expected) ** 2 / expected, 0.0)
    return float(terms.sum())


def cramers_v(x_labels: Sequence[object], y_labels: Sequence[object]) -> float:
    """Cramér's V in [0, 1]; 0 = independent, 1 = perfectly associated."""
    table = contingency_table(x_labels, y_labels)
    n = table.sum()
    r, c = table.shape
    k = min(r - 1, c - 1)
    if k <= 0 or n == 0:
        return 0.0
    return float(math.sqrt(chi_square(table) / (n * k)))


def mutual_information(
    x_labels: Sequence[object], y_labels: Sequence[object], base: float = 2.0
) -> float:
    """Mutual information I(X; Y) of two label sequences (in bits by default)."""
    table = contingency_table(x_labels, y_labels)
    n = table.sum()
    joint = table / n
    px = joint.sum(axis=1, keepdims=True)
    py = joint.sum(axis=0, keepdims=True)
    mi = 0.0
    rows, cols = joint.shape
    for i in range(rows):
        for j in range(cols):
            p = joint[i, j]
            if p > 0:
                mi += p * math.log(p / (px[i, 0] * py[0, j]), base)
    return max(mi, 0.0)


def symmetric_uncertainty(
    x_labels: Sequence[object], y_labels: Sequence[object]
) -> float:
    """Normalised mutual information 2·I / (H(X) + H(Y)) in [0, 1]."""
    table = contingency_table(x_labels, y_labels)
    n = table.sum()
    px = table.sum(axis=1) / n
    py = table.sum(axis=0) / n
    hx = -float(np.sum(px[px > 0] * np.log2(px[px > 0])))
    hy = -float(np.sum(py[py > 0] * np.log2(py[py > 0])))
    if hx + hy == 0.0:
        return 0.0
    return float(2.0 * mutual_information(x_labels, y_labels) / (hx + hy))


def discretize(values: np.ndarray, bins: int = 10) -> list[str | None]:
    """Equal-width binning of a numeric array into bin labels.

    Used to apply categorical dependence measures to numeric columns;
    missing values (NaN) map to None.
    """
    values = np.asarray(values, dtype=np.float64)
    finite = values[~np.isnan(values)]
    if finite.size == 0:
        raise EmptyColumnError("no non-missing values to discretise")
    low, high = float(finite.min()), float(finite.max())
    if low == high:
        return [None if math.isnan(v) else "bin0" for v in values]
    edges = np.linspace(low, high, bins + 1)
    labels: list[str | None] = []
    for value in values:
        if math.isnan(value):
            labels.append(None)
            continue
        index = int(np.searchsorted(edges, value, side="right")) - 1
        index = min(max(index, 0), bins - 1)
        labels.append(f"bin{index}")
    return labels


def numeric_mutual_information(x: np.ndarray, y: np.ndarray, bins: int = 10) -> float:
    """Mutual information between two numeric columns via equal-width binning."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    keep = ~(np.isnan(x) | np.isnan(y))
    if int(keep.sum()) < 2:
        raise EmptyColumnError("need at least 2 complete pairs")
    return mutual_information(discretize(x[keep], bins), discretize(y[keep], bins))


def correlation_ratio(labels: Sequence[object], values: Iterable[float]) -> float:
    """Correlation ratio η² between a categorical and a numeric column.

    η² is the fraction of numeric variance explained by the category; it is
    the dependence metric used when exactly one of the attributes is
    categorical.
    """
    values = np.asarray(list(values), dtype=np.float64)
    labels = list(labels)
    if len(labels) != values.size:
        raise ValueError("labels and values must have equal length")
    keep = [
        i
        for i in range(values.size)
        if labels[i] is not None and not math.isnan(values[i])
    ]
    if len(keep) < 2:
        raise EmptyColumnError("need at least 2 complete pairs")
    x = values[keep]
    groups: dict[str, list[float]] = {}
    for i in keep:
        groups.setdefault(str(labels[i]), []).append(float(values[i]))
    overall_mean = float(np.mean(x))
    total_ss = float(np.sum((x - overall_mean) ** 2))
    if total_ss == 0.0:
        return 0.0
    between_ss = sum(
        len(members) * (float(np.mean(members)) - overall_mean) ** 2
        for members in groups.values()
    )
    return float(min(max(between_ss / total_ss, 0.0), 1.0))
