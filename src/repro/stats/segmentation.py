"""Segmentation / clustering strength measures.

The paper's introduction mentions "a strong clustering of (x, y)-values
according to z-values" as an example insight, and section 2.2 lists
"segmentation" among the additional insight classes.  The ranking metrics
here quantify how well a categorical column z separates the values of one
or two numeric columns:

* :func:`anova_f_statistic` and :func:`eta_squared` for a single numeric
  column split by z (one-way ANOVA decomposition);
* :func:`segmentation_strength` for an (x, y) pair split by z, using a
  silhouette-style separation score of the group centroids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import EmptyColumnError


def _group_values(
    values: np.ndarray, labels: Sequence[object], minimum_per_group: int = 2
) -> dict[str, np.ndarray]:
    values = np.asarray(values, dtype=np.float64)
    if len(labels) != values.size:
        raise ValueError("labels and values must have equal length")
    groups: dict[str, list[float]] = {}
    for value, label in zip(values, labels):
        if label is None or np.isnan(value):
            continue
        groups.setdefault(str(label), []).append(float(value))
    out = {
        label: np.asarray(members, dtype=np.float64)
        for label, members in groups.items()
        if len(members) >= minimum_per_group
    }
    if len(out) < 2:
        raise EmptyColumnError(
            "need at least 2 groups with enough members for segmentation metrics"
        )
    return out


@dataclass(frozen=True)
class AnovaResult:
    """One-way ANOVA decomposition of a numeric column by a grouping column."""

    f_statistic: float
    eta_squared: float
    between_ss: float
    within_ss: float
    n_groups: int
    n_values: int


def anova(values: np.ndarray, labels: Sequence[object]) -> AnovaResult:
    """One-way ANOVA of ``values`` grouped by ``labels``."""
    groups = _group_values(values, labels)
    all_values = np.concatenate(list(groups.values()))
    overall_mean = float(np.mean(all_values))
    between_ss = sum(
        members.size * (float(np.mean(members)) - overall_mean) ** 2
        for members in groups.values()
    )
    within_ss = sum(
        float(np.sum((members - np.mean(members)) ** 2)) for members in groups.values()
    )
    k = len(groups)
    n = int(all_values.size)
    df_between = k - 1
    df_within = n - k
    if df_within <= 0 or within_ss == 0.0:
        f_stat = float("inf") if between_ss > 0 else 0.0
    else:
        f_stat = (between_ss / df_between) / (within_ss / df_within)
    total_ss = between_ss + within_ss
    eta_sq = between_ss / total_ss if total_ss > 0 else 0.0
    return AnovaResult(
        f_statistic=float(f_stat),
        eta_squared=float(eta_sq),
        between_ss=float(between_ss),
        within_ss=float(within_ss),
        n_groups=k,
        n_values=n,
    )


def anova_f_statistic(values: np.ndarray, labels: Sequence[object]) -> float:
    """The one-way ANOVA F statistic."""
    return anova(values, labels).f_statistic


def eta_squared(values: np.ndarray, labels: Sequence[object]) -> float:
    """Fraction of variance explained by the grouping, in [0, 1]."""
    return anova(values, labels).eta_squared


def group_centroids(
    x: np.ndarray, y: np.ndarray, labels: Sequence[object]
) -> Mapping[str, tuple[float, float]]:
    """Per-group centroids of the (x, y) points."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or len(labels) != x.size:
        raise ValueError("x, y and labels must have equal length")
    sums: dict[str, list[float]] = {}
    for xi, yi, label in zip(x, y, labels):
        if label is None or np.isnan(xi) or np.isnan(yi):
            continue
        entry = sums.setdefault(str(label), [0.0, 0.0, 0.0])
        entry[0] += xi
        entry[1] += yi
        entry[2] += 1.0
    return {
        label: (sx / count, sy / count)
        for label, (sx, sy, count) in sums.items()
        if count > 0
    }


def segmentation_strength(
    x: np.ndarray, y: np.ndarray, labels: Sequence[object]
) -> float:
    """The Segmentation insight ranking metric, in [0, 1].

    Computes, for the 2-D points (x, y) standardised per axis, the ratio of
    between-group scatter to total scatter of the group centroids — a
    two-dimensional η².  1 means the groups are perfectly separated along
    some direction; 0 means the grouping explains nothing.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or len(labels) != x.size:
        raise ValueError("x, y and labels must have equal length")
    keep = ~(np.isnan(x) | np.isnan(y))
    keep &= np.asarray([label is not None for label in labels])
    if int(keep.sum()) < 4:
        raise EmptyColumnError("need at least 4 complete (x, y, label) rows")
    xs, ys = x[keep], y[keep]
    kept_labels = [str(label) for label, k in zip(labels, keep) if k]
    # Standardise each axis so neither dominates the scatter.
    def standardise(values: np.ndarray) -> np.ndarray:
        sigma = np.std(values)
        return (values - np.mean(values)) / sigma if sigma > 0 else values * 0.0

    points = np.column_stack([standardise(xs), standardise(ys)])
    overall = points.mean(axis=0)
    total_scatter = float(np.sum((points - overall) ** 2))
    if total_scatter == 0.0:
        return 0.0
    between = 0.0
    groups: dict[str, list[int]] = {}
    for i, label in enumerate(kept_labels):
        groups.setdefault(label, []).append(i)
    if len(groups) < 2:
        return 0.0
    for indices in groups.values():
        member = points[indices]
        centroid = member.mean(axis=0)
        between += member.shape[0] * float(np.sum((centroid - overall) ** 2))
    return float(min(max(between / total_scatter, 0.0), 1.0))
