"""Nonlinear monotonic relationship measures.

The paper lists "nonlinear monotonic relationships" among its additional
insight classes.  A pair (x, y) exhibits a *nonlinear* monotonic
relationship when the rank correlation is strong but the linear correlation
underestimates it — e.g. y = exp(x) or y = log(x).

The ranking metric combines:

* the magnitude of the Spearman rank correlation (how monotonic), and
* the gap |Spearman| − |Pearson| (how nonlinear the monotonicity is).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.correlation import pearson, spearman


@dataclass(frozen=True)
class MonotonicRelation:
    """Summary of the monotonic relationship between two numeric columns."""

    spearman: float
    pearson: float

    @property
    def nonlinearity_gap(self) -> float:
        """How much stronger the rank correlation is than the linear one."""
        return max(abs(self.spearman) - abs(self.pearson), 0.0)

    @property
    def direction(self) -> str:
        if self.spearman > 0:
            return "increasing"
        if self.spearman < 0:
            return "decreasing"
        return "none"


def monotonic_relation(x: np.ndarray, y: np.ndarray) -> MonotonicRelation:
    """Compute the Spearman / Pearson pair for (x, y)."""
    return MonotonicRelation(spearman=spearman(x, y), pearson=pearson(x, y))


def monotonic_strength(x: np.ndarray, y: np.ndarray) -> float:
    """Ranking metric for the Nonlinear-Monotonic-Relationship insight.

    Returns |Spearman| weighted by how much it exceeds |Pearson|, so pairs
    that a linear-correlation ranking would miss rank high here, while pairs
    that are already strongly linear score near 0 (they belong to the
    Linear-Relationship insight instead).
    """
    relation = monotonic_relation(x, y)
    if abs(relation.spearman) < 1e-12:
        return 0.0
    gap_weight = relation.nonlinearity_gap / abs(relation.spearman)
    return float(abs(relation.spearman) * gap_weight)


def monotonicity_score(x: np.ndarray, y: np.ndarray) -> float:
    """|Spearman| alone — how monotonic the relationship is, in [0, 1]."""
    return float(abs(spearman(x, y)))
