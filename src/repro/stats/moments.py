"""Single-pass, mergeable moment statistics.

Section 3 of the paper notes that "skewness and kurtosis can both be
computed for numeric columns in a single pass by maintaining and combining
a few running sums".  :class:`RunningMoments` is exactly that object: it
maintains the count and the first four central moments using the numerically
stable pairwise-update formulas (Pébay 2008), supports ``merge`` so partial
results from data partitions compose, and exposes the paper's ranking
metrics:

* variance  σ²(b)            (Dispersion insight),
* skewness  γ₁(b)            (Skew insight),
* kurtosis  Kurt(b)          (Heavy-Tails insight).

Convenience functions compute the same statistics directly from arrays, with
NaN handling, matching the streaming results to floating-point accuracy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import EmptyColumnError


@dataclass
class MomentSummary:
    """A frozen snapshot of moment statistics for a numeric column."""

    count: int
    mean: float
    variance: float
    std: float
    skewness: float
    kurtosis: float
    minimum: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "variance": self.variance,
            "std": self.std,
            "skewness": self.skewness,
            "kurtosis": self.kurtosis,
            "min": self.minimum,
            "max": self.maximum,
        }


class RunningMoments:
    """Streaming first-four-moments accumulator (mergeable).

    The accumulator keeps ``n``, the mean and the central moment sums
    M2 = Σ(x-μ)², M3 = Σ(x-μ)³, M4 = Σ(x-μ)⁴, updated with numerically
    stable formulas.  ``merge`` combines two accumulators built over
    disjoint data partitions, which is the composability property the
    paper's preprocessing step relies on.
    """

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.m3 = 0.0
        self.m4 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    # -- updates -----------------------------------------------------------
    def update(self, value: float) -> None:
        """Add a single value."""
        if value != value:  # NaN check without importing numpy here
            return
        n1 = self.n
        self.n += 1
        delta = value - self.mean
        delta_n = delta / self.n
        delta_n2 = delta_n * delta_n
        term1 = delta * delta_n * n1
        self.mean += delta_n
        self.m4 += (
            term1 * delta_n2 * (self.n * self.n - 3 * self.n + 3)
            + 6 * delta_n2 * self.m2
            - 4 * delta_n * self.m3
        )
        self.m3 += term1 * delta_n * (self.n - 2) - 3 * delta_n * self.m2
        self.m2 += term1
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def update_many(self, values: Iterable[float]) -> None:
        """Add many values (loops over :meth:`update`)."""
        for value in values:
            self.update(float(value))

    def update_array(self, values: np.ndarray) -> None:
        """Add a NumPy array of values efficiently by merging a batch summary."""
        values = np.asarray(values, dtype=np.float64)
        values = values[~np.isnan(values)]
        if values.size == 0:
            return
        batch = RunningMoments()
        batch.n = int(values.size)
        batch.mean = float(values.mean())
        centered = values - batch.mean
        batch.m2 = float(np.sum(centered**2))
        batch.m3 = float(np.sum(centered**3))
        batch.m4 = float(np.sum(centered**4))
        batch.minimum = float(values.min())
        batch.maximum = float(values.max())
        merged = self.merged(batch)
        self.__dict__.update(merged.__dict__)

    # -- merge --------------------------------------------------------------
    def merged(self, other: "RunningMoments") -> "RunningMoments":
        """Return a new accumulator equal to this one combined with ``other``."""
        result = RunningMoments()
        if self.n == 0:
            result.__dict__.update(other.__dict__)
            return result
        if other.n == 0:
            result.__dict__.update(self.__dict__)
            return result
        n_a, n_b = self.n, other.n
        n = n_a + n_b
        delta = other.mean - self.mean
        delta2 = delta * delta
        delta3 = delta2 * delta
        delta4 = delta2 * delta2
        result.n = n
        result.mean = self.mean + delta * n_b / n
        result.m2 = self.m2 + other.m2 + delta2 * n_a * n_b / n
        result.m3 = (
            self.m3
            + other.m3
            + delta3 * n_a * n_b * (n_a - n_b) / (n * n)
            + 3.0 * delta * (n_a * other.m2 - n_b * self.m2) / n
        )
        result.m4 = (
            self.m4
            + other.m4
            + delta4 * n_a * n_b * (n_a * n_a - n_a * n_b + n_b * n_b) / (n**3)
            + 6.0 * delta2 * (n_a * n_a * other.m2 + n_b * n_b * self.m2) / (n * n)
            + 4.0 * delta * (n_a * other.m3 - n_b * self.m3) / n
        )
        result.minimum = min(self.minimum, other.minimum)
        result.maximum = max(self.maximum, other.maximum)
        return result

    def merge(self, other: "RunningMoments") -> None:
        """In-place version of :meth:`merged`."""
        self.__dict__.update(self.merged(other).__dict__)

    # -- derived statistics ---------------------------------------------------
    @property
    def variance(self) -> float:
        """Population variance σ² (the paper's dispersion metric)."""
        if self.n == 0:
            return float("nan")
        return self.m2 / self.n

    @property
    def sample_variance(self) -> float:
        """Unbiased sample variance (n - 1 denominator)."""
        if self.n < 2:
            return float("nan")
        return self.m2 / (self.n - 1)

    @property
    def std(self) -> float:
        """Population standard deviation."""
        variance = self.variance
        return math.sqrt(variance) if variance == variance else float("nan")

    @property
    def skewness(self) -> float:
        """Standardised skewness coefficient γ₁ (the paper's skew metric)."""
        if self.n == 0 or self.m2 <= 0.0:
            return 0.0 if self.n > 0 else float("nan")
        denominator = self.m2 ** 1.5
        if denominator == 0.0:  # m2 > 0 can still underflow when raised
            return 0.0
        return math.sqrt(self.n) * self.m3 / denominator

    @property
    def kurtosis(self) -> float:
        """(Non-excess) kurtosis, the paper's heavy-tails metric."""
        if self.n == 0 or self.m2 <= 0.0:
            return 0.0 if self.n > 0 else float("nan")
        denominator = self.m2 * self.m2
        if denominator == 0.0:  # m2 > 0 can still underflow when squared
            return 0.0
        return self.n * self.m4 / denominator

    @property
    def excess_kurtosis(self) -> float:
        """Kurtosis minus 3 (zero for a normal distribution)."""
        return self.kurtosis - 3.0

    def summary(self) -> MomentSummary:
        """Snapshot all derived statistics."""
        if self.n == 0:
            raise EmptyColumnError("no values accumulated")
        return MomentSummary(
            count=self.n,
            mean=self.mean,
            variance=self.variance,
            std=self.std,
            skewness=self.skewness,
            kurtosis=self.kurtosis,
            minimum=self.minimum,
            maximum=self.maximum,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunningMoments(n={self.n}, mean={self.mean:.4g})"


# ---------------------------------------------------------------------------
# Array-based (exact) counterparts
# ---------------------------------------------------------------------------

def _clean(values: np.ndarray, minimum: int = 1) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size < minimum:
        raise EmptyColumnError(
            f"need at least {minimum} non-missing values, got {values.size}"
        )
    return values


def mean(values: np.ndarray) -> float:
    """Arithmetic mean, ignoring NaN."""
    return float(np.mean(_clean(values)))


def variance(values: np.ndarray) -> float:
    """Population variance σ²(b) — the Dispersion insight metric."""
    return float(np.var(_clean(values)))


def std(values: np.ndarray) -> float:
    """Population standard deviation."""
    return float(np.std(_clean(values)))


def skewness(values: np.ndarray) -> float:
    """Standardised skewness γ₁(b) — the Skew insight metric.

    Returns 0.0 for constant columns (no asymmetry to speak of).
    """
    x = _clean(values)
    sigma = np.std(x)
    if sigma == 0.0:
        return 0.0
    centered = x - np.mean(x)
    return float(np.mean(centered**3) / sigma**3)


def kurtosis(values: np.ndarray) -> float:
    """Kurtosis Kurt(b) — the Heavy-Tails insight metric (3.0 for a normal)."""
    x = _clean(values)
    sigma = np.std(x)
    if sigma == 0.0:
        return 0.0
    centered = x - np.mean(x)
    return float(np.mean(centered**4) / sigma**4)


def excess_kurtosis(values: np.ndarray) -> float:
    """Kurtosis minus 3."""
    return kurtosis(values) - 3.0


def coefficient_of_variation(values: np.ndarray) -> float:
    """std / |mean|; an alternative normalised dispersion metric."""
    x = _clean(values)
    mu = float(np.mean(x))
    if mu == 0.0:
        return float("inf") if float(np.std(x)) > 0 else 0.0
    return float(np.std(x) / abs(mu))


def moment_summary(values: np.ndarray) -> MomentSummary:
    """Compute a full :class:`MomentSummary` from an array."""
    x = _clean(values)
    return MomentSummary(
        count=int(x.size),
        mean=float(np.mean(x)),
        variance=float(np.var(x)),
        std=float(np.std(x)),
        skewness=skewness(x),
        kurtosis=kurtosis(x),
        minimum=float(np.min(x)),
        maximum=float(np.max(x)),
    )
