"""Histogram binning rules.

Histograms are the preferred visualization for the dispersion, skew and
heavy-tails insights (paper section 2.2).  This module provides the binning
rules used to build their specs: Sturges, Scott, Freedman–Diaconis and an
automatic rule that picks a sensible default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EmptyColumnError


def _clean(values: np.ndarray, minimum: int = 1) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size < minimum:
        raise EmptyColumnError(
            f"need at least {minimum} non-missing values, got {values.size}"
        )
    return values


def sturges_bins(values: np.ndarray) -> int:
    """Sturges' rule: ceil(log2 n) + 1."""
    x = _clean(values)
    return int(np.ceil(np.log2(max(x.size, 1)))) + 1


def scott_bin_width(values: np.ndarray) -> float:
    """Scott's rule bin width 3.49 σ n^(-1/3); 0 for constant columns."""
    x = _clean(values)
    sigma = float(np.std(x))
    if sigma == 0.0:
        return 0.0
    return 3.49 * sigma * x.size ** (-1.0 / 3.0)


def freedman_diaconis_bin_width(values: np.ndarray) -> float:
    """Freedman–Diaconis rule bin width 2·IQR·n^(-1/3); 0 if IQR is 0."""
    x = _clean(values)
    q1, q3 = np.quantile(x, [0.25, 0.75])
    iqr = float(q3 - q1)
    if iqr == 0.0:
        return 0.0
    return 2.0 * iqr * x.size ** (-1.0 / 3.0)


def auto_bin_count(values: np.ndarray, max_bins: int = 100) -> int:
    """Automatic bin count: Freedman–Diaconis, falling back to Sturges."""
    x = _clean(values)
    data_range = float(np.max(x) - np.min(x))
    if data_range == 0.0:
        return 1
    width = freedman_diaconis_bin_width(x)
    if width <= 0.0:
        width = scott_bin_width(x)
    if width <= 0.0:
        return min(sturges_bins(x), max_bins)
    return int(min(max(np.ceil(data_range / width), 1), max_bins))


@dataclass(frozen=True)
class HistogramBin:
    """One bin of a computed histogram."""

    left: float
    right: float
    count: int
    frequency: float

    @property
    def center(self) -> float:
        return 0.5 * (self.left + self.right)


def histogram_counts(
    values: np.ndarray, bins: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Raw (counts, edges) using the automatic rule when ``bins`` is None."""
    x = _clean(values)
    if bins is None:
        bins = auto_bin_count(x)
    counts, edges = np.histogram(x, bins=bins)
    return counts, edges


def histogram(values: np.ndarray, bins: int | None = None) -> list[HistogramBin]:
    """Compute a histogram as a list of :class:`HistogramBin`."""
    counts, edges = histogram_counts(values, bins=bins)
    total = int(counts.sum())
    out = []
    for i in range(counts.size):
        count = int(counts[i])
        out.append(
            HistogramBin(
                left=float(edges[i]),
                right=float(edges[i + 1]),
                count=count,
                frequency=count / total if total else 0.0,
            )
        )
    return out
