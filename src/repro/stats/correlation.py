"""Correlation statistics.

The Linear-Relationship insight ranks attribute pairs by the magnitude of
the Pearson correlation coefficient |ρ(x, y)| (paper section 2.2, insight 6)
and the usage scenario additionally uses Spearman rank correlation as an
alternative ranking metric.  This module provides exact Pearson, Spearman
and Kendall coefficients for pairs of columns, pairwise-complete correlation
matrices (the data behind the Figure 2 overview heat map) and best-fit line
parameters for the scatter-plot visualization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EmptyColumnError


def _pair(x: np.ndarray, y: np.ndarray, minimum: int = 2) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    keep = ~(np.isnan(x) | np.isnan(y))
    x, y = x[keep], y[keep]
    if x.size < minimum:
        raise EmptyColumnError(
            f"need at least {minimum} complete pairs, got {x.size}"
        )
    return x, y


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient ρ(x, y); 0.0 if either side is constant."""
    x, y = _pair(x, y)
    sx = np.std(x)
    sy = np.std(y)
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.mean((x - np.mean(x)) * (y - np.mean(y))) / (sx * sy))


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean of the tied positions)."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_values = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        average_rank = 0.5 * (i + j) + 1.0
        ranks[order[i: j + 1]] = average_rank
        i = j + 1
    return ranks


def spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation coefficient (Pearson on average ranks)."""
    x, y = _pair(x, y)
    return pearson(_ranks(x), _ranks(y))


def kendall_tau(x: np.ndarray, y: np.ndarray) -> float:
    """Kendall's τ-b rank correlation (O(n²) implementation, exact)."""
    x, y = _pair(x, y)
    n = x.size
    dx = np.sign(x[:, None] - x[None, :])
    dy = np.sign(y[:, None] - y[None, :])
    upper = np.triu_indices(n, k=1)
    product = dx[upper] * dy[upper]
    concordant = float(np.sum(product > 0))
    discordant = float(np.sum(product < 0))
    ties_x = float(np.sum(dx[upper] == 0))
    ties_y = float(np.sum(dy[upper] == 0))
    total = n * (n - 1) / 2.0
    denom = np.sqrt((total - ties_x) * (total - ties_y))
    if denom == 0.0:
        return 0.0
    return float((concordant - discordant) / denom)


@dataclass(frozen=True)
class LinearFit:
    """Best-fit line y = slope * x + intercept, with goodness of fit."""

    slope: float
    intercept: float
    r: float
    r_squared: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept


def linear_fit(x: np.ndarray, y: np.ndarray) -> LinearFit:
    """Least-squares best-fit line (used by the scatter-plot visualization)."""
    x, y = _pair(x, y)
    sx = np.std(x)
    r = pearson(x, y)
    if sx == 0.0:
        return LinearFit(slope=0.0, intercept=float(np.mean(y)), r=r, r_squared=r * r)
    slope = r * np.std(y) / sx
    intercept = float(np.mean(y) - slope * np.mean(x))
    return LinearFit(slope=float(slope), intercept=intercept, r=r, r_squared=r * r)


def correlation_matrix(
    matrix: np.ndarray, method: str = "pearson"
) -> np.ndarray:
    """Pairwise-complete correlation matrix of the columns of ``matrix``.

    ``matrix`` is the (n, d) numeric block; NaNs are handled pairwise.  This
    is the exact computation behind the Figure 2 overview heat map, and the
    exact baseline for the hyperplane-sketch benchmarks.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("matrix must be two-dimensional")
    d = matrix.shape[1]
    if not np.isnan(matrix).any():
        return _dense_correlation(matrix, method)
    out = np.eye(d)
    for i in range(d):
        for j in range(i + 1, d):
            try:
                if method == "pearson":
                    value = pearson(matrix[:, i], matrix[:, j])
                elif method == "spearman":
                    value = spearman(matrix[:, i], matrix[:, j])
                else:
                    raise ValueError(f"unknown correlation method {method!r}")
            except EmptyColumnError:
                value = 0.0
            out[i, j] = out[j, i] = value
    return out


def _dense_correlation(matrix: np.ndarray, method: str) -> np.ndarray:
    if method == "spearman":
        matrix = np.column_stack([_ranks(matrix[:, j]) for j in range(matrix.shape[1])])
    elif method != "pearson":
        raise ValueError(f"unknown correlation method {method!r}")
    d = matrix.shape[1]
    stds = matrix.std(axis=0)
    constant = stds == 0.0
    safe = matrix.copy()
    # A constant column has no linear relationship with anything; force its
    # correlations to zero rather than dividing by zero.
    centered = safe - safe.mean(axis=0)
    stds_safe = np.where(constant, 1.0, stds)
    normalised = centered / stds_safe
    corr = normalised.T @ normalised / matrix.shape[0]
    corr[constant, :] = 0.0
    corr[:, constant] = 0.0
    np.fill_diagonal(corr, 1.0)
    return np.clip(corr, -1.0, 1.0)


def top_correlated_pairs(
    matrix: np.ndarray,
    names: list[str],
    k: int = 10,
    method: str = "pearson",
    absolute: bool = True,
) -> list[tuple[str, str, float]]:
    """The k attribute pairs with the strongest correlations.

    Returns (name_i, name_j, correlation) sorted by |correlation| (or the
    signed value when ``absolute`` is False) in descending order.
    """
    corr = correlation_matrix(matrix, method=method)
    d = corr.shape[0]
    if len(names) != d:
        raise ValueError("names length must match matrix width")
    pairs: list[tuple[str, str, float]] = []
    for i in range(d):
        for j in range(i + 1, d):
            pairs.append((names[i], names[j], float(corr[i, j])))
    key = (lambda p: abs(p[2])) if absolute else (lambda p: p[2])
    pairs.sort(key=key, reverse=True)
    return pairs[:k]


def fisher_z(r: float) -> float:
    """Fisher z-transform of a correlation coefficient (clipped at ±0.999999)."""
    r = float(np.clip(r, -0.999999, 0.999999))
    return float(np.arctanh(r))


def correlation_confidence_interval(
    r: float, n: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Approximate confidence interval for a Pearson correlation.

    Uses the Fisher z-transform with the normal approximation; useful in the
    sketching benchmarks to judge whether sketch error is within sampling
    noise.
    """
    if n < 4:
        return (-1.0, 1.0)
    from scipy import stats as scipy_stats

    z = fisher_z(r)
    se = 1.0 / np.sqrt(n - 3)
    z_crit = float(scipy_stats.norm.ppf(0.5 + confidence / 2.0))
    low, high = z - z_crit * se, z + z_crit * se
    return float(np.tanh(low)), float(np.tanh(high))
