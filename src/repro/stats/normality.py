"""Normality measures.

The usage scenario (paper section 4.1) reports that "Time Devoted To
Leisure has a Normal distribution while Self Reported Health has a
left-skewed distribution".  Foresight therefore needs a univariate
distribution-shape insight that ranks columns by how close to (or far from)
normal they are.  The metrics here support both directions:

* :func:`normality_score` — in [0, 1], higher = more normal-looking;
* :func:`non_normality_score` — its complement, used when hunting for
  interestingly *non*-normal columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import EmptyColumnError
from repro.stats.moments import kurtosis, skewness


def _clean(values: np.ndarray, minimum: int = 8) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size < minimum:
        raise EmptyColumnError(
            f"need at least {minimum} non-missing values, got {values.size}"
        )
    return values


@dataclass(frozen=True)
class NormalityResult:
    """Shape summary of a numeric column relative to the normal distribution."""

    skewness: float
    excess_kurtosis: float
    ks_statistic: float
    ks_pvalue: float

    @property
    def shape_label(self) -> str:
        """Human-readable shape description used in insight summaries."""
        if abs(self.skewness) < 0.5 and abs(self.excess_kurtosis) < 1.0:
            return "approximately normal"
        if self.skewness <= -0.5:
            return "left-skewed"
        if self.skewness >= 0.5:
            return "right-skewed"
        if self.excess_kurtosis >= 1.0:
            return "heavy-tailed"
        return "light-tailed"


def normality_test(values: np.ndarray) -> NormalityResult:
    """Kolmogorov–Smirnov test against a fitted normal plus moment shape."""
    x = _clean(values)
    mu = float(np.mean(x))
    sigma = float(np.std(x))
    if sigma == 0.0:
        return NormalityResult(
            skewness=0.0, excess_kurtosis=-3.0, ks_statistic=1.0, ks_pvalue=0.0
        )
    statistic, pvalue = scipy_stats.kstest(x, "norm", args=(mu, sigma))
    return NormalityResult(
        skewness=skewness(x),
        excess_kurtosis=kurtosis(x) - 3.0,
        ks_statistic=float(statistic),
        ks_pvalue=float(pvalue),
    )


def normality_score(values: np.ndarray) -> float:
    """Score in [0, 1]; 1 = indistinguishable from a fitted normal.

    Combines the KS statistic with penalties for skewness and excess
    kurtosis, so the score degrades smoothly as the shape departs from
    normal even when the sample is too small for the KS test to reject.
    """
    result = normality_test(values)
    ks_component = max(0.0, 1.0 - 2.0 * result.ks_statistic)
    skew_penalty = min(abs(result.skewness) / 2.0, 1.0)
    kurtosis_penalty = min(abs(result.excess_kurtosis) / 6.0, 1.0)
    shape_component = 1.0 - 0.5 * (skew_penalty + kurtosis_penalty)
    return float(max(0.0, min(1.0, 0.5 * ks_component + 0.5 * shape_component)))


def non_normality_score(values: np.ndarray) -> float:
    """1 - :func:`normality_score`; high for strongly non-normal columns."""
    return 1.0 - normality_score(values)
