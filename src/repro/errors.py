"""Exception hierarchy for the Foresight reproduction.

Every error raised by the library derives from :class:`ForesightError` so
that callers can catch library failures without also catching unrelated
Python errors.
"""

from __future__ import annotations


class ForesightError(Exception):
    """Base class for all errors raised by the library."""


class SchemaError(ForesightError):
    """A column or table schema is invalid or inconsistent with the data."""


class ColumnTypeError(SchemaError):
    """An operation was applied to a column of an incompatible kind."""


class UnknownColumnError(SchemaError):
    """A referenced column name does not exist in the table."""

    def __init__(self, name: str, available: list[str] | None = None):
        self.name = name
        self.available = list(available or [])
        message = f"unknown column {name!r}"
        if self.available:
            message += f"; available columns: {', '.join(self.available)}"
        super().__init__(message)


class EmptyColumnError(ForesightError):
    """A statistic was requested for a column with no usable values."""


class InsightError(ForesightError):
    """Base class for errors in the insight framework."""


class UnknownInsightClassError(InsightError):
    """A referenced insight class is not registered."""

    def __init__(self, name: str, available: list[str] | None = None):
        self.name = name
        self.available = list(available or [])
        message = f"unknown insight class {name!r}"
        if self.available:
            message += f"; registered classes: {', '.join(self.available)}"
        super().__init__(message)


class QueryError(InsightError):
    """An insight query is malformed (bad constraint, bad attribute, ...)."""


class SketchError(ForesightError):
    """Base class for sketching errors."""


class SketchMergeError(SketchError):
    """Two sketches could not be merged because their parameters differ."""


class SketchNotAvailableError(SketchError):
    """A requested sketch was not built during preprocessing."""


class VisualizationError(ForesightError):
    """A visualization spec could not be produced for the given data."""


class ServiceError(ForesightError):
    """Base class for errors raised by the serving layer (workspace / DTOs)."""


class UnknownDatasetError(ServiceError):
    """A referenced dataset is not registered in the workspace."""

    def __init__(self, name: str, available: list[str] | None = None):
        self.name = name
        self.available = list(available or [])
        message = f"unknown dataset {name!r}"
        if self.available:
            message += f"; registered datasets: {', '.join(self.available)}"
        super().__init__(message)


class ProtocolError(ServiceError):
    """A request, response or cursor payload violates the DTO protocol."""


class IngestError(ServiceError):
    """Base class for errors raised by the live-ingestion subsystem."""


class DeltaValidationError(IngestError):
    """An appended row batch violates the dataset's schema.

    Carries the per-row problems so transports can report exactly which
    records were rejected (the whole batch is refused — appends are
    all-or-nothing).
    """

    def __init__(self, dataset: str, problems: list[str]):
        self.dataset = dataset
        self.problems = list(problems)
        shown = "; ".join(self.problems[:3])
        if len(self.problems) > 3:
            shown += f"; ... ({len(self.problems)} problems total)"
        super().__init__(
            f"delta batch rejected for dataset {dataset!r}: {shown}"
        )


class ReplicaReadOnlyError(ServiceError):
    """A write was attempted on a read-replica workspace.

    Replicas apply the primary's journal stream verbatim; a local write
    would fork their history from the primary's.  Transports map this to
    HTTP 403 so clients can distinguish "wrong node" from a protocol
    error and re-route the write to the primary (or promote first).
    """

    def __init__(self, operation: str, dataset: str | None = None):
        self.operation = operation
        self.dataset = dataset
        target = f" on dataset {dataset!r}" if dataset else ""
        super().__init__(
            f"workspace is a read replica: {operation}{target} must go to "
            "the primary (or promote this replica first)"
        )


class ServerError(ServiceError):
    """Base class for errors raised by the HTTP server layer."""


class AdmissionRejected(ServerError):
    """A request was turned away by admission control.

    Carries the HTTP semantics the transport needs: ``status`` is 429
    (quota exceeded) or 503 (capacity overload), ``code`` is the
    machine-readable envelope code, and ``retry_after`` is the hint (in
    seconds) for the ``Retry-After`` header.
    """

    def __init__(self, code: str, message: str, status: int, retry_after: float):
        self.code = code
        self.status = status
        self.retry_after = retry_after
        super().__init__(message)
